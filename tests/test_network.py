"""Cross-transport equivalence: the socket must be invisible.

A :class:`~repro.net.MonomiServer` hosting the in-process backend over
TCP loopback, queried through :meth:`MonomiClient.connect`, must produce
plaintext rows *and* primary ledger byte counts identical to the
in-process client sharing the same encrypted database — for the sales
workload, the TPC-H and SSB suites, ``execute_iter()`` streaming, the
concurrent service layer, and prepared statements.  The ledger is the
paper's measurement instrument; a transport that perturbs it by one byte
invalidates every figure, so equality here is exact, not approximate.
"""

from __future__ import annotations

import socket

import pytest

from repro.common.errors import (
    ConfigError,
    EngineError,
    RemoteError,
    WireError,
)
from repro.core import CryptoProvider, MonomiClient
from repro.net import MonomiServer, RemoteBackend, parse_address, wire
from repro.server.chaos import chaos_from_env
from repro.ssb import generate as ssb_generate, ssb_queries
from repro.testkit import MASTER_KEY, SALES_WORKLOAD, canonical
from repro.tpch import generate as tpch_generate, tpch_queries

TPCH_SCALE = 0.0003
TPCH_NUMBERS = (1, 3, 4, 6, 11, 12, 18, 19)
SSB_SCALE = 0.0002
SSB_NUMBERS = ("1.1", "2.1", "3.1", "4.1")

EXTRA_QUERIES = [
    # Multi-round-trip plan: the IN-subquery's DET set crosses the wire
    # as a frozenset parameter — the codec's trickiest customer.
    "SELECT o_orderkey FROM orders WHERE o_custkey IN "
    "(SELECT o_custkey FROM orders GROUP BY o_custkey "
    "HAVING SUM(o_qty) > 140)",
    "SELECT o_status, SUM(o_qty), MIN(o_price) FROM orders GROUP BY o_status",
]


def ledger_bytes(ledger) -> tuple[int, int, int]:
    return (
        ledger.transfer_bytes,
        ledger.server_bytes_scanned,
        ledger.round_trips,
    )


# ---------------------------------------------------------------------------
# Sales workload: rows and ledgers byte-identical across the socket
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("sql", SALES_WORKLOAD + EXTRA_QUERIES)
def test_remote_matches_in_process(sql, sales_client, sales_client_remote):
    local = sales_client.execute(sql)
    remote = sales_client_remote.execute(sql)
    assert canonical(remote.rows) == canonical(local.rows), sql
    assert remote.columns == local.columns, sql
    assert ledger_bytes(remote.ledger) == ledger_bytes(local.ledger), sql


@pytest.mark.parametrize("sql", SALES_WORKLOAD)
def test_remote_execute_iter_matches_in_process(
    sql, sales_client, sales_client_remote
):
    local = sales_client.execute(sql)
    stream = sales_client_remote.execute_iter(sql, block_rows=16)
    remote = stream.drain()
    assert canonical(remote.rows) == canonical(local.rows), sql
    assert ledger_bytes(remote.ledger) == ledger_bytes(local.ledger), sql


def test_remote_params_match_in_process(sales_client, sales_client_remote):
    template = (
        "SELECT o_custkey, SUM(o_price) AS rev FROM orders "
        "WHERE o_price > :p GROUP BY o_custkey"
    )
    for value in (400, 2200):
        local = sales_client.execute(template, {"p": value})
        remote = sales_client_remote.execute(template, {"p": value})
        assert canonical(remote.rows) == canonical(local.rows)
        assert ledger_bytes(remote.ledger) == ledger_bytes(local.ledger)


def test_early_stream_close_reuses_the_connection(sales_client_remote):
    backend = sales_client_remote.backend
    if not isinstance(backend, RemoteBackend):
        pytest.skip("client backend is chaos-wrapped; pool not reachable")
    stream = sales_client_remote.execute_iter(SALES_WORKLOAD[4], block_rows=4)
    for _block in stream:
        break  # Abandon mid-stream: CANCEL + drain, not a dead socket.
    stream.close()
    repeat = sales_client_remote.execute(SALES_WORKLOAD[4])
    assert repeat.rows  # The pooled connection still serves queries.


def test_remote_catalog_matches_in_process(sales_client, sales_client_remote):
    local = sales_client.backend
    remote = sales_client_remote.backend
    assert remote.table_names() == local.table_names()
    for name in local.table_names():
        assert remote.table_bytes(name) == local.table_bytes(name)
    assert remote.total_bytes == local.total_bytes
    assert (
        sales_client_remote.space_overhead() == sales_client.space_overhead()
    )
    store_local, store_remote = local.ciphertext_store, remote.ciphertext_store
    assert store_remote.names() == store_local.names()
    for name in store_local.names():
        assert (
            store_remote.get(name).total_bytes
            == store_local.get(name).total_bytes
        )


# ---------------------------------------------------------------------------
# Server-side ledger: the session's byte counts equal the client's
# ---------------------------------------------------------------------------


@pytest.mark.skipif(
    chaos_from_env() is not None,
    reason="aborted chaos attempts land in the server session ledger",
)
def test_server_session_ledger_matches_client(sales_client):
    # A dedicated single-connection client so exactly one server session
    # accumulates the whole run.
    with MonomiServer(sales_client.backend) as server:
        backend = RemoteBackend(server.address, pool_size=1)
        client = MonomiClient(
            sales_client.plain_db,
            sales_client.design,
            sales_client.provider,
            backend,
            sales_client.flags,
            sales_client.network,
            sales_client.disk,
            streaming=sales_client.streaming,
        )
        want_transfer = want_scanned = 0
        for sql in SALES_WORKLOAD:
            outcome = client.execute(sql)
            assert outcome.ledger.retries == 0
            want_transfer += outcome.ledger.transfer_bytes
            want_scanned += outcome.ledger.server_bytes_scanned
        ledgers = server.session_ledgers()
        client.close()
        assert len(ledgers) == 1
        assert ledgers[0].transfer_bytes == want_transfer
        assert ledgers[0].server_bytes_scanned == want_scanned
        stats = server.stats()
        assert stats["transfer_bytes"] == want_transfer
        assert stats["server_bytes_scanned"] == want_scanned
        assert stats["queries"] >= len(SALES_WORKLOAD)
        assert stats["errors_sent"] == 0


# ---------------------------------------------------------------------------
# Service layer and prepared statements over the wire
# ---------------------------------------------------------------------------


def test_service_over_remote_matches_in_process(
    sales_client, sales_client_remote
):
    references = {
        sql: sales_client.execute(sql) for sql in SALES_WORKLOAD
    }
    with sales_client_remote.service(workers=3) as service:
        sessions = [service.open_session() for _ in range(3)]
        futures = [
            (sql, session.submit(sql))
            for session in sessions
            for sql in SALES_WORKLOAD
        ]
        for sql, future in futures:
            outcome = future.result()
            want = references[sql]
            assert canonical(outcome.rows) == canonical(want.rows), sql
            assert ledger_bytes(outcome.ledger) == ledger_bytes(
                want.ledger
            ), sql


def test_prepared_statements_over_remote(sales_client, sales_client_remote):
    template = (
        "SELECT o_custkey, SUM(o_price) AS rev FROM orders "
        "WHERE o_price > :p GROUP BY o_custkey"
    )
    values = (300, 900, 2500)
    # Reference: the same prepared path, in-process.  (Prepared re-binds
    # run the generic plan, whose ledger differs from ad-hoc's
    # specialized plan — so ad-hoc is not the comparison point.)
    with sales_client.service(workers=2) as service:
        statement = service.prepare(template)
        references = {
            value: service.execute_prepared(statement, {"p": value})
            for value in values
        }
    with sales_client_remote.service(workers=2) as service:
        statement = service.prepare(template)
        for value in values:
            want = references[value]
            got = service.execute_prepared(statement, {"p": value})
            assert canonical(got.rows) == canonical(want.rows)
            assert ledger_bytes(got.ledger) == ledger_bytes(want.ledger)


def test_repeated_queries_prepare_server_side(sales_client):
    # The connection-level prepare memo: the third identical EXECUTE must
    # reference a server-side statement id instead of re-shipping the AST.
    with MonomiServer(sales_client.backend) as server:
        backend = RemoteBackend(
            server.address, pool_size=1, prepare_threshold=2
        )
        client = MonomiClient(
            sales_client.plain_db,
            sales_client.design,
            sales_client.provider,
            backend,
            sales_client.flags,
            sales_client.network,
            sales_client.disk,
            streaming=sales_client.streaming,
        )
        baseline = [client.execute(SALES_WORKLOAD[0]) for _ in range(3)]
        assert len({canonical(o.rows) == canonical(baseline[0].rows) for o in baseline}) == 1
        assert backend._pool and backend._pool[0].prepared
        client.close()


# ---------------------------------------------------------------------------
# TPC-H and SSB across the wire
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tpch_remote_pair():
    db = tpch_generate(scale=TPCH_SCALE, seed=5)
    queries = tpch_queries(TPCH_SCALE)
    workload = [queries[n].sql for n in TPCH_NUMBERS]
    provider = CryptoProvider(MASTER_KEY, paillier_bits=384)
    local = MonomiClient.setup(
        db,
        workload,
        master_key=MASTER_KEY,
        paillier_bits=384,
        space_budget=2.0,
        provider=provider,
    )
    with MonomiServer(local.backend) as server:
        remote = MonomiClient.connect(
            server.address, db, design=local.design, provider=provider
        )
        yield queries, local, remote
        remote.close()


@pytest.mark.parametrize("number", TPCH_NUMBERS)
def test_tpch_remote_agrees(tpch_remote_pair, number):
    queries, local, remote = tpch_remote_pair
    want = local.execute(queries[number].sql)
    got = remote.execute(queries[number].sql)
    assert canonical(got.rows) == canonical(want.rows)
    assert ledger_bytes(got.ledger) == ledger_bytes(want.ledger)


@pytest.fixture(scope="module")
def ssb_remote_pair():
    db = ssb_generate(scale=SSB_SCALE, seed=13)
    queries = ssb_queries()
    workload = [queries[n].sql for n in SSB_NUMBERS]
    provider = CryptoProvider(MASTER_KEY, paillier_bits=384)
    local = MonomiClient.setup(
        db,
        workload,
        master_key=MASTER_KEY,
        paillier_bits=384,
        space_budget=2.0,
        provider=provider,
    )
    with MonomiServer(local.backend) as server:
        remote = MonomiClient.connect(
            server.address, db, design=local.design, provider=provider
        )
        yield queries, local, remote
        remote.close()


@pytest.mark.parametrize("number", SSB_NUMBERS)
def test_ssb_remote_agrees(ssb_remote_pair, number):
    queries, local, remote = ssb_remote_pair
    want = local.execute(queries[number].sql)
    got = remote.execute(queries[number].sql)
    assert canonical(got.rows) == canonical(want.rows)
    assert ledger_bytes(got.ledger) == ledger_bytes(want.ledger)


# ---------------------------------------------------------------------------
# Protocol edges: addressing, read-only surface, hostile peers
# ---------------------------------------------------------------------------


class TestAddressing:
    def test_parse_address_round_trips(self):
        assert parse_address("127.0.0.1:5432") == ("127.0.0.1", 5432)

    @pytest.mark.parametrize("bad", ["nocolon", ":123", "host:", "host:abc"])
    def test_bad_addresses_raise_config_error(self, bad):
        with pytest.raises(ConfigError):
            parse_address(bad)

    def test_connect_to_closed_port_is_transient(self):
        from repro.common.errors import ConnectionLostError

        sink = socket.socket()
        sink.bind(("127.0.0.1", 0))
        port = sink.getsockname()[1]
        sink.close()  # Nothing listens here now.
        with pytest.raises(ConnectionLostError):
            RemoteBackend(f"127.0.0.1:{port}", connect_timeout=0.5)


class TestReadOnlySurface:
    def test_remote_backend_rejects_loads(self, sales_client_remote):
        # Bulk loading stays server-side: schema creation and ciphertext
        # file installation are rejected.  (Incremental writes — DML and
        # hom maintenance — go through the WRITE frame since PR 10 and
        # are covered by the DML suites.)
        backend = sales_client_remote.backend
        with pytest.raises(ConfigError):
            backend.create_table(object())
        with pytest.raises(ConfigError):
            backend.ciphertext_store.add(object())

    def test_unknown_table_raises_engine_error(self, sales_client_remote):
        with pytest.raises(EngineError):
            sales_client_remote.backend.table_bytes("no_such_table")


class TestHostilePeers:
    def _raw_connection(self, server: MonomiServer) -> socket.socket:
        sock = socket.create_connection((server.host, server.port), timeout=5)
        sock.settimeout(5)
        return sock

    def _read_reply(self, sock: socket.socket):
        decoder = wire.FrameDecoder()
        while True:
            data = sock.recv(1 << 16)
            if not data:
                return None
            decoder.feed(data)
            frame = decoder.next_frame()
            if frame is not None:
                return frame

    def test_execute_before_hello_gets_typed_error(self, sales_server):
        sock = self._raw_connection(sales_server)
        try:
            sock.sendall(wire.encode_message(wire.EXECUTE, {"stream": False}))
            frame = self._read_reply(sock)
            assert frame is not None
            ftype, payload = frame
            assert ftype == wire.ERROR
            decoded = wire.decode_error(wire.decode_message(payload))
            assert isinstance(decoded, (WireError, RemoteError))
        finally:
            sock.close()

    def test_garbage_bytes_close_the_connection(self, sales_server):
        sock = self._raw_connection(sales_server)
        try:
            sock.sendall(b"\xde\xad\xbe\xef" * 16)
            # Best-effort ERROR frame, then EOF; never a hang.
            while True:
                frame = self._read_reply(sock)
                if frame is None:
                    break
        finally:
            sock.close()

    def test_stale_cancel_between_requests_is_ignored(self, sales_client):
        with MonomiServer(sales_client.backend) as server:
            backend = RemoteBackend(server.address, pool_size=1)
            conn = backend._checkout()
            conn.send(wire.CANCEL, {})
            backend._checkin(conn)
            client = MonomiClient(
                sales_client.plain_db,
                sales_client.design,
                sales_client.provider,
                backend,
                sales_client.flags,
                sales_client.network,
                sales_client.disk,
                streaming=sales_client.streaming,
            )
            outcome = client.execute(SALES_WORKLOAD[0])
            want = sales_client.execute(SALES_WORKLOAD[0])
            assert canonical(outcome.rows) == canonical(want.rows)
            client.close()

    def test_double_close_is_idempotent(self, sales_client):
        server = MonomiServer(sales_client.backend).start()
        backend = RemoteBackend(server.address)
        backend.close()
        backend.close()
        server.close()
        server.close()
        with pytest.raises(ConfigError):
            backend._checkout()
