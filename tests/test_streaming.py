"""Streaming RowBlock pipeline: streaming == materializing, bounded memory.

The streaming path's contract is exact equivalence with the materializing
path — identical rows in identical order and identical ledger byte counts
(transfer, scan, round trips) — on every query shape and both untrusted
server backends, while keeping peak memory O(block) for stream-shaped
plans.  This module tests the contract at four levels: the RowBlock
primitive, the engine operator layer, the backend seam, and full split
plans through the client, plus a peak-memory regression on a table far
larger than the block size.
"""

from __future__ import annotations

import gc
import tracemalloc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testkit import MASTER_KEY, SALES_WORKLOAD, build_sales_db, canonical
from repro.common.errors import ExecutionError
from repro.core import (
    CryptoProvider,
    MonomiClient,
    PlanExecutor,
    normalize_query,
)
from repro.core.plan import DecryptSpec
from repro.core.pexec import _unnest_rows
from repro.common.ledger import CostLedger, NetworkModel
from repro.engine import (
    BlockStream,
    Database,
    Executor,
    ResultSet,
    RowBlock,
    blocks_from_rows,
    is_streamable,
    result_header_bytes,
    schema,
)
from repro.server import make_backend
from repro.sql import parse
from repro.ssb import generate as ssb_generate, ssb_queries
from repro.tpch import generate as tpch_generate, tpch_queries

TPCH_SCALE = 0.0003
TPCH_NUMBERS = (1, 6, 12, 18)
SSB_SCALE = 0.0002
SSB_NUMBERS = ("1.1", "4.1")


def ledger_bytes(ledger: CostLedger) -> tuple:
    """The ledger fields that must be byte-identical across modes."""
    return (
        ledger.transfer_bytes,
        ledger.server_bytes_scanned,
        ledger.round_trips,
    )


# ---------------------------------------------------------------------------
# RowBlock primitive
# ---------------------------------------------------------------------------


class TestRowBlock:
    def test_round_trip(self):
        rows = [(1, "a", None), (2, "b", 3.5), (3, "c", b"\x01")]
        block = RowBlock.from_rows(rows, 3)
        assert block.num_rows == len(block) == 3
        assert block.columns[0] == [1, 2, 3]
        assert block.rows() == rows

    def test_empty_block_keeps_width(self):
        block = RowBlock.from_rows([], 4)
        assert len(block.columns) == 4 and block.num_rows == 0
        assert block.rows() == []

    def test_blocks_respect_capacity_and_order(self):
        rows = [(i,) for i in range(10)]
        blocks = list(blocks_from_rows(rows, 1, block_rows=3))
        assert [len(b) for b in blocks] == [3, 3, 3, 1]
        assert [r for b in blocks for r in b.rows()] == rows

    def test_stream_bytes_match_materialized_result(self):
        """Header + per-block payloads must equal ResultSet.byte_size —
        the invariant that keeps streamed and materialized ledgers
        byte-identical."""
        rows = [(i, f"name{i}", None if i % 3 else i * 1.5) for i in range(25)]
        result = ResultSet(["k", "name", "v"], rows)
        total = result_header_bytes(result.columns) + sum(
            block.payload_bytes()
            for block in blocks_from_rows(rows, 3, block_rows=4)
        )
        assert total == result.byte_size()


def test_ledger_block_transfer_matches_add_transfer():
    network = NetworkModel()
    materialized, streamed = CostLedger(), CostLedger()
    materialized.add_transfer(1000, network)
    streamed.begin_round_trip(network)
    for chunk in (300, 300, 300, 100):
        streamed.add_block_transfer(chunk, network)
    assert ledger_bytes(streamed) == ledger_bytes(materialized)
    assert streamed.transfer_seconds == pytest.approx(
        materialized.transfer_seconds
    )


# ---------------------------------------------------------------------------
# Engine operator layer
# ---------------------------------------------------------------------------

ENGINE_STREAMABLE = [
    "SELECT o_orderkey, o_price FROM orders WHERE o_price > 2500",
    "SELECT * FROM orders WHERE o_qty BETWEEN 10 AND 20",
    "SELECT o_orderkey FROM orders LIMIT 7",
    "SELECT o_price * o_qty FROM orders WHERE o_status = 'OPEN'",
    # Blocking subqueries under a streaming scan.
    "SELECT o_orderkey FROM orders WHERE o_custkey IN "
    "(SELECT c_custkey FROM customer WHERE c_balance > 50000)",
    "SELECT c_name FROM customer WHERE EXISTS "
    "(SELECT * FROM orders WHERE o_custkey = c_custkey AND o_price > 4500)",
]
ENGINE_BLOCKING = [
    "SELECT o_custkey, SUM(o_price) FROM orders GROUP BY o_custkey",
    "SELECT o_orderkey FROM orders ORDER BY o_price DESC LIMIT 9",
    "SELECT DISTINCT o_status FROM orders",
    "SELECT c_nation, COUNT(*) FROM orders, customer "
    "WHERE o_custkey = c_custkey GROUP BY c_nation",
    "SELECT seg, SUM(p) FROM (SELECT c_segment AS seg, o_price AS p "
    "FROM orders, customer WHERE o_custkey = c_custkey) AS x GROUP BY seg",
]


@pytest.fixture(scope="module")
def engine_db():
    return build_sales_db(num_orders=150, seed=7)


@pytest.mark.parametrize("sql", ENGINE_STREAMABLE + ENGINE_BLOCKING)
@pytest.mark.parametrize("block_rows", [7, 4096])
def test_engine_streaming_matches_materializing(engine_db, sql, block_rows):
    query = normalize_query(parse(sql))
    materializing = Executor(engine_db)
    streaming = Executor(engine_db, streaming=True, block_rows=block_rows)
    expected = materializing.execute(query)
    got = streaming.execute(query)
    assert got.columns == expected.columns
    assert got.rows == expected.rows  # Exact order, not canonicalized.
    assert streaming.last_stats.bytes_scanned == materializing.last_stats.bytes_scanned
    assert streaming.last_stats.rows_output == materializing.last_stats.rows_output


def test_is_streamable_classification():
    for sql in ENGINE_STREAMABLE:
        assert is_streamable(normalize_query(parse(sql))), sql
    for sql in ENGINE_BLOCKING:
        assert not is_streamable(normalize_query(parse(sql))), sql


def test_engine_stream_blocks_bounded_by_capacity(engine_db):
    query = normalize_query(parse("SELECT o_orderkey FROM orders"))
    stream = Executor(engine_db).execute_stream(query, block_rows=16)
    sizes = [len(block) for block in stream]
    assert sum(sizes) == engine_db.table("orders").num_rows
    assert max(sizes) <= 16


def test_engine_stream_from_injected_source(engine_db):
    """A residual-style query can scan an external block stream instead of
    a catalog table — the client's no-staging path."""
    rows = [(i, i * 10) for i in range(20)]
    source = BlockStream(["a", "b"], blocks_from_rows(rows, 2, 6))
    query = normalize_query(parse("SELECT b FROM virt WHERE a >= 5"))
    executor = Executor(Database("empty"))
    stream = executor.execute_stream(query, sources={"virt": source})
    assert stream.drain_rows() == [(i * 10,) for i in range(5, 20)]


def test_engine_source_requires_streamable_query(engine_db):
    source = BlockStream(["a"], blocks_from_rows([(1,)], 1, 4))
    query = normalize_query(parse("SELECT a FROM virt ORDER BY a"))
    with pytest.raises(ExecutionError):
        Executor(engine_db).execute_stream(query, sources={"virt": source})


# ---------------------------------------------------------------------------
# Backend seam
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind", ["memory", "sqlite"])
@pytest.mark.parametrize(
    "sql",
    [
        "SELECT a, b FROM t WHERE a > 40",
        "SELECT b, SUM(a) FROM t GROUP BY b ORDER BY b",
        "SELECT a FROM t WHERE a > 9999",  # Empty result: zero blocks.
    ],
)
def test_backend_stream_matches_execute(kind, sql):
    backend = make_backend(kind)
    backend.create_table(schema("t", ("a", "int"), ("b", "int")))
    backend.insert_rows("t", [(i, i % 5) for i in range(100)])
    query = normalize_query(parse(sql))
    expected = backend.execute(query)
    expected_stats = (
        backend.last_stats.bytes_scanned,
        backend.last_stats.rows_output,
    )
    stream = backend.execute_stream(query, block_rows=8)
    assert stream.columns == expected.columns
    blocks = list(stream)
    assert all(len(b) <= 8 for b in blocks)
    assert [r for b in blocks for r in b.rows()] == expected.rows
    assert (stream.stats.bytes_scanned, stream.stats.rows_output) == expected_stats


def test_sqlite_stream_closes_cursor_on_early_exit():
    backend = make_backend("sqlite")
    backend.create_table(schema("t", ("a", "int")))
    backend.insert_rows("t", [(i,) for i in range(100)])
    stream = backend.execute_stream(
        normalize_query(parse("SELECT a FROM t")), block_rows=10
    )
    next(iter(stream))
    stream.close()  # Must not raise; finalizes stats.
    assert stream.stats.bytes_scanned == backend.table_bytes("t")


# ---------------------------------------------------------------------------
# Split plans through the client: streaming vs materializing
# ---------------------------------------------------------------------------

# Sales-shaped plans covering every plan family: fully-pushed scans,
# residual filters, grp() unnest re-aggregation, hom SUM, multi-round-trip
# IN sets, scalar subplans, ORDER BY + LIMIT, and FROM-subqueries.
STREAM_VS_MAT_QUERIES = SALES_WORKLOAD + [
    "SELECT o_orderkey, o_price FROM orders WHERE o_price > 2500",
    "SELECT o_orderkey FROM orders WHERE o_price * o_qty > 40000",
    "SELECT o_status, SUM(o_qty), MIN(o_price) FROM orders GROUP BY o_status",
    "SELECT o_orderkey FROM orders WHERE o_custkey IN "
    "(SELECT o_custkey FROM orders GROUP BY o_custkey HAVING SUM(o_qty) > 140)",
    "SELECT o_custkey, SUM(o_price) AS total FROM orders GROUP BY o_custkey "
    "HAVING SUM(o_price) > (SELECT SUM(o_price) * 0.05 FROM orders) ORDER BY total DESC",
    "SELECT seg, SUM(rev) FROM (SELECT c_segment AS seg, o_price * o_qty AS rev "
    "FROM orders, customer WHERE o_custkey = c_custkey AND o_discount <= 5) AS x "
    "GROUP BY seg ORDER BY seg",
    "SELECT COUNT(*) FROM orders WHERE o_comment LIKE '%brown%'",
]


def run_both_modes(client, sql, block_rows=32):
    """Plan once, execute with streaming and materializing PlanExecutors."""
    query = normalize_query(parse(sql))
    planned = client.planner.plan(query)
    streaming = PlanExecutor(
        client.backend,
        client.provider,
        client.network,
        client.disk,
        streaming=True,
        block_rows=block_rows,
    )
    materializing = PlanExecutor(
        client.backend, client.provider, client.network, client.disk,
        streaming=False,
    )
    stream = streaming.execute_iter(planned.plan)
    streamed = stream.drain()
    materialized, mat_ledger = materializing.execute(planned.plan)
    return streamed, stream.ledger, materialized, mat_ledger


@pytest.mark.parametrize("sql", STREAM_VS_MAT_QUERIES)
def test_streaming_matches_materializing(each_backend_client, sql):
    streamed, s_ledger, materialized, m_ledger = run_both_modes(
        each_backend_client, sql
    )
    assert streamed.columns == materialized.columns
    assert streamed.rows == materialized.rows  # Exact order.
    assert ledger_bytes(s_ledger) == ledger_bytes(m_ledger)


@given(
    columns=st.sampled_from(
        ["o_orderkey", "o_orderkey, o_price", "o_orderkey, o_price, o_qty"]
    ),
    filters=st.lists(
        st.one_of(
            st.builds(
                lambda c, v: f"{c} > {v}",
                st.sampled_from(["o_price", "o_qty", "o_discount"]),
                st.integers(0, 4000),
            ),
            st.sampled_from(
                [
                    "o_status = 'OPEN'",
                    "o_price * o_qty > 20000",
                    "o_comment LIKE '%green%'",
                ]
            ),
        ),
        min_size=0,
        max_size=2,
    ),
)
@settings(max_examples=20, deadline=None)
def test_streaming_property_random_scans(sales_client, columns, filters):
    """Property: on stream-shaped queries (the fast path) both modes agree
    row-for-row and byte-for-byte."""
    where = (" WHERE " + " AND ".join(filters)) if filters else ""
    sql = f"SELECT {columns} FROM orders{where}"
    streamed, s_ledger, materialized, m_ledger = run_both_modes(
        sales_client, sql, block_rows=17
    )
    assert streamed.rows == materialized.rows
    assert ledger_bytes(s_ledger) == ledger_bytes(m_ledger)


# ---------------------------------------------------------------------------
# TPC-H / SSB fixtures, both backends
# ---------------------------------------------------------------------------


def _client_pair(db, workload):
    provider = CryptoProvider(MASTER_KEY, paillier_bits=384)
    memory = MonomiClient.setup(
        db, workload, master_key=MASTER_KEY, paillier_bits=384,
        space_budget=2.0, provider=provider,
    )
    sqlite = MonomiClient.setup(
        db, workload, master_key=MASTER_KEY, paillier_bits=384,
        space_budget=2.0, provider=provider, design=memory.design,
        backend="sqlite",
    )
    return memory, sqlite


@pytest.fixture(scope="module")
def tpch_clients():
    db = tpch_generate(scale=TPCH_SCALE, seed=5)
    queries = tpch_queries(TPCH_SCALE)
    return queries, _client_pair(db, [queries[n].sql for n in TPCH_NUMBERS])


@pytest.mark.parametrize("number", TPCH_NUMBERS)
@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_tpch_streaming_matches_materializing(tpch_clients, number, backend):
    queries, (memory, sqlite) = tpch_clients
    client = memory if backend == "memory" else sqlite
    streamed, s_ledger, materialized, m_ledger = run_both_modes(
        client, queries[number].sql, block_rows=64
    )
    assert streamed.rows == materialized.rows
    assert ledger_bytes(s_ledger) == ledger_bytes(m_ledger)


@pytest.fixture(scope="module")
def ssb_clients():
    db = ssb_generate(scale=SSB_SCALE, seed=13)
    queries = ssb_queries()
    return queries, _client_pair(db, [queries[n].sql for n in SSB_NUMBERS])


@pytest.mark.parametrize("number", SSB_NUMBERS)
@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_ssb_streaming_matches_materializing(ssb_clients, number, backend):
    queries, (memory, sqlite) = ssb_clients
    client = memory if backend == "memory" else sqlite
    streamed, s_ledger, materialized, m_ledger = run_both_modes(
        client, queries[number].sql, block_rows=64
    )
    assert streamed.rows == materialized.rows
    assert ledger_bytes(s_ledger) == ledger_bytes(m_ledger)


# ---------------------------------------------------------------------------
# Client API
# ---------------------------------------------------------------------------


def test_client_execute_iter_streams_blocks(each_backend_client):
    sql = "SELECT o_orderkey, o_price FROM orders WHERE o_price > 1500"
    stream = each_backend_client.execute_iter(sql, block_rows=16)
    blocks = list(stream)
    rows = [r for b in blocks for r in b.rows()]
    assert len(blocks) > 1  # Genuinely chunked, not one big block.
    assert all(len(b) <= 16 for b in blocks)
    outcome = each_backend_client.execute(sql)
    assert rows == outcome.rows
    assert stream.columns == outcome.columns
    assert ledger_bytes(stream.ledger) == ledger_bytes(outcome.ledger)
    assert stream.planned.plan.remote_relations()


def test_client_execute_iter_drain(sales_client):
    sql = SALES_WORKLOAD[0]
    drained = sales_client.execute_iter(sql).drain()
    outcome = sales_client.execute(sql)
    assert canonical(drained.rows) == canonical(outcome.rows)
    assert ledger_bytes(drained.ledger) == ledger_bytes(outcome.ledger)


# ---------------------------------------------------------------------------
# Bounded memory: the whole point of the pipeline
# ---------------------------------------------------------------------------


def _consume_stream(backend, query, block_rows):
    count = 0
    for block in backend.execute_stream(query, block_rows=block_rows):
        count += len(block)
    return count


def _peaks(num_rows: int) -> tuple[int, int, int]:
    """(streaming peak, materializing peak, row count) on a fresh table."""
    backend = make_backend("memory")
    backend.create_table(
        schema("big", ("a", "int"), ("b", "int"), ("c", "int"))
    )
    backend.insert_rows("big", [(i, i * 7, i % 97) for i in range(num_rows)])
    query = normalize_query(parse("SELECT a, b FROM big WHERE c < 80"))

    gc.collect()  # Keep earlier-suite garbage out of the traced window.
    tracemalloc.start()
    count = _consume_stream(backend, query, block_rows=512)
    _, stream_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    gc.collect()
    tracemalloc.start()
    result = backend.execute(query)
    _, mat_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert count == len(result.rows) > 0
    return stream_peak, mat_peak, count


def test_streaming_peak_memory_is_bounded():
    """On a table ≫ block size, streaming peak memory must be a small
    fraction of materializing peak AND stay flat as the dataset grows —
    O(block), not O(dataset).  Streaming peaks are tiny (~60KB), so the
    flatness bound is additive (generous absolute slack for stray
    allocations landing in the traced window) rather than a tight ratio:
    the materialized footprint grows by megabytes over the same doubling,
    so 256KB of slack cannot mask an O(dataset) regression."""
    stream_small, mat_small, rows_small = _peaks(20_000)
    stream_large, mat_large, rows_large = _peaks(40_000)
    assert rows_large > 2 * rows_small * 0.9
    # Materializing grows with the dataset; streaming must not.
    assert mat_large > mat_small * 1.5
    assert stream_large < stream_small + 256 * 1024
    # And streaming stays far below the materialized footprint.
    assert stream_large * 5 < mat_large


# ---------------------------------------------------------------------------
# Satellite: unnest hot loop
# ---------------------------------------------------------------------------


class TestUnnestRows:
    SPECS = [
        DecryptSpec(kind="plain", output_name="k"),
        DecryptSpec(kind="grp", output_name="v", elem_kind="det"),
        DecryptSpec(kind="grp", output_name="w", elem_kind="det"),
    ]

    def test_explodes_groups_and_replicates_scalars(self):
        rows = [(1, [10, 11], [20, 21]), (2, [30], [40])]
        out = _unnest_rows(["k", "v", "w"], rows, self.SPECS)
        assert out == [(1, 10, 20), (1, 11, 21), (2, 30, 40)]

    def test_empty_groups_vanish(self):
        assert _unnest_rows(["k", "v", "w"], [(1, [], [])], self.SPECS) == []

    def test_misaligned_groups_rejected(self):
        with pytest.raises(ExecutionError):
            _unnest_rows(["k", "v", "w"], [(1, [10], [20, 21])], self.SPECS)

    def test_no_list_columns_is_identity(self):
        specs = [DecryptSpec(kind="plain", output_name="k")]
        rows = [(1,), (2,)]
        assert _unnest_rows(["k"], rows, specs) is rows
