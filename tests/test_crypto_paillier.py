"""Paillier and packed-aggregation tests (homomorphism properties)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CryptoError, DomainError
from repro.crypto.packing import (
    GroupedHomomorphicAggregator,
    PackedLayout,
    decrypt_column_sums,
)
from repro.crypto.paillier import generate_keypair

SEED = b"paillier-test-seed"


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(modulus_bits=384, seed=SEED)


class TestPaillier:
    def test_roundtrip(self, keypair):
        pub, priv = keypair
        for m in (0, 1, 42, 10**20):
            assert priv.decrypt(pub.encrypt(m)) == m

    @given(st.integers(min_value=0, max_value=10**30), st.integers(min_value=0, max_value=10**30))
    @settings(max_examples=20, deadline=None)
    def test_additive_homomorphism(self, keypair, a, b):
        pub, priv = keypair
        assert priv.decrypt(pub.add(pub.encrypt(a), pub.encrypt(b))) == a + b

    def test_scalar_multiplication(self, keypair):
        pub, priv = keypair
        assert priv.decrypt(pub.mul_scalar(pub.encrypt(7), 13)) == 91

    def test_add_many_matches_sequential(self, keypair):
        pub, priv = keypair
        values = [3, 14, 15, 92, 65]
        cts = [pub.encrypt(v) for v in values]
        assert priv.decrypt(pub.add_many(cts)) == sum(values)

    def test_randomized_ciphertexts(self, keypair):
        pub, _ = keypair
        assert pub.encrypt(5) != pub.encrypt(5)

    def test_deterministic_keygen(self):
        pub1, _ = generate_keypair(modulus_bits=256, seed=b"same-seed")
        pub2, _ = generate_keypair(modulus_bits=256, seed=b"same-seed")
        assert pub1.n == pub2.n

    def test_domain_errors(self, keypair):
        pub, priv = keypair
        with pytest.raises(DomainError):
            pub.encrypt(pub.n)
        with pytest.raises(CryptoError):
            priv.decrypt(pub.n_squared)
        with pytest.raises(CryptoError):
            generate_keypair(modulus_bits=32)

    def test_plaintext_bits(self, keypair):
        pub, _ = keypair
        assert pub.plaintext_bits == pub.n.bit_length() - 1


class TestPackedLayout:
    def test_layout_geometry(self):
        layout = PackedLayout(column_bits=(32, 16), pad_bits=8, plaintext_bits=383)
        assert layout.row_bits == (32 + 8) + (16 + 8)
        assert layout.rows_per_ciphertext == 383 // 64

    def test_encode_decode_rows(self):
        layout = PackedLayout(column_bits=(20, 20), pad_bits=6, plaintext_bits=383)
        rows = [[5, 10], [1000, 1], [0, 99]]
        assert layout.decode_rows(layout.encode_rows(rows), 3) == rows

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**20 - 1),
                st.integers(min_value=0, max_value=2**16 - 1),
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=40)
    def test_column_sums_property(self, rows):
        layout = PackedLayout(column_bits=(20, 16), pad_bits=10, plaintext_bits=400)
        rows = rows[: layout.rows_per_ciphertext]
        plaintext = layout.encode_rows([list(r) for r in rows])
        sums = layout.decode_column_sums(plaintext)
        assert sums[0] == sum(r[0] for r in rows)
        assert sums[1] == sum(r[1] for r in rows)

    def test_rejects_overwide_value(self):
        layout = PackedLayout(column_bits=(8,), pad_bits=4, plaintext_bits=100)
        with pytest.raises(DomainError):
            layout.encode_rows([[256]])

    def test_rejects_negative(self):
        layout = PackedLayout(column_bits=(8,), pad_bits=4, plaintext_bits=100)
        with pytest.raises(DomainError):
            layout.encode_rows([[-1]])

    def test_rejects_too_many_rows(self):
        layout = PackedLayout(column_bits=(8,), pad_bits=4, plaintext_bits=24)
        assert layout.rows_per_ciphertext == 2
        with pytest.raises(DomainError):
            layout.encode_rows([[1], [2], [3]])

    def test_row_must_fit_plaintext(self):
        with pytest.raises(CryptoError):
            PackedLayout(column_bits=(100,), pad_bits=30, plaintext_bits=64)


class TestGroupedHomomorphicAddition:
    def test_grouped_addition_one_multiply_per_row(self, keypair):
        pub, priv = keypair
        layout = PackedLayout(column_bits=(16, 16, 16), pad_bits=8, plaintext_bits=pub.plaintext_bits)
        agg = GroupedHomomorphicAggregator(pub, layout)
        rows = [[1, 2, 3], [10, 20, 30], [100, 200, 300]]
        for row in rows:
            agg.add_ciphertext("g1", pub.encrypt(layout.encode_rows([row])))
        assert agg.multiplications == len(rows) - 1
        sums = decrypt_column_sums(priv, layout, agg.accumulated()["g1"])
        assert sums == [111, 222, 333]

    def test_multiple_groups_isolated(self, keypair):
        pub, priv = keypair
        layout = PackedLayout(column_bits=(16,), pad_bits=8, plaintext_bits=pub.plaintext_bits)
        agg = GroupedHomomorphicAggregator(pub, layout)
        agg.add_ciphertext("a", pub.encrypt(layout.encode_rows([[5]])))
        agg.add_ciphertext("b", pub.encrypt(layout.encode_rows([[7]])))
        agg.add_ciphertext("a", pub.encrypt(layout.encode_rows([[5]])))
        accumulated = agg.accumulated()
        assert decrypt_column_sums(priv, layout, accumulated["a"])[0] == 10
        assert decrypt_column_sums(priv, layout, accumulated["b"])[0] == 7

    def test_layout_wider_than_key_rejected(self, keypair):
        pub, _ = keypair
        layout = PackedLayout(column_bits=(16,), pad_bits=8, plaintext_bits=pub.plaintext_bits + 64)
        with pytest.raises(CryptoError):
            GroupedHomomorphicAggregator(pub, layout)

    def test_max_safe_rows(self):
        layout = PackedLayout(column_bits=(8,), pad_bits=10, plaintext_bits=100)
        assert layout.max_safe_rows() == 1 << 10
