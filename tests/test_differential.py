"""Differential oracle: random SELECTs, encrypted pipeline vs plaintext.

A hypothesis strategy generates random single-table ``SELECT`` queries
over the sales schema — projections, filters (comparison / BETWEEN / IN /
equality / single-pattern LIKE), GROUP BY with aggregates, HAVING,
ORDER BY, LIMIT — and every generated query executes three ways:

* the plaintext relational engine over the plaintext database (oracle);
* the full encrypted pipeline on the in-memory backend;
* the full encrypted pipeline on the SQLite backend.

All three must return identical result sets, and the two encrypted
executions must additionally charge identical ledger byte counts — the
shared-provider deterministic-planning invariant the backend equivalence
suite asserts for fixed queries, extended here to generated ones.

Queries the workload-derived design cannot plan are skipped via
``assume`` (planning feasibility is deterministic for a fixed design, so
both encrypted clients always agree on it — asserted before skipping).
LIMIT queries append ``o_orderkey`` (unique) to the ORDER BY so the
truncated prefix is well-defined in every engine.
"""

from __future__ import annotations

import datetime

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.common.errors import PlanningError, UnsupportedQueryError
from repro.core import normalize_query
from repro.sql import parse
from repro.testkit import canonical


def _oracle(executor, sql: str):
    """Plaintext-engine reference execution of a SQL text."""
    return executor.execute(normalize_query(parse(sql)))

INT_COLUMNS = ("o_price", "o_qty", "o_discount", "o_custkey")
PROJECTION_COLUMNS = (
    "o_orderkey",
    "o_custkey",
    "o_price",
    "o_qty",
    "o_discount",
    "o_date",
    "o_status",
)
GROUP_COLUMNS = ("o_custkey", "o_status")
AGG_FUNCS = ("SUM", "COUNT", "MIN", "MAX", "AVG")
AGG_ARGS = ("o_price", "o_qty", "o_discount")
STATUSES = ("OPEN", "SHIPPED", "RETURNED")
LIKE_WORDS = ("brown", "dog", "sleep", "blue", "fox", "purrs", "green")
COMPARISONS = ("<", "<=", ">", ">=", "=", "<>")


def _sql_date(value: datetime.date) -> str:
    return f"DATE '{value.isoformat()}'"


@st.composite
def predicates(draw) -> str:
    kind = draw(
        st.sampled_from(
            ("int_cmp", "between", "status_eq", "custkey_in", "date_cmp", "like")
        )
    )
    if kind == "int_cmp":
        column = draw(st.sampled_from(INT_COLUMNS))
        op = draw(st.sampled_from(COMPARISONS))
        bounds = {
            "o_price": (0, 5200),
            "o_qty": (0, 55),
            "o_discount": (0, 12),
            "o_custkey": (0, 33),
        }[column]
        value = draw(st.integers(*bounds))
        return f"{column} {op} {value}"
    if kind == "between":
        lo = draw(st.integers(0, 5000))
        hi = draw(st.integers(lo, 5400))
        return f"o_price BETWEEN {lo} AND {hi}"
    if kind == "status_eq":
        op = draw(st.sampled_from(("=", "<>")))
        status = draw(st.sampled_from(STATUSES))
        return f"o_status {op} '{status}'"
    if kind == "custkey_in":
        keys = draw(st.lists(st.integers(1, 32), min_size=1, max_size=4))
        rendered = ", ".join(str(k) for k in sorted(set(keys)))
        return f"o_custkey IN ({rendered})"
    if kind == "date_cmp":
        op = draw(st.sampled_from(("<", "<=", ">", ">=")))
        day = draw(st.integers(0, 1100))
        date = datetime.date(1995, 1, 1) + datetime.timedelta(days=day)
        return f"o_date {op} {_sql_date(date)}"
    word = draw(st.sampled_from(LIKE_WORDS))
    negated = draw(st.booleans())
    maybe_not = "NOT " if negated else ""
    return f"o_comment {maybe_not}LIKE '%{word}%'"


@st.composite
def where_clauses(draw) -> str:
    terms = draw(st.lists(predicates(), min_size=1, max_size=3))
    connector = draw(st.sampled_from((" AND ", " OR ")))
    return connector.join(terms)


@st.composite
def plain_selects(draw) -> str:
    columns = draw(
        st.lists(
            st.sampled_from(PROJECTION_COLUMNS),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    sql = f"SELECT {', '.join(columns)} FROM orders"
    if draw(st.booleans()):
        sql += f" WHERE {draw(where_clauses())}"
    use_limit = draw(st.booleans())
    order_column = draw(st.sampled_from(PROJECTION_COLUMNS + (None,)))
    if order_column is not None or use_limit:
        keys = []
        if order_column is not None:
            direction = draw(st.sampled_from(("", " DESC")))
            keys.append(f"{order_column}{direction}")
        if use_limit and order_column != "o_orderkey":
            keys.append("o_orderkey")  # Unique tiebreak: prefix well-defined.
        sql += f" ORDER BY {', '.join(keys)}"
    if use_limit:
        sql += f" LIMIT {draw(st.integers(1, 40))}"
    return sql


@st.composite
def aggregate_selects(draw) -> str:
    group_by = draw(
        st.lists(
            st.sampled_from(GROUP_COLUMNS), min_size=0, max_size=2, unique=True
        )
    )
    num_aggs = draw(st.integers(1, 2))
    aggregates = []
    for index in range(num_aggs):
        func = draw(st.sampled_from(AGG_FUNCS))
        arg = "*" if func == "COUNT" and draw(st.booleans()) else draw(
            st.sampled_from(AGG_ARGS)
        )
        aggregates.append(f"{func}({arg}) AS a{index}")
    items = list(group_by) + aggregates
    sql = f"SELECT {', '.join(items)} FROM orders"
    if draw(st.booleans()):
        sql += f" WHERE {draw(where_clauses())}"
    if group_by:
        sql += f" GROUP BY {', '.join(group_by)}"
        if draw(st.booleans()):
            threshold = draw(st.integers(0, 40))
            sql += f" HAVING COUNT(*) > {threshold}"
        if draw(st.booleans()):
            sql += f" ORDER BY {group_by[0]}"
    return sql


random_selects = st.one_of(plain_selects(), aggregate_selects())


def _run_encrypted(client, sql: str):
    """Outcome or a planning-infeasibility marker (deterministic)."""
    try:
        return client.execute(sql)
    except (PlanningError, UnsupportedQueryError):
        return None


@given(sql=random_selects)
@settings(
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_select_differential(
    sql, sales_client, sales_client_sqlite, plain_executor
):
    oracle = _oracle(plain_executor, sql)
    memory_outcome = _run_encrypted(sales_client, sql)
    sqlite_outcome = _run_encrypted(sales_client_sqlite, sql)
    # Feasibility must agree: same design, same shared provider.
    assert (memory_outcome is None) == (sqlite_outcome is None), sql
    assume(memory_outcome is not None)
    assert canonical(memory_outcome.rows) == canonical(oracle.rows), sql
    assert canonical(sqlite_outcome.rows) == canonical(oracle.rows), sql
    assert (
        memory_outcome.ledger.transfer_bytes,
        memory_outcome.ledger.server_bytes_scanned,
        memory_outcome.ledger.round_trips,
    ) == (
        sqlite_outcome.ledger.transfer_bytes,
        sqlite_outcome.ledger.server_bytes_scanned,
        sqlite_outcome.ledger.round_trips,
    ), sql


@given(sql=random_selects)
@settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_select_differential_through_service(
    sql, sales_client, plain_executor
):
    """The service layer must preserve the oracle equivalence too (its
    plan cache and worker views change scheduling, never results)."""
    oracle = _oracle(plain_executor, sql)
    try:
        with sales_client.service(workers=2) as service:
            outcome = service.execute(sql)
            repeat = service.execute(sql)
    except (PlanningError, UnsupportedQueryError):
        assume(False)
        return
    assert canonical(outcome.rows) == canonical(oracle.rows), sql
    assert canonical(repeat.rows) == canonical(outcome.rows), sql


@given(sql=random_selects)
@settings(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_select_differential_over_network(
    sql, sales_client, sales_client_remote, plain_executor
):
    """The network transport joins the differential: generated queries
    through a live TCP loopback server must match the plaintext oracle
    and charge exactly the in-process client's ledger byte counts.
    (Reduced example budget: each example crosses a real socket.)"""
    oracle = _oracle(plain_executor, sql)
    local_outcome = _run_encrypted(sales_client, sql)
    remote_outcome = _run_encrypted(sales_client_remote, sql)
    # Feasibility must agree: same design, same shared provider.
    assert (local_outcome is None) == (remote_outcome is None), sql
    assume(local_outcome is not None)
    assert canonical(remote_outcome.rows) == canonical(oracle.rows), sql
    assert (
        remote_outcome.ledger.transfer_bytes,
        remote_outcome.ledger.server_bytes_scanned,
        remote_outcome.ledger.round_trips,
    ) == (
        local_outcome.ledger.transfer_bytes,
        local_outcome.ledger.server_bytes_scanned,
        local_outcome.ledger.round_trips,
    ), sql


def test_fixed_regression_corpus(
    sales_client, sales_client_sqlite, plain_executor
):
    """Deterministic pinned corpus: shapes the strategies above cover,
    checked without hypothesis so a failure names the query directly."""
    corpus = [
        "SELECT o_orderkey, o_price FROM orders WHERE o_price > 4000 "
        "OR o_qty <= 3 ORDER BY o_price DESC, o_orderkey LIMIT 7",
        "SELECT o_custkey, SUM(o_discount) AS a0, COUNT(*) AS a1 FROM orders "
        "WHERE o_status <> 'OPEN' GROUP BY o_custkey HAVING COUNT(*) > 2",
        "SELECT o_status, MIN(o_price) AS a0, MAX(o_price) AS a1 FROM orders "
        "GROUP BY o_status ORDER BY o_status",
        "SELECT o_custkey, AVG(o_price) AS a0 FROM orders "
        "WHERE o_date >= DATE '1996-01-01' AND o_comment LIKE '%brown%' "
        "GROUP BY o_custkey",
        "SELECT COUNT(*) AS a0 FROM orders WHERE o_custkey IN (3, 5, 8, 13)",
        "SELECT o_date, o_status FROM orders "
        "WHERE o_price BETWEEN 900 AND 2500 ORDER BY o_date, o_orderkey "
        "LIMIT 19",
    ]
    for sql in corpus:
        oracle = _oracle(plain_executor, sql)
        for client in (sales_client, sales_client_sqlite):
            outcome = client.execute(sql)
            assert canonical(outcome.rows) == canonical(oracle.rows), sql
