"""Plan-shape tests: Algorithm 1 produces the structures the paper shows.

These inspect *plans*, not results: where the GROUP BY lands, when the
pre-filter appears, when ORDER BY + LIMIT pushes, when subqueries become
round trips — the behaviours of §4 and §5 as observable artifacts.
"""

from __future__ import annotations

import pytest

from repro.testkit import MASTER_KEY, build_sales_db
from repro.core import (
    CryptoProvider,
    HomGroup,
    PhysicalDesign,
    Scheme,
    TechniqueFlags,
    generate_query_plan,
    normalize_query,
)
from repro.core.candidates import base_design_for_plain
from repro.core.plan import RemoteRelation
from repro.sql import parse, to_sql


@pytest.fixture(scope="module")
def db():
    return build_sales_db(num_orders=60, seed=21)


@pytest.fixture(scope="module")
def provider():
    return CryptoProvider(MASTER_KEY, paillier_bits=384)


def plan_for(db, provider, design, sql, flags=TechniqueFlags(), stats_max=None):
    schemas = {name: t.schema for name, t in db.tables.items()}
    return generate_query_plan(
        normalize_query(parse(sql)),
        design,
        schemas,
        provider,
        flags,
        stats_max,
        plain_db=db,
    )


def full_design(db) -> PhysicalDesign:
    design = base_design_for_plain(db)
    design.add("orders", "o_custkey", Scheme.DET)
    design.add("orders", "o_status", Scheme.DET)
    design.add("orders", "o_price", Scheme.OPE)
    design.add("orders", "o_date", Scheme.OPE)
    design.add("orders", "o_qty", Scheme.OPE)
    design.add("orders", "o_comment", Scheme.SEARCH)
    design.add("customer", "c_custkey", Scheme.DET)
    design.add_hom_group(HomGroup("orders", ("o_price", "o_qty"), 1))
    return design


class TestPlanShapes:
    def test_fully_pushed_group_by(self, db, provider):
        plan = plan_for(
            db,
            provider,
            full_design(db),
            "SELECT o_custkey, SUM(o_price) FROM orders GROUP BY o_custkey",
        )
        remote = plan.relations[0]
        assert isinstance(remote, RemoteRelation)
        text = remote.sql()
        assert "GROUP BY o_custkey_det" in text
        assert "hom_agg" in text
        assert plan.residual.group_by == ()  # Nothing left to group locally.

    def test_grp_fallback_without_hom(self, db, provider):
        design = full_design(db)
        design.hom_groups.clear()
        design.entries = {e for e in design.entries if e.scheme is not Scheme.HOM}
        plan = plan_for(
            db,
            provider,
            design,
            "SELECT o_custkey, SUM(o_price) FROM orders GROUP BY o_custkey",
        )
        remote = plan.relations[0]
        assert "grp(" in remote.sql()
        assert remote.unnest

    def test_local_filter_forces_client_grouping(self, db, provider):
        plan = plan_for(
            db,
            provider,
            full_design(db),
            "SELECT o_custkey, SUM(o_price) FROM orders "
            "WHERE o_price * o_qty > 1000 GROUP BY o_custkey",
        )
        remote = plan.relations[0]
        assert "GROUP BY" not in remote.sql()
        assert plan.residual.group_by  # Client groups after filtering.
        assert plan.residual.where is not None

    def test_prefilter_appears_with_stats(self, db, provider):
        plan = plan_for(
            db,
            provider,
            full_design(db),
            "SELECT o_custkey FROM orders GROUP BY o_custkey "
            "HAVING SUM(o_qty) > 200",
            stats_max=lambda table, expr: 50 if expr == "o_qty" else None,
        )
        text = plan.relations[0].sql()
        assert "HAVING" in text and "max(o_qty_ope)" in text and "count(*)" in text
        # The exact predicate still runs locally.
        assert plan.residual.where is not None or plan.residual.having is not None

    def test_prefilter_disabled_by_flag(self, db, provider):
        plan = plan_for(
            db,
            provider,
            full_design(db),
            "SELECT o_custkey FROM orders GROUP BY o_custkey "
            "HAVING SUM(o_qty) > 200",
            flags=TechniqueFlags(True, True, True, False, True),
            stats_max=lambda table, expr: 50,
        )
        assert plan.relations[0].query.having is None

    def test_order_limit_pushdown(self, db, provider):
        plan = plan_for(
            db,
            provider,
            full_design(db),
            "SELECT o_orderkey, o_price FROM orders WHERE o_status = 'OPEN' "
            "ORDER BY o_price DESC LIMIT 5",
        )
        remote = plan.relations[0].query
        assert remote.limit == 5
        assert remote.order_by and "o_price_ope" in to_sql(remote.order_by[0].expr)

    def test_no_pushdown_when_filter_is_local(self, db, provider):
        plan = plan_for(
            db,
            provider,
            full_design(db),
            "SELECT o_orderkey FROM orders WHERE o_price * o_qty > 500 "
            "ORDER BY o_price LIMIT 5",
        )
        assert plan.relations[0].query.limit is None

    def test_in_subquery_round_trip(self, db, provider):
        plan = plan_for(
            db,
            provider,
            full_design(db),
            "SELECT o_orderkey FROM orders WHERE o_custkey IN "
            "(SELECT o_custkey FROM orders GROUP BY o_custkey HAVING SUM(o_qty) > 100)",
        )
        assert len(plan.subplans) == 1
        assert plan.subplans[0].mode == "in_set_server"
        assert "in_set" in plan.relations[0].sql()

    def test_scalar_subquery_binds_to_residual(self, db, provider):
        plan = plan_for(
            db,
            provider,
            full_design(db),
            "SELECT o_custkey, SUM(o_price) AS t FROM orders GROUP BY o_custkey "
            "HAVING SUM(o_price) > (SELECT SUM(o_price) * 0.1 FROM orders)",
        )
        assert any(sp.mode == "scalar_residual" for sp in plan.subplans)

    def test_selectivity_hint_attached(self, db, provider):
        plan = plan_for(
            db,
            provider,
            full_design(db),
            "SELECT COUNT(*) FROM orders WHERE o_price > 4500",
        )
        hint = plan.relations[0].plain_selectivity
        assert hint is not None and 0.0 < hint < 0.35

    def test_client_join_fallback_avoids_cross_product(self, db, provider):
        # RND-only design (no DET on the join keys): the join must happen
        # on the client via separate per-table fetches, not a server cross
        # product.
        from repro.sql import ast

        design = PhysicalDesign()
        for name, table in db.tables.items():
            for column in table.schema.columns:
                design.add(name, ast.Column(column.name), Scheme.RND)
        plan = plan_for(
            db,
            provider,
            design,
            "SELECT c_name, o_price FROM orders, customer WHERE o_custkey = c_custkey",
        )
        remotes = [r for r in plan.relations if isinstance(r, RemoteRelation)]
        assert len(remotes) == 2
        for remote in remotes:
            assert len(remote.query.from_items) == 1

    def test_explain_is_readable(self, db, provider):
        plan = plan_for(
            db,
            provider,
            full_design(db),
            "SELECT o_custkey, SUM(o_price) FROM orders GROUP BY o_custkey",
        )
        text = plan.explain()
        assert "RemoteSQL" in text and "Residual" in text
