"""Multicore execution layer: sharded crypto, partition scans, prefetch.

The parallel layer's contract is strict equivalence: for every worker
count, partition count, and prefetch depth, the system must produce the
same plaintext rows, the same ledger byte counts, and the same plan
choices as the serial path — only wall-clock time may differ.  These
tests pin that contract, plus the :class:`ConfigError` cases where a
requested mode cannot be honored and must fail loudly instead of
silently degrading.
"""

from __future__ import annotations

import datetime
import os

import pytest

from repro.common.errors import ConfigError, DomainError
from repro.common.parallel import WorkerPool, resolve_workers, shard_spans
from repro.core import CryptoProvider, MonomiClient, PlanExecutor, normalize_query
from repro.core.pexec import _resolve_prefetch
from repro.engine import schema
from repro.engine.executor import ResultSet
from repro.server import make_backend
from repro.server.backend import ServerBackend
from repro.sql import parse
from repro.testkit import MASTER_KEY, build_sales_db, canonical

WORKER_COUNTS = [1, 2, 4]

PARALLEL_WORKLOAD = [
    "SELECT o_custkey, SUM(o_price * o_qty) AS rev FROM orders "
    "WHERE o_price > 500 GROUP BY o_custkey ORDER BY rev DESC",
    "SELECT o_orderkey, o_price, o_qty FROM orders WHERE o_price > 2500",
    "SELECT COUNT(*) FROM orders WHERE o_comment LIKE '%brown%'",
]


def ledger_bytes(ledger) -> tuple:
    return (ledger.transfer_bytes, ledger.server_bytes_scanned, ledger.round_trips)


def _raise_for_marker(value: int) -> int:
    """Module-level (picklable) task that fails on the marker value."""
    if value == 1:
        raise RuntimeError("task failed")
    return value


# ---------------------------------------------------------------------------
# Policy helpers
# ---------------------------------------------------------------------------


class TestResolvers:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("MONOMI_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_consulted_when_unset(self, monkeypatch):
        monkeypatch.setenv("MONOMI_WORKERS", "5")
        assert resolve_workers(None) == 5
        monkeypatch.delenv("MONOMI_WORKERS")
        assert resolve_workers(None) == 1

    def test_zero_means_per_core(self, monkeypatch):
        assert resolve_workers(0) == (os.cpu_count() or 1)
        monkeypatch.setenv("MONOMI_WORKERS", "0")
        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_garbage_env_raises(self, monkeypatch):
        monkeypatch.setenv("MONOMI_WORKERS", "many")
        with pytest.raises(ConfigError):
            resolve_workers(None)
        monkeypatch.setenv("MONOMI_WORKERS", "-2")
        with pytest.raises(ConfigError):
            resolve_workers(None)

    def test_negative_explicit_raises(self):
        with pytest.raises(ConfigError):
            resolve_workers(-1)

    def test_prefetch_env(self, monkeypatch):
        monkeypatch.setenv("MONOMI_PREFETCH", "6")
        assert _resolve_prefetch(None) == 6
        monkeypatch.setenv("MONOMI_PREFETCH", "soon")
        with pytest.raises(ConfigError):
            _resolve_prefetch(None)
        with pytest.raises(ConfigError):
            _resolve_prefetch(-1)

    def test_shard_spans_partition_range(self):
        for total in (0, 1, 7, 100, 101):
            for parts in (1, 2, 3, 8):
                spans = shard_spans(total, parts)
                assert len(spans) == min(parts, total)
                covered = [i for lo, hi in spans for i in range(lo, hi)]
                assert covered == list(range(total))
                sizes = {hi - lo for lo, hi in spans}
                assert len(sizes) <= 2  # Near-equal: sizes differ by <= 1.

    def test_shard_spans_rejects_bad_parts(self):
        with pytest.raises(ConfigError):
            shard_spans(10, 0)


class TestWorkerPoolFallback:
    def test_creation_failure_degrades_to_serial(self, monkeypatch):
        import repro.common.parallel as parallel_mod

        def broken(*args, **kwargs):
            raise OSError("no semaphores here")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", broken)
        pool = WorkerPool(4)
        assert pool.map_ordered(len, [[1], [1, 2]]) == [1, 2]
        assert not pool.parallel
        assert list(pool.imap_ordered(len, [[1], [1, 2], []])) == [1, 2, 0]
        pool.close()

    def test_imap_finishes_serially_when_pool_breaks_midstream(self):
        """Workers dying mid-iteration must not surface BrokenProcessPool:
        the remaining payloads finish in-process, in order — and a single
        break respawns the pool on its next use instead of disabling it."""
        from concurrent.futures.process import BrokenProcessPool

        class _DyingExecutor:
            def map(self, fn, payloads):
                yield fn(payloads[0])
                raise BrokenProcessPool("worker died")

            def shutdown(self, **kwargs):
                pass

        pool = WorkerPool(2)
        pool._executor = _DyingExecutor()
        assert list(pool.imap_ordered(len, [[1], [1, 2], [1, 2, 3]])) == [1, 2, 3]
        stats = pool.stats()
        assert stats.breaks == 1 and stats.serial_tasks == 2
        assert pool.parallel  # One break does not cost parallelism forever.
        assert pool.map_ordered(len, [[1], [1, 2]]) == [1, 2]  # Respawned.
        assert pool.stats().respawns == 1
        pool.close()

    def test_circuit_opens_after_consecutive_breaks(self):
        """Repeated breaks with no healthy call in between must open the
        circuit: the pool goes permanently serial after max_respawns."""
        from concurrent.futures.process import BrokenProcessPool

        class _AlwaysDying:
            def map(self, fn, payloads):
                raise BrokenProcessPool("worker died")
                yield  # pragma: no cover - makes this a generator

            def shutdown(self, **kwargs):
                pass

        pool = WorkerPool(2, max_respawns=1)
        for _ in range(3):
            if pool._ensure() is not None:
                pool._executor = _AlwaysDying()
            assert pool.map_ordered(len, [[1], [1, 2]]) == [1, 2]
        stats = pool.stats()
        assert stats.circuit_open and not pool.parallel
        assert stats.breaks == 2  # Break, respawn, break again, open.
        pool.close()

    def test_task_errors_propagate_without_disabling_pool(self):
        """An exception raised *by the task* is not a pool failure: it must
        propagate unchanged (no serial re-execution) and leave the pool
        healthy for subsequent calls."""
        pool = WorkerPool(2)
        with pytest.raises(RuntimeError, match="task failed"):
            pool.map_ordered(_raise_for_marker, [0, 1])
        assert pool.parallel
        assert pool.map_ordered(_raise_for_marker, [0, 2]) == [0, 2]
        pool.close()


# ---------------------------------------------------------------------------
# Sharded batch crypto
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def serial_provider() -> CryptoProvider:
    return CryptoProvider(MASTER_KEY, paillier_bits=256)


@pytest.fixture(scope="module", params=[2, 4])
def pooled_provider(request) -> CryptoProvider:
    provider = CryptoProvider(MASTER_KEY, paillier_bits=256, workers=request.param)
    provider.parallel_min_batch = 16  # Force pool traffic on small batches.
    yield provider
    provider.close()


MIXED_VALUES = (
    [None, 0, 1, -1, 7_777_777, "a", "brown fox", "x" * 40]
    + [datetime.date(1997, 3, 14), datetime.date(2031, 12, 1), True, False]
    + [i * 37 % 1009 for i in range(220)]
    + [f"value-{i % 53}" for i in range(180)]
)


class TestShardedCrypto:
    def test_det_batch_matches_serial(self, serial_provider, pooled_provider):
        expected = serial_provider.det_encrypt_batch(MIXED_VALUES)
        assert pooled_provider.det_encrypt_batch(MIXED_VALUES) == expected

    def test_det_decrypt_batch_matches_serial(self, serial_provider, pooled_provider):
        ints = [None] + [i * 11 - 4000 for i in range(400)]
        cts = serial_provider.det_encrypt_batch(ints)
        assert pooled_provider.det_decrypt_batch(cts, "int") == ints
        texts = [None] + [f"t-{i % 91}" for i in range(300)]
        cts = serial_provider.det_encrypt_batch(texts)
        assert pooled_provider.det_decrypt_batch(cts, "text") == texts

    def test_ope_batches_match_serial(self, serial_provider, pooled_provider):
        values = [None] + [i * 53 % 4999 for i in range(450)]
        expected = serial_provider.ope_encrypt_batch(values)
        assert pooled_provider.ope_encrypt_batch(values) == expected
        assert pooled_provider.ope_decrypt_batch(expected, "int") == values

    def test_rnd_round_trips_through_pool(self, pooled_provider):
        cts = pooled_provider.rnd_encrypt_batch(MIXED_VALUES)
        assert pooled_provider.rnd_decrypt_batch(cts) == MIXED_VALUES

    def test_search_batch_matches_serial(self, serial_provider, pooled_provider):
        values = [None] + [f"quick brown no {i % 13}" for i in range(200)]
        expected = serial_provider.search_encrypt_batch(values)
        got = pooled_provider.search_encrypt_batch(values)
        assert got == expected  # SWP tags are PRF outputs: deterministic.
        trapdoor = serial_provider.search_trapdoor("%brown%")
        assert all(trapdoor in tags for tags in got[1:])

    def test_paillier_batches_shard(self, serial_provider, pooled_provider):
        messages = [i * 997 for i in range(60)]
        cts = pooled_provider.paillier_encrypt_batch(messages)
        assert pooled_provider.paillier_decrypt_batch(cts) == messages
        assert serial_provider.paillier_decrypt_batch(cts) == messages

    def test_worker_errors_propagate(self, pooled_provider):
        with pytest.raises(DomainError):
            pooled_provider.det_decrypt_batch(list(range(100)), "float")

    def test_provider_pickles_without_pool(self, pooled_provider):
        import pickle

        pooled_provider.det_encrypt_batch(list(range(64)))
        clone = pickle.loads(pickle.dumps(pooled_provider))
        assert clone.det_encrypt(12345) == pooled_provider.det_encrypt(12345)
        clone.close()


# ---------------------------------------------------------------------------
# End-to-end worker equivalence (plaintexts, ledgers, plan choices)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def parallel_sales_db():
    return build_sales_db(num_orders=600)


@pytest.fixture(scope="module")
def worker_clients(parallel_sales_db) -> dict[int, MonomiClient]:
    """One client per worker count, sharing the serial client's design so
    loads are comparable; each has its own provider (its own pool)."""
    clients: dict[int, MonomiClient] = {}
    design = None
    for workers in WORKER_COUNTS:
        provider = CryptoProvider(MASTER_KEY, paillier_bits=256, workers=workers)
        provider.parallel_min_batch = 32
        clients[workers] = MonomiClient.setup(
            parallel_sales_db,
            PARALLEL_WORKLOAD,
            master_key=MASTER_KEY,
            paillier_bits=256,
            space_budget=2.5,
            provider=provider,
            design=design,
        )
        design = clients[workers].design
    yield clients
    for client in clients.values():
        client.provider.close()


class TestWorkerEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS[1:])
    @pytest.mark.parametrize("sql", PARALLEL_WORKLOAD)
    def test_rows_and_ledger_bytes_match_serial(self, worker_clients, workers, sql):
        serial = worker_clients[1].execute(sql)
        pooled = worker_clients[workers].execute(sql)
        assert canonical(pooled.rows) == canonical(serial.rows)
        assert ledger_bytes(pooled.ledger) == ledger_bytes(serial.ledger)

    @pytest.mark.parametrize("workers", WORKER_COUNTS[1:])
    def test_load_sizes_match_serial(self, worker_clients, workers):
        serial, pooled = worker_clients[1], worker_clients[workers]
        for name in serial.backend.table_names():
            assert pooled.backend.table_bytes(name) == serial.backend.table_bytes(
                name
            )
        assert pooled.server_bytes() == serial.server_bytes()

    @pytest.mark.parametrize("workers", WORKER_COUNTS[1:])
    @pytest.mark.parametrize("sql", PARALLEL_WORKLOAD)
    def test_plan_choices_match_serial(self, worker_clients, workers, sql):
        """Worker pools must not perturb the decryption-profile-driven
        plan choice: same design, same candidate ranking, same plan."""
        query = normalize_query(parse(sql))
        serial_plan = worker_clients[1].planner.plan(query).plan.explain()
        pooled_plan = worker_clients[workers].planner.plan(query).plan.explain()
        assert pooled_plan == serial_plan


# ---------------------------------------------------------------------------
# Partition-parallel scans
# ---------------------------------------------------------------------------


def _scan_backend(kind: str):
    backend = make_backend(kind)
    backend.create_table(
        schema("big", ("a", "int"), ("b", "int"), ("c", "int"))
    )
    backend.insert_rows("big", [(i, i * 7 % 1013, i % 97) for i in range(5000)])
    return backend


@pytest.mark.parametrize("kind", ["memory", "sqlite"])
@pytest.mark.parametrize("partitions", [2, 4])
class TestPartitionedScans:
    def test_uri_hostile_backend_name_stays_in_memory(self, kind, partitions):
        """A '#' or '?' in the backend name must not truncate the SQLite
        shared-cache URI into an on-disk file (in-memory names are
        percent-encoded); the in-memory backend ignores names entirely."""
        import pathlib

        from repro.server import make_backend

        backend = make_backend(kind, name="weird name#1?x")
        backend.create_table(schema("t", ("a", "int")))
        backend.insert_rows("t", [(i,) for i in range(100)])
        query = normalize_query(parse("SELECT a FROM t"))
        rows = backend.execute_stream(query, partitions=partitions).drain_rows()
        assert rows == [(i,) for i in range(100)]
        assert not list(pathlib.Path(".").glob("monomi-weird*"))
        if hasattr(backend, "close"):
            backend.close()

    def test_rows_order_and_stats_match_serial(self, kind, partitions):
        backend = _scan_backend(kind)
        query = normalize_query(parse("SELECT a, b FROM big WHERE c < 80"))
        serial = backend.execute_stream(query, block_rows=256)
        serial_rows = serial.drain_rows()
        stream = backend.execute_stream(
            query, block_rows=256, partitions=partitions
        )
        assert stream.drain_rows() == serial_rows  # Order preserved exactly.
        assert stream.stats.bytes_scanned == serial.stats.bytes_scanned
        assert stream.stats.rows_output == serial.stats.rows_output

    def test_order_by_output_order_is_preserved(self, kind, partitions):
        """A blocking ORDER BY under a partition request must keep the
        exact serial output order (the native backends run it on their
        serial streaming path; partitioning never reorders results)."""
        backend = _scan_backend(kind)
        query = normalize_query(
            parse("SELECT a, b FROM big WHERE c < 30 ORDER BY b DESC, a LIMIT 40")
        )
        expected = backend.execute_stream(query).drain_rows()
        for _ in range(3):
            got = backend.execute_stream(query, partitions=partitions).drain_rows()
            assert got == expected

    def test_early_close_terminates_workers(self, kind, partitions):
        backend = _scan_backend(kind)
        query = normalize_query(parse("SELECT a FROM big"))
        stream = backend.execute_stream(query, block_rows=64, partitions=partitions)
        blocks = iter(stream)
        assert len(next(blocks)) == 64
        stream.close()  # Must not deadlock or leak worker threads.

    def test_where_subquery_matches_serial(self, kind, partitions):
        """A streamable scan whose WHERE carries a subquery must not be
        sliced on the in-memory backend — a partition worker's database
        holds only its slice of the scan table, so the inner query would
        see a sliver of its input.  Both backends must match serial."""
        backend = _scan_backend(kind)
        query = normalize_query(
            parse(
                "SELECT a FROM big WHERE c < 40 AND "
                "a IN (SELECT b FROM big WHERE c = 3)"
            )
        )
        expected = backend.execute_stream(query).drain_rows()
        got = backend.execute_stream(query, partitions=partitions).drain_rows()
        assert got == expected


# ---------------------------------------------------------------------------
# ConfigError contract
# ---------------------------------------------------------------------------


class _MaterializingBackend(ServerBackend):
    """A third-party-style backend with no native streaming override."""

    kind = "thirdparty"

    def __init__(self, inner):
        self.inner = inner
        self.last_stats = None

    @property
    def ciphertext_store(self):
        return self.inner.ciphertext_store

    def create_table(self, table_schema):
        self.inner.create_table(table_schema)

    def insert_rows(self, table_name, rows):
        self.inner.insert_rows(table_name, rows)

    def table_names(self):
        return self.inner.table_names()

    def table_bytes(self, table_name):
        return self.inner.table_bytes(table_name)

    def execute(self, query, params=None) -> ResultSet:
        result = self.inner.execute(query, params=params)
        self.last_stats = self.inner.last_stats
        return result


class TestConfigErrors:
    def test_streaming_off_with_partitions_raises(self, sales_client):
        with pytest.raises(ConfigError, match="streaming"):
            PlanExecutor(
                sales_client.backend,
                sales_client.provider,
                streaming=False,
                partitions=2,
            )

    def test_env_partitions_do_not_poison_materializing_mode(
        self, sales_client, monkeypatch
    ):
        """MONOMI_PARTITIONS is a streaming-path preference: a deliberately
        materializing executor ignores it instead of erroring — only an
        *explicit* partitions argument makes the combination a conflict."""
        monkeypatch.setenv("MONOMI_PARTITIONS", "4")
        executor = PlanExecutor(
            sales_client.backend, sales_client.provider, streaming=False
        )
        assert executor.partitions == 1

    def test_non_native_backend_blocking_root_raises(self):
        backend = _MaterializingBackend(_scan_backend("memory"))
        blocking = normalize_query(
            parse("SELECT c, COUNT(*) FROM big GROUP BY c")
        )
        with pytest.raises(ConfigError, match="native streaming"):
            backend.execute_stream(blocking, partitions=2)

    def test_blocking_query_on_non_native_backend_raises_through_pexec(
        self, sales_client
    ):
        """The base execute_stream's ConfigError must surface through the
        plan executor when partitions are requested for a blocking server
        query on a backend without native streaming."""
        from repro.core.plan import DecryptSpec, RemoteRelation, SplitPlan

        backend = _MaterializingBackend(_scan_backend("memory"))
        executor = PlanExecutor(backend, sales_client.provider, partitions=2)
        blocking = normalize_query(
            parse("SELECT c, COUNT(*) AS n FROM big GROUP BY c")
        )
        plan = SplitPlan(
            relations=(
                RemoteRelation(
                    alias="r",
                    query=blocking,
                    specs=[
                        DecryptSpec("plain", "c", "int"),
                        DecryptSpec("plain", "n", "int"),
                    ],
                ),
            ),
            residual=None,
        )
        with pytest.raises(ConfigError, match="native streaming"):
            executor.execute_iter(plan).drain()

    def test_non_native_backend_streamable_scan_runs_serial(self):
        backend = _MaterializingBackend(_scan_backend("memory"))
        query = normalize_query(parse("SELECT a FROM big WHERE c < 5"))
        rows = backend.execute_stream(query, partitions=2).drain_rows()
        assert rows == backend.execute(query).rows

    def test_bad_workers_env_fails_provider_construction(self, monkeypatch):
        monkeypatch.setenv("MONOMI_WORKERS", "turbo")
        with pytest.raises(ConfigError):
            CryptoProvider(MASTER_KEY, paillier_bits=256)

    def test_pre_partition_signature_backend_runs_unpartitioned(
        self, sales_client
    ):
        """A backend overriding execute_stream with the pre-partition
        signature must run serially, not receive an unknown kwarg."""

        class _LegacyBackend(_MaterializingBackend):
            kind = "legacy"

            def execute_stream(self, query, params=None, block_rows=4096):
                return super().execute_stream(
                    query, params=params, block_rows=block_rows
                )

        backend = _LegacyBackend(_scan_backend("memory"))
        executor = PlanExecutor(
            backend, sales_client.provider, partitions=3
        )
        query = normalize_query(parse("SELECT a FROM big WHERE c < 5"))
        planned_rows = backend.execute(query).rows
        from repro.core.plan import DecryptSpec, RemoteRelation, SplitPlan

        plan = SplitPlan(
            relations=(
                RemoteRelation(
                    alias="r",
                    query=query,
                    specs=[DecryptSpec("plain", "a", "int")],
                ),
            ),
            residual=None,
        )
        stream = executor.execute_iter(plan)
        assert stream.drain().rows == planned_rows


# ---------------------------------------------------------------------------
# Prefetch pipeline
# ---------------------------------------------------------------------------


class TestPrefetch:
    @pytest.mark.parametrize("sql", PARALLEL_WORKLOAD)
    def test_prefetch_matches_unprefetched(self, worker_clients, sql):
        client = worker_clients[1]
        query = normalize_query(parse(sql))
        planned = client.planner.plan(query)
        outcomes = {}
        for depth in (0, 3):
            executor = PlanExecutor(
                client.backend,
                client.provider,
                client.network,
                client.disk,
                streaming=True,
                prefetch_blocks=depth,
            )
            stream = executor.execute_iter(planned.plan, block_rows=128)
            outcomes[depth] = (stream.drain().rows, ledger_bytes(stream.ledger))
        assert outcomes[0][0] == outcomes[3][0]
        assert outcomes[0][1] == outcomes[3][1]

    def test_early_close_joins_producer(self, worker_clients):
        client = worker_clients[1]
        query = normalize_query(
            parse("SELECT o_orderkey, o_price FROM orders WHERE o_price > 0")
        )
        planned = client.planner.plan(query)
        executor = PlanExecutor(
            client.backend,
            client.provider,
            client.network,
            client.disk,
            streaming=True,
            prefetch_blocks=2,
        )
        stream = executor.execute_iter(planned.plan, block_rows=32)
        blocks = iter(stream)
        assert next(blocks) is not None
        stream.close()  # Must not deadlock.
