"""Encrypted DML (PR 10): INSERT/UPDATE/DELETE through the batch pipeline.

Differential oracle: every statement runs on a fresh encrypted client and
on a plaintext mirror (`testkit.apply_plain_dml`); the analytic workload
must agree afterwards — on the in-memory backend, SQLite, a 2-way sharded
deployment, over TCP, and under injected write faults.  The homomorphic
files are additionally pinned byte-equivalent (at the plaintext level) to
a from-scratch re-encryption, which is what makes in-place maintenance
trustworthy.

These tests build their own clients: the session-scoped conftest fixtures
are shared and must not be mutated.
"""

from __future__ import annotations

import datetime
import random
import threading
import time

import pytest

from repro.common.errors import (
    ConfigError,
    InjectedFaultError,
    UnsupportedQueryError,
)
from repro.common.ledger import CostLedger
from repro.common.retry import RetryPolicy
from repro.core import (
    HomGroup,
    MaintainedAggregates,
    MonomiClient,
    normalize_query,
)
from repro.core.loader import insert_rows_idempotent
from repro.core.schemes import Scheme
from repro.engine import Database, Executor, schema
from repro.server.backend import DelegatingView
from repro.server.chaos import CHAOS_ENV, FaultInjectingBackend
from repro.server.inmemory import InMemoryBackend
from repro.server.sharded import ShardedBackend
from repro.sql import ast, parse, parse_statement, to_sql
from repro.testkit import (
    MASTER_KEY,
    SALES_WORKLOAD,
    apply_plain_dml,
    build_sales_db,
    canonical,
)

#: Small enough that a full client build stays ~1 s, large enough that the
#: orders hom files span multiple packed ciphertexts.
NUM_ORDERS = 40

#: The shared mixed-DML script: multi-row and column-list INSERTs, an
#: UPDATE that moves hom-packed columns, predicate DELETEs (including a
#: SEARCH-style LIKE), and writes to the non-hom customer table.
DML_SCRIPT: list[tuple[str, dict | None]] = [
    (
        "INSERT INTO orders VALUES "
        "(1001, 3, 4200, 7, 2, DATE '1996-03-14', 'OPEN', 'fresh brown order'), "
        "(1002, 11, 150, 2, 0, DATE '1996-04-01', 'SHIPPED', 'quiet gray mouse naps')",
        None,
    ),
    (
        "INSERT INTO orders (o_orderkey, o_custkey, o_price, o_qty, "
        "o_discount, o_date, o_status, o_comment) VALUES "
        "(:k, :c, :p, :q, :d, :dt, :s, :cm)",
        {
            "k": 1003,
            "c": 3,
            "p": 900,
            "q": 1,
            "d": 5,
            "dt": datetime.date(1996, 5, 2),
            "s": "OPEN",
            "cm": "brown paper planes",
        },
    ),
    (
        "UPDATE orders SET o_price = o_price + 37, o_status = 'SHIPPED' "
        "WHERE o_custkey = 3",
        None,
    ),
    ("DELETE FROM orders WHERE o_price < 300", None),
    (
        "UPDATE customer SET c_balance = c_balance + 1000 "
        "WHERE c_nation = 'FRANCE'",
        None,
    ),
    ("DELETE FROM orders WHERE o_comment LIKE '%furiously%'", None),
    (
        "INSERT INTO customer VALUES (31, 'Customer#0031', 'BUILDING', 500, 'PERU')",
        None,
    ),
    ("UPDATE orders SET o_qty = o_qty + 3 WHERE o_status = 'RETURNED'", None),
]


@pytest.fixture(scope="module")
def dml_design(provider):
    """One physical design shared by every fresh client in this module.

    The designer's hom-group choice depends on its launch-time decryption
    profile (a timing measurement), so the orders hom groups are pinned
    here instead: a single-column columnar file plus a two-column packed
    file, which between them exercise every in-place maintenance path
    (partial-last-ciphertext inserts, multi-slot deltas, zeroed deletes).
    """
    donor = MonomiClient.setup(
        build_sales_db(NUM_ORDERS),
        SALES_WORKLOAD,
        master_key=MASTER_KEY,
        paillier_bits=384,
        space_budget=2.5,
        provider=provider,
    )
    design = donor.design.copy()
    design.hom_groups = [g for g in design.hom_groups if g.table != "orders"]
    design.entries = {
        e
        for e in design.entries
        if not (e.table == "orders" and e.scheme is Scheme.HOM)
    }
    design.add_hom_group(HomGroup("orders", ("o_price",), rows_per_ciphertext=6))
    design.add_hom_group(
        HomGroup("orders", ("o_price * o_qty", "o_qty"), rows_per_ciphertext=4)
    )
    return design


def make_client(provider, design, backend="memory", shards=None):
    return MonomiClient.setup(
        build_sales_db(NUM_ORDERS),
        SALES_WORKLOAD,
        master_key=MASTER_KEY,
        paillier_bits=384,
        space_budget=2.5,
        provider=provider,
        design=design,
        backend=backend,
        shards=shards,
    )


def run_script(client, oracle: Database) -> None:
    """Apply DML_SCRIPT to both sides, asserting per-statement row counts."""
    for sql, params in DML_SCRIPT:
        outcome = client.execute(sql, params)
        expected = apply_plain_dml(oracle, sql, params)
        assert outcome.rows == [(expected,)], sql
        assert outcome.planned is None  # DML has no split plan


def assert_workload_matches(client, oracle: Database) -> None:
    plain = Executor(oracle)
    for sql in SALES_WORKLOAD:
        expected = plain.execute(normalize_query(parse(sql)))
        assert canonical(client.execute(sql).rows) == canonical(
            expected.rows
        ), sql
    count = client.execute("SELECT COUNT(*) FROM orders").rows
    assert count == [(len(oracle.table("orders").rows),)]


# ---------------------------------------------------------------------------
# Frontend: parse / print / normalize / reject
# ---------------------------------------------------------------------------


class TestDmlFrontend:
    ROUND_TRIPS = [
        "INSERT INTO t VALUES (1, 'a'), (2, 'b')",
        "INSERT INTO t (a, b) VALUES (1, DATE '1996-01-01')",
        "UPDATE t SET a = a + 1, b = 'x' WHERE a > 3 AND b LIKE '%q%'",
        "DELETE FROM t WHERE a BETWEEN 1 AND 9",
        "DELETE FROM t",
    ]

    @pytest.mark.parametrize("sql", ROUND_TRIPS)
    def test_print_parse_round_trip(self, sql):
        statement = parse_statement(sql)
        assert ast.is_dml(statement)
        assert parse_statement(to_sql(statement)) == statement

    def test_select_is_not_dml(self):
        assert not ast.is_dml(parse_statement("SELECT 1"))

    def test_normalize_binds_parameters(self):
        from repro.core import normalize_dml

        statement = normalize_dml(
            parse_statement("DELETE FROM t WHERE a = :x"), {"x": 7}
        )
        assert statement.where.right == ast.Literal(7)

    def test_normalize_rejects_multi_pattern_like(self):
        from repro.core import normalize_dml

        with pytest.raises(UnsupportedQueryError):
            normalize_dml(
                parse_statement("DELETE FROM t WHERE a LIKE '%x%y%'")
            )


# ---------------------------------------------------------------------------
# Differential oracle across backends
# ---------------------------------------------------------------------------


class TestDmlOracle:
    @pytest.mark.parametrize(
        "backend,shards",
        [("memory", None), ("sqlite", None), ("memory", 2), ("sqlite", 2)],
        ids=["memory", "sqlite", "memory-sharded2", "sqlite-sharded2"],
    )
    def test_script_matches_plaintext_oracle(
        self, provider, dml_design, backend, shards
    ):
        client = make_client(provider, dml_design, backend=backend, shards=shards)
        oracle = build_sales_db(NUM_ORDERS)
        run_script(client, oracle)
        assert_workload_matches(client, oracle)
        # The client's plaintext mirror stayed in lockstep (it feeds the
        # planner's statistics after _refresh_planner()).
        assert canonical(client.plain_db.table("orders").rows) == canonical(
            oracle.table("orders").rows
        )

    def test_insert_then_query_is_fresh_mid_script(self, provider, dml_design):
        client = make_client(provider, dml_design)
        oracle = build_sales_db(NUM_ORDERS)
        freshness_query = (
            "SELECT o_custkey, SUM(o_price * o_qty) AS rev FROM orders "
            "WHERE o_price > 500 GROUP BY o_custkey ORDER BY rev DESC"
        )
        for sql, params in DML_SCRIPT:
            client.execute(sql, params)
            apply_plain_dml(oracle, sql, params)
            expected = Executor(oracle).execute(
                normalize_query(parse(freshness_query))
            )
            assert canonical(client.execute(freshness_query).rows) == canonical(
                expected.rows
            ), sql

    def test_dml_ledger_charges_transfer(self, provider, dml_design):
        client = make_client(provider, dml_design)
        outcome = client.execute(
            "INSERT INTO orders VALUES "
            "(2001, 1, 777, 3, 0, DATE '1997-01-01', 'OPEN', 'ledger probe')"
        )
        assert outcome.ledger.transfer_bytes > 0
        deleted = client.execute("DELETE FROM orders WHERE o_orderkey = 2001")
        assert deleted.rows == [(1,)]
        # UPDATE/DELETE scan the table server-side to fetch stored rows.
        assert deleted.ledger.server_bytes_scanned > 0

    def test_validation_rejects_before_mutating(self, provider, dml_design):
        client = make_client(provider, dml_design)
        before = client.execute("SELECT COUNT(*) FROM orders").rows
        with pytest.raises(ConfigError):
            client.execute("INSERT INTO orders (nope) VALUES (1)")
        with pytest.raises(ConfigError):
            client.execute("INSERT INTO orders VALUES (1, 2)")  # arity
        with pytest.raises(ConfigError):
            client.execute("DELETE FROM missing_table")
        assert client.execute("SELECT COUNT(*) FROM orders").rows == before

    def test_execute_iter_rejects_dml(self, provider, dml_design):
        client = make_client(provider, dml_design)
        with pytest.raises(UnsupportedQueryError):
            client.execute_iter("DELETE FROM orders")


# ---------------------------------------------------------------------------
# Homomorphic maintenance: in-place patches == re-encryption
# ---------------------------------------------------------------------------


class TestHomMaintenance:
    def test_in_place_equals_reencryption(self, provider, dml_design):
        """After the full script, every maintained Paillier file decrypts
        to exactly what a from-scratch pack of the surviving rows (at
        their row_ids, zeros in dead slots) would encrypt."""
        client = make_client(provider, dml_design)
        oracle = build_sales_db(NUM_ORDERS)
        run_script(client, oracle)
        dml = client.dml
        plain, entries, exprs, hom_groups, enc_schema, scope = dml._layout(
            "orders"
        )
        assert hom_groups, "sales design must pack hom groups for orders"
        stored, plain_rows = dml._fetch_decrypted(
            "orders", plain, entries, exprs, enc_schema, CostLedger()
        )
        for group in hom_groups:
            file = client.backend.ciphertext_store.get(group.file_name)
            layout = file.layout
            expected = [
                [0] * len(group.expr_sqls) for _ in range(file.num_rows)
            ]
            for full_row, values in zip(
                stored, dml._group_values(group, plain_rows, scope)
            ):
                expected[full_row[-1]] = values  # row_id is the last column
            rpc = layout.rows_per_ciphertext
            decrypted = provider.paillier_decrypt_batch(file.ciphertexts)
            for ct_index, value in enumerate(decrypted):
                chunk = expected[
                    ct_index * rpc : min((ct_index + 1) * rpc, file.num_rows)
                ]
                assert value == layout.encode_rows(chunk), (
                    group.file_name,
                    ct_index,
                )

    def test_insert_grows_hom_row_space(self, provider, dml_design):
        client = make_client(provider, dml_design)
        group = client.dml._layout("orders")[3][0]
        before = client.backend.hom_file_info(group.file_name)
        client.execute("DELETE FROM orders WHERE o_orderkey <= 5")
        after_delete = client.backend.hom_file_info(group.file_name)
        # DELETE zeroes slots; the row space never shrinks or compacts.
        assert after_delete["num_rows"] == before["num_rows"]
        client.execute(
            "INSERT INTO orders VALUES "
            "(3001, 2, 50, 1, 0, DATE '1997-06-01', 'OPEN', 'grow probe')"
        )
        grown = client.backend.hom_file_info(group.file_name)
        assert grown["num_rows"] == before["num_rows"] + 1

    def test_hom_apply_token_is_idempotent(self, provider):
        from repro.crypto.packing import PackedLayout
        from repro.storage.ciphertext_store import CiphertextFile

        public = provider.paillier_public
        layout = PackedLayout(
            column_bits=(16,), pad_bits=8, plaintext_bits=public.plaintext_bits
        )
        file = CiphertextFile(
            name="tok_probe",
            public_key=public,
            layout=layout,
            column_names=("v",),
            num_rows=1,
        )
        file.ciphertexts.extend(provider.paillier_encrypt_batch([5]))
        backend = InMemoryBackend(Database("tok"))
        backend.add_ciphertext_file(file)
        factor = provider.paillier_encrypt_batch([3])[0]
        for _ in range(3):  # a lost ack replays the same token
            backend.hom_apply("tok_probe", updates=[(0, factor)], token="t-1")
        applied = provider.paillier_decrypt_batch(
            backend.hom_read("tok_probe", [0])
        )
        assert applied == [8]


# ---------------------------------------------------------------------------
# Maintained aggregates (MRV split counters)
# ---------------------------------------------------------------------------


class TestMaintainedAggregates:
    def _revenue(self, db: Database) -> int:
        return sum(r[2] * r[3] for r in db.table("orders").rows)

    def test_tracks_dml_and_balances(self, provider, dml_design):
        client = make_client(provider, dml_design)
        oracle = build_sales_db(NUM_ORDERS)
        aggs = MaintainedAggregates(client, splits=4, seed=7)
        aggs.register("revenue", "orders", "o_price * o_qty")
        aggs.register("neg_qty", "orders", "0 - o_qty")  # negative residues
        assert aggs.value("revenue") == self._revenue(oracle)
        run_script(client, oracle)
        expected = self._revenue(oracle)
        assert aggs.value("revenue") == expected
        assert sum(aggs.split_values("revenue")) == expected
        assert aggs.value("neg_qty") == -sum(
            r[3] for r in oracle.table("orders").rows
        )
        aggs.balance_now()
        assert aggs.value("revenue") == expected  # zero-sum by construction
        values = aggs.split_values("revenue")
        assert max(values) - min(values) <= 1

    def test_background_balancer_levels_splits(self, provider, dml_design):
        client = make_client(provider, dml_design)
        oracle = build_sales_db(NUM_ORDERS)
        with MaintainedAggregates(client, splits=3, seed=13) as aggs:
            aggs.register("rev", "orders", "o_price")
            aggs.start_balancer(interval=0.05)
            for sql, params in DML_SCRIPT[:4]:
                client.execute(sql, params)
                apply_plain_dml(oracle, sql, params)
            expected = sum(r[2] for r in oracle.table("orders").rows)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                values = aggs.split_values("rev")
                if sum(values) == expected and max(values) - min(values) <= 1:
                    break
                time.sleep(0.05)
            assert sum(values) == expected
            assert max(values) - min(values) <= 1

    def test_register_validates(self, provider, dml_design):
        client = make_client(provider, dml_design)
        aggs = MaintainedAggregates(client, splits=2)
        aggs.register("q", "orders", "o_qty")
        with pytest.raises(ConfigError):
            aggs.register("q", "orders", "o_qty")  # duplicate name
        with pytest.raises(ConfigError):
            aggs.register("x", "missing", "o_qty")  # unknown table
        with pytest.raises(ConfigError):
            aggs.value("unregistered")


# ---------------------------------------------------------------------------
# Chaos on the write path
# ---------------------------------------------------------------------------


class TestChaosOnWrite:
    @pytest.mark.parametrize(
        "backend,shards,seed",
        [
            ("memory", None, 3),
            ("memory", None, 11),
            ("memory", None, 42),
            ("sqlite", None, 11),
            ("memory", 2, 11),
        ],
        ids=["mem-s3", "mem-s11", "mem-s42", "sqlite-s11", "sharded2-s11"],
    )
    def test_faulted_writes_converge_to_fault_free_state(
        self, monkeypatch, provider, dml_design, backend, shards, seed
    ):
        monkeypatch.setenv(CHAOS_ENV, f"{seed}:0.15")
        client = make_client(provider, dml_design, backend=backend, shards=shards)
        assert isinstance(client.backend, FaultInjectingBackend)
        oracle = build_sales_db(NUM_ORDERS)
        run_script(client, oracle)
        stats = client.backend.stats()
        assert stats["draws"] > 0
        assert_workload_matches(client, oracle)

    def test_chaos_actually_fires_across_seeds(
        self, monkeypatch, provider, dml_design
    ):
        """At least one of the CI seeds must inject faults on the write
        path, otherwise the convergence tests above prove nothing."""
        fired = 0
        for seed in (3, 11, 42):
            monkeypatch.setenv(CHAOS_ENV, f"{seed}:0.15")
            client = make_client(provider, dml_design)
            oracle = build_sales_db(NUM_ORDERS)
            run_script(client, oracle)
            fired += client.backend.stats()["injected_errors"]
        assert fired > 0

    def test_maintained_aggregate_survives_chaos(
        self, monkeypatch, provider, dml_design
    ):
        monkeypatch.setenv(CHAOS_ENV, "11:0.15")
        client = make_client(provider, dml_design)
        oracle = build_sales_db(NUM_ORDERS)
        aggs = MaintainedAggregates(client, splits=4, seed=5)
        aggs.register("rev", "orders", "o_price * o_qty")
        run_script(client, oracle)
        aggs.balance_now()
        assert aggs.value("rev") == sum(
            r[2] * r[3] for r in oracle.table("orders").rows
        )


# ---------------------------------------------------------------------------
# Idempotent insert + sharded ordinal regression (the PR's bugfixes)
# ---------------------------------------------------------------------------


def _plain_backend() -> InMemoryBackend:
    backend = InMemoryBackend(Database("w"))
    backend.create_table(schema("t", ("v", "int")))
    return backend


_FAST = RetryPolicy(max_attempts=4, base_delay=0.0005, max_delay=0.002)


class _PassthroughView(DelegatingView):
    """DelegatingView leaves query execution abstract; delegate it too."""

    def execute(self, query, params=None):
        return self._parent.execute(query, params=params)

    def execute_stream(self, query, params=None, block_rows=None):
        return self._parent.execute_stream(
            query, params=params, block_rows=block_rows
        )


class _LostAck(_PassthroughView):
    """Applies the insert, then reports failure ``lost_acks`` times."""

    def __init__(self, parent, lost_acks: int) -> None:
        super().__init__(parent)
        self.lost_acks = lost_acks

    def insert_rows(self, table_name, rows):
        self._parent.insert_rows(table_name, rows)
        if self.lost_acks:
            self.lost_acks -= 1
            raise InjectedFaultError("injected: apply committed, ack lost")


class _PartialApply(_PassthroughView):
    """Commits only the first ``keep`` rows of the next insert, then fails."""

    def __init__(self, parent, keep: int) -> None:
        super().__init__(parent)
        self.keep: int | None = keep

    def insert_rows(self, table_name, rows):
        rows = list(rows)
        if self.keep is not None:
            keep, self.keep = self.keep, None
            self._parent.insert_rows(table_name, rows[:keep])
            raise InjectedFaultError("injected: partial apply")
        self._parent.insert_rows(table_name, rows)


class _PartialApplyNoResume(_PartialApply):
    supports_prefix_resume = False


class TestIdempotentInsert:
    BATCH = [(i,) for i in range(6)]

    def test_lost_ack_does_not_duplicate(self):
        backend = _plain_backend()
        insert_rows_idempotent(
            _LostAck(backend, lost_acks=2), "t", self.BATCH, _FAST, random.Random(1)
        )
        assert backend.database.table("t").rows == self.BATCH

    def test_partial_apply_resumes_from_watermark(self):
        backend = _plain_backend()
        insert_rows_idempotent(
            _PartialApply(backend, keep=2), "t", self.BATCH, _FAST, random.Random(1)
        )
        assert backend.database.table("t").rows == self.BATCH

    def test_partial_apply_without_prefix_commits_is_fatal(self):
        backend = _plain_backend()
        with pytest.raises(ConfigError):
            insert_rows_idempotent(
                _PartialApplyNoResume(backend, keep=2),
                "t",
                self.BATCH,
                _FAST,
                random.Random(1),
            )

    def test_on_retry_counts_attempts(self):
        backend = _plain_backend()
        retries = []
        insert_rows_idempotent(
            _LostAck(backend, lost_acks=1),
            "t",
            self.BATCH,
            _FAST,
            random.Random(1),
            on_retry=lambda attempt, exc: retries.append(attempt),
        )
        assert retries  # the lost ack surfaced as a retry


class _FlakyShard(_PassthroughView):
    def __init__(self, parent) -> None:
        super().__init__(parent)
        self.fail_next = 0

    def insert_rows(self, table_name, rows):
        if self.fail_next:
            self.fail_next -= 1
            raise InjectedFaultError("injected: shard outage")
        self._parent.insert_rows(table_name, rows)


class TestShardedOrdinals:
    def test_partial_batch_failure_never_reuses_ordinals(self):
        """Regression: a batch that commits on shard 0 but dies on shard 1
        must advance the ordinal watermark past the committed rows, so the
        caller's re-send cannot mint duplicate ``__shard_ord`` values."""
        from repro.server.sharded import ORDINAL_COLUMN

        shard0 = InMemoryBackend(Database("s0"))
        flaky = _FlakyShard(InMemoryBackend(Database("s1")))
        sharded = ShardedBackend(
            [shard0, flaky],
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay=0.0005, max_delay=0.002
            ),
        )
        sharded.create_table(schema("t", ("v", "int")))
        flaky.fail_next = 2  # exhaust the retry budget for shard 1's bucket
        with pytest.raises(InjectedFaultError):
            sharded.insert_rows("t", [(i,) for i in range(4)])
        # The caller treats the failed batch as lost and re-sends it.
        sharded.insert_rows("t", [(i,) for i in range(4)])
        stored = (
            shard0.database.table("t").rows
            + flaky._parent.database.table("t").rows
        )
        ordinals = [row[-1] for row in stored]
        assert len(ordinals) == len(set(ordinals)), ordinals
        schema_cols = [c.name for c in shard0.database.table("t").schema.columns]
        assert schema_cols[-1] == ORDINAL_COLUMN
        # Shard 0 kept its first bucket (the surviving half-batch), plus
        # its share of the re-send; shard 1 only has re-sent rows.
        assert sharded.row_count("t") == len(ordinals) == 6


# ---------------------------------------------------------------------------
# Service and network paths
# ---------------------------------------------------------------------------


class TestServiceDml:
    def test_dml_refreshes_plans_and_results(self, provider, dml_design):
        client = make_client(provider, dml_design)
        oracle = build_sales_db(NUM_ORDERS)
        query = SALES_WORKLOAD[0]
        with client.service(workers=2) as service:
            service.execute(query)
            service.execute(query)
            assert service.stats().plan_cache.hits >= 1
            outcome = service.execute("DELETE FROM orders WHERE o_price > 2000")
            expected = apply_plain_dml(
                oracle, "DELETE FROM orders WHERE o_price > 2000"
            )
            assert outcome.rows == [(expected,)]
            fresh = service.execute(query)  # cached plan, fresh rows
            plain = Executor(oracle).execute(normalize_query(parse(query)))
            assert canonical(fresh.rows) == canonical(plain.rows)

    def test_concurrent_readers_during_writes(self, provider, dml_design):
        client = make_client(provider, dml_design)
        oracle = build_sales_db(NUM_ORDERS)
        query = SALES_WORKLOAD[4]
        errors: list[BaseException] = []

        with client.service(workers=3) as service:

            def reader() -> None:
                try:
                    for _ in range(8):
                        service.execute(query)
                except BaseException as exc:  # noqa: BLE001 - collected
                    errors.append(exc)

            threads = [threading.Thread(target=reader) for _ in range(2)]
            for t in threads:
                t.start()
            for sql, params in DML_SCRIPT[:4]:
                service.execute(sql, params)
                apply_plain_dml(oracle, sql, params)
            for t in threads:
                t.join()
            assert not errors
            plain = Executor(oracle).execute(normalize_query(parse(query)))
            assert canonical(service.execute(query).rows) == canonical(
                plain.rows
            )


class TestRemoteDml:
    def test_dml_over_the_wire_matches_oracle(self, provider, dml_design):
        from repro.net import MonomiServer

        host = make_client(provider, dml_design)
        oracle = build_sales_db(NUM_ORDERS)
        with MonomiServer(host.backend) as server:
            remote = MonomiClient.connect(
                server.address,
                build_sales_db(NUM_ORDERS),
                design=dml_design,
                provider=provider,
            )
            try:
                run_script(remote, oracle)
                assert_workload_matches(remote, oracle)
                # Registration needs bulk-load state; the wire protocol
                # only exposes the maintenance surface (hom_apply/read).
                with pytest.raises(ConfigError):
                    MaintainedAggregates(remote, splits=2).register(
                        "rev", "orders", "o_price"
                    )
            finally:
                remote.close()

    def test_remote_chaos_write_convergence(
        self, monkeypatch, provider, dml_design
    ):
        from repro.net import MonomiServer

        host = make_client(provider, dml_design)
        oracle = build_sales_db(NUM_ORDERS)
        with MonomiServer(host.backend) as server:
            monkeypatch.setenv(CHAOS_ENV, "11:0.12")
            remote = MonomiClient.connect(
                server.address,
                build_sales_db(NUM_ORDERS),
                design=dml_design,
                provider=provider,
            )
            try:
                assert isinstance(remote.backend, FaultInjectingBackend)
                run_script(remote, oracle)
                assert_workload_matches(remote, oracle)
            finally:
                remote.close()
