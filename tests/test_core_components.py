"""Core component tests: design, provider, rewriter, sizer, ILP, schemes."""

from __future__ import annotations

import datetime

import pytest

from repro.common.errors import DomainError
from repro.core import (
    CryptoProvider,
    EncEntry,
    HomGroup,
    PhysicalDesign,
    Scheme,
    normalize_expr,
    weakest,
)
from repro.core.design import enc_column_name
from repro.core.encset import EncSetExtractor, Pair
from repro.core.ilp import IlpCandidate, IlpProblem, solve, solve_exhaustive
from repro.core.normalize import has_multi_pattern_like, normalize_query
from repro.core.rewrite import BindingContext, ServerRewriter
from repro.core.typing import infer_type
from repro.engine import schema
from repro.sql import ast, parse, parse_expression, to_sql


class TestSchemes:
    def test_weakest_ordering(self):
        assert weakest({Scheme.RND, Scheme.DET}) is Scheme.DET
        assert weakest({Scheme.DET, Scheme.OPE}) is Scheme.OPE
        assert weakest({Scheme.HOM}) is Scheme.HOM
        assert weakest(set()) is None


class TestDesign:
    def test_normalize_is_canonical(self):
        assert normalize_expr("a*b") == normalize_expr("a * b")
        assert normalize_expr("SUM(x)") == normalize_expr("sum( x )")

    def test_column_naming(self):
        assert enc_column_name("l_quantity", Scheme.DET) == "l_quantity_det"
        precomp = enc_column_name("a * b", Scheme.OPE)
        assert precomp.startswith("pc_") and precomp.endswith("_ope")

    def test_entry_precomputed_flag(self):
        assert not EncEntry("t", "a", Scheme.DET).is_precomputed
        assert EncEntry("t", "a + b", Scheme.DET).is_precomputed

    def test_hom_group_lookup(self):
        design = PhysicalDesign()
        design.add_hom_group(HomGroup("t", ("a", "a * b"), 4))
        assert design.hom_group_for("t", "a * b") is not None
        assert design.hom_group_for("t", "c") is None
        assert design.has("t", "a", Scheme.HOM)

    def test_without_entry_drops_group(self):
        design = PhysicalDesign()
        design.add_hom_group(HomGroup("t", ("a",), 1))
        entry = next(iter(design.entries))
        pruned = design.without_entry(entry)
        assert not pruned.hom_groups and not pruned.entries

    def test_union(self):
        a = PhysicalDesign()
        a.add("t", "x", Scheme.DET)
        b = PhysicalDesign()
        b.add("t", "x", Scheme.OPE)
        merged = a.union(b)
        assert merged.schemes_for("t", "x") == {Scheme.DET, Scheme.OPE}


class TestCryptoProvider:
    @pytest.fixture(scope="class")
    def provider(self):
        return CryptoProvider(b"prov-key-0123456789abcdef", paillier_bits=256)

    def test_det_roundtrip_types(self, provider):
        for value, sql_type in [
            (42, "int"),
            (-7, "int"),
            ("BUILDING", "text"),
            ("R", "text"),
            ("a much longer text value exceeding twelve", "text"),
            (datetime.date(1995, 5, 5), "date"),
            (True, "bool"),
        ]:
            ct = provider.det_encrypt(value)
            assert provider.det_decrypt(ct, sql_type) == value

    def test_short_text_det_is_compact_int(self, provider):
        ct = provider.det_encrypt("R")
        assert isinstance(ct, int) and ct < 256 * 257

    def test_det_equality_across_lengths_distinct(self, provider):
        assert provider.det_encrypt("a") != provider.det_encrypt("ab")

    def test_det_rejects_float(self, provider):
        with pytest.raises(DomainError):
            provider.det_encrypt(1.5)

    def test_ope_order_types(self, provider):
        assert provider.ope_encrypt(5) < provider.ope_encrypt(6)
        assert provider.ope_encrypt(datetime.date(1995, 1, 1)) < provider.ope_encrypt(
            datetime.date(1996, 1, 1)
        )
        assert provider.ope_encrypt("APPLE") < provider.ope_encrypt("BANANA")

    def test_ope_roundtrip(self, provider):
        assert provider.ope_decrypt(provider.ope_encrypt(123), "int") == 123
        day = datetime.date(1997, 7, 7)
        assert provider.ope_decrypt(provider.ope_encrypt(day), "date") == day

    def test_rnd_roundtrip(self, provider):
        for value in (42, "text", datetime.date(2000, 1, 1), None):
            assert provider.rnd_decrypt(provider.rnd_encrypt(value)) == value

    def test_null_passthrough(self, provider):
        assert provider.det_encrypt(None) is None
        assert provider.ope_encrypt(None) is None

    def test_search(self, provider):
        tags = provider.search_encrypt("forest green paint")
        assert provider.search_trapdoor("%green%") in tags
        assert provider.search_trapdoor("forest%") in tags


SCHEMAS = {
    "t": schema("t", ("a", "int"), ("b", "int"), ("s", "text"), ("d", "date")),
    "u": schema("u", ("k", "int"), ("t_ref", "int")),
}


def make_rewriter(design: PhysicalDesign) -> ServerRewriter:
    provider = CryptoProvider(b"rw-key-0123456789abcdef", paillier_bits=256)
    bindings = BindingContext(
        {"t": "t", "u": "u"}, SCHEMAS, registry=SCHEMAS
    )
    return ServerRewriter(design, provider, bindings)


class TestRewriter:
    def test_equality_via_det(self):
        design = PhysicalDesign()
        design.add("t", "a", Scheme.DET)
        rewriter = make_rewriter(design)
        out = rewriter.rewrite_predicate(parse_expression("a = 5"))
        assert out is not None
        assert "a_det" in to_sql(out)
        # The literal must be encrypted, not plaintext 5.
        assert out.right != ast.Literal(5)

    def test_equality_fails_without_det(self):
        rewriter = make_rewriter(PhysicalDesign())
        assert rewriter.rewrite_predicate(parse_expression("a = 5")) is None

    def test_range_via_ope(self):
        design = PhysicalDesign()
        design.add("t", "d", Scheme.OPE)
        rewriter = make_rewriter(design)
        out = rewriter.rewrite_predicate(
            parse_expression("d >= DATE '1995-01-01'")
        )
        assert out is not None and "d_ope" in to_sql(out)

    def test_precomputed_expression(self):
        design = PhysicalDesign()
        design.add("t", "a * b", Scheme.DET)
        rewriter = make_rewriter(design)
        out = rewriter.rewrite_value(parse_expression("a * b"), "det")
        assert out is not None and to_sql(out).startswith("pc_")

    def test_cross_table_precomputation_rejected(self):
        design = PhysicalDesign()
        design.add("t", "a * k", Scheme.DET)  # Bogus entry spanning tables.
        rewriter = make_rewriter(design)
        assert rewriter.rewrite_value(parse_expression("a * k"), "det") is None

    def test_count_is_plainval(self):
        rewriter = make_rewriter(PhysicalDesign())
        out = rewriter.rewrite_predicate(parse_expression("COUNT(*) > 3"))
        assert out is not None and "count(*)" in to_sql(out)

    def test_min_via_ope(self):
        design = PhysicalDesign()
        design.add("t", "b", Scheme.OPE)
        rewriter = make_rewriter(design)
        out = rewriter.rewrite_value(parse_expression("MIN(b)"), "ope")
        assert out is not None and "min(b_ope)" in to_sql(out)

    def test_like_needs_search(self):
        rewriter = make_rewriter(PhysicalDesign())
        assert rewriter.rewrite_predicate(parse_expression("s LIKE '%x%'")) is None
        design = PhysicalDesign()
        design.add("t", "s", Scheme.SEARCH)
        rewriter = make_rewriter(design)
        out = rewriter.rewrite_predicate(parse_expression("s LIKE '%x%'"))
        assert out is not None and "s_search" in to_sql(out)

    def test_multi_pattern_like_never_rewrites(self):
        design = PhysicalDesign()
        design.add("t", "s", Scheme.SEARCH)
        rewriter = make_rewriter(design)
        assert (
            rewriter.rewrite_predicate(parse_expression("s LIKE '%a%b%'")) is None
        )

    def test_exists_subquery_rewrites(self):
        design = PhysicalDesign()
        design.add("t", "a", Scheme.DET)
        design.add("u", "k", Scheme.DET)
        rewriter = make_rewriter(design)
        query = parse("SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE k = a)")
        out = rewriter.rewrite_predicate(query.where)
        assert out is not None and "k_det" in to_sql(out)


class TestNormalize:
    def test_avg_expansion(self):
        q = normalize_query(parse("SELECT AVG(a) FROM t"))
        text = to_sql(q)
        assert "sum(a)" in text and "count(a)" in text

    def test_param_binding(self):
        q = normalize_query(parse("SELECT a FROM t WHERE a > :1"), {"1": 7})
        assert "7" in to_sql(q)

    def test_date_folding(self):
        q = normalize_query(
            parse("SELECT a FROM t WHERE d < DATE '1998-12-01' - INTERVAL '90' DAY")
        )
        assert "1998-09-02" in to_sql(q)

    def test_multi_pattern_detection(self):
        assert has_multi_pattern_like(parse("SELECT a FROM t WHERE s LIKE '%a%b%'"))
        assert not has_multi_pattern_like(parse("SELECT a FROM t WHERE s LIKE '%a%'"))


class TestTyping:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("a", "int"),
            ("s", "text"),
            ("d", "date"),
            ("a * b", "int"),
            ("a / b", "float"),
            ("EXTRACT(YEAR FROM d)", "int"),
            ("SUBSTRING(s FROM 1 FOR 2)", "text"),
            ("d + INTERVAL '1' MONTH", "date"),
            ("CASE WHEN a = 1 THEN b ELSE 0 END", "int"),
            ("COUNT(*)", "int"),
            ("SUM(a * b)", "int"),
        ],
    )
    def test_infer(self, expr, expected):
        assert infer_type(parse_expression(expr), SCHEMAS) == expected


class TestEncSetExtraction:
    def test_where_units(self):
        extractor = EncSetExtractor(SCHEMAS)
        units = extractor.extract(
            parse("SELECT a FROM t WHERE a = 1 AND b > 2 AND s LIKE '%x%'")
        )
        labels = {u.label.split("[")[0] for u in units}
        assert "where" in labels
        pair_schemes = {p.scheme for u in units for p in u.pairs}
        assert {Scheme.DET, Scheme.OPE, Scheme.SEARCH} <= pair_schemes

    def test_sum_generates_hom_variants(self):
        extractor = EncSetExtractor(SCHEMAS)
        units = extractor.extract(parse("SELECT SUM(a * b) FROM t"))
        labels = {u.label for u in units}
        assert any(l.startswith("hom:") for l in labels)
        assert any(l.startswith("homcol:") for l in labels)
        assert any(l.startswith("precomp:") for l in labels)

    def test_precomputation_flag_off(self):
        from repro.core import TechniqueFlags

        extractor = EncSetExtractor(
            SCHEMAS, TechniqueFlags(True, False, True, True, True)
        )
        units = extractor.extract(parse("SELECT SUM(a * b) FROM t"))
        assert not any(u.label.startswith("precomp:") for u in units)

    def test_group_by_unit(self):
        extractor = EncSetExtractor(SCHEMAS)
        units = extractor.extract(parse("SELECT s, COUNT(*) FROM t GROUP BY s"))
        group_units = [u for u in units if u.label == "group_by"]
        assert len(group_units) == 1
        assert Pair("t", "s", Scheme.DET) in group_units[0].pairs

    def test_prefilter_unit(self):
        extractor = EncSetExtractor(SCHEMAS)
        units = extractor.extract(
            parse("SELECT s FROM t GROUP BY s HAVING SUM(b) > 100")
        )
        assert any(u.label.startswith("prefilter") for u in units)

    def test_order_limit_unit(self):
        extractor = EncSetExtractor(SCHEMAS)
        units = extractor.extract(parse("SELECT a FROM t ORDER BY d LIMIT 5"))
        assert any(u.label == "order_by" for u in units)


class TestIlp:
    def _problem(self):
        # Two queries; query 0 can buy a fast plan with item "x" (10 bytes)
        # or a slow free plan; query 1 similarly with item "y" (100 bytes).
        candidates = [
            IlpCandidate(0, 1.0, frozenset({"x"})),
            IlpCandidate(0, 10.0, frozenset()),
            IlpCandidate(1, 2.0, frozenset({"y"})),
            IlpCandidate(1, 5.0, frozenset()),
        ]
        sizes = {"x": 10.0, "y": 100.0}
        return candidates, sizes

    def test_unconstrained_takes_everything(self):
        candidates, sizes = self._problem()
        solution = solve(IlpProblem(candidates, sizes, 1000.0))
        assert solution.objective == pytest.approx(3.0)
        assert solution.items == {"x", "y"}

    def test_budget_forces_tradeoff(self):
        candidates, sizes = self._problem()
        solution = solve(IlpProblem(candidates, sizes, 50.0))
        assert solution.items == {"x"}
        assert solution.objective == pytest.approx(6.0)

    def test_zero_budget(self):
        candidates, sizes = self._problem()
        solution = solve(IlpProblem(candidates, sizes, 0.0))
        assert solution.objective == pytest.approx(15.0)

    def test_scipy_matches_exhaustive(self):
        candidates, sizes = self._problem()
        for budget in (0.0, 50.0, 120.0):
            a = solve(IlpProblem(candidates, sizes, budget), use_scipy=True)
            b = solve_exhaustive(IlpProblem(candidates, sizes, budget))
            assert a.objective == pytest.approx(b.objective)

    def test_shared_item_counted_once(self):
        candidates = [
            IlpCandidate(0, 1.0, frozenset({"shared"})),
            IlpCandidate(0, 50.0, frozenset()),
            IlpCandidate(1, 1.0, frozenset({"shared"})),
            IlpCandidate(1, 50.0, frozenset()),
        ]
        solution = solve(IlpProblem(candidates, {"shared": 80.0}, 100.0))
        assert solution.objective == pytest.approx(2.0)
        assert solution.used_bytes == pytest.approx(80.0)
