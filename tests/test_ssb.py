"""SSB workload: plaintext execution and encrypted equivalence.

SUM(lo_revenue - lo_supplycost) in flight 4 can be negative per row, so the
designer must decline homomorphic packing for it and fall back to shipping
components — a behaviour TPC-H never exercises.
"""

from __future__ import annotations

import pytest

from repro.testkit import MASTER_KEY, canonical
from repro.core import MonomiClient, normalize_query
from repro.engine import Executor
from repro.sql import parse
from repro.ssb import generate, ssb_queries

SCALE = 0.0002


@pytest.fixture(scope="module")
def ssb_db():
    return generate(scale=SCALE, seed=13)


@pytest.fixture(scope="module")
def ssb_client(ssb_db):
    queries = ssb_queries()
    workload = [queries[n].sql for n in ("1.1", "2.1", "3.1", "4.1")]
    return MonomiClient.setup(
        ssb_db, workload, master_key=MASTER_KEY, paillier_bits=384, space_budget=2.0
    )


class TestSsbGenerator:
    def test_star_schema_cardinalities(self, ssb_db):
        assert ssb_db.table("ddate").num_rows == 2406  # Every day 1992..1998-08-02.
        assert ssb_db.table("lineorder").num_rows >= 200

    def test_datekeys_resolve(self, ssb_db):
        datekeys = {r[0] for r in ssb_db.table("ddate").rows}
        for row in ssb_db.table("lineorder").rows[:100]:
            assert row[5] in datekeys

    def test_revenue_invariant(self, ssb_db):
        schema = ssb_db.table("lineorder").schema
        price = schema.column_index("lo_extendedprice")
        disc = schema.column_index("lo_discount")
        rev = schema.column_index("lo_revenue")
        for row in ssb_db.table("lineorder").rows[:100]:
            assert row[rev] == row[price] * (100 - row[disc]) // 100


class TestSsbQueries:
    def test_all_13_parse_and_run_plaintext(self, ssb_db):
        executor = Executor(ssb_db)
        for name, query in ssb_queries().items():
            result = executor.execute(normalize_query(parse(query.sql)))
            assert result.columns, name

    @pytest.mark.parametrize("number", ["1.1", "2.1", "3.1", "4.1"])
    def test_encrypted_equals_plaintext(self, ssb_db, ssb_client, number):
        query = normalize_query(parse(ssb_queries()[number].sql))
        outcome = ssb_client.execute(query)
        expected = Executor(ssb_db).execute(query)
        assert canonical(outcome.rows) == canonical(expected.rows)

    def test_profit_not_homomorphic(self, ssb_client):
        """lo_revenue - lo_supplycost can be negative: no HOM group for it."""
        for group in ssb_client.design.hom_groups:
            assert "lo_revenue - lo_supplycost" not in group.expr_sqls
