"""Concurrency soak: many client processes, no leaked resources.

N separate OS processes (``soak_client.py``), each running M concurrent
service sessions of mixed ad-hoc and prepared queries against one
:class:`~repro.net.MonomiServer` — the closest this suite gets to a
production deployment.  Every result in every process must match the
fault-free reference, and when the clients exit the server must be
clean: no connection threads alive, no open connections in ``stats()``,
no file descriptors beyond the listener.
"""

from __future__ import annotations

import os
import pathlib
import pickle
import subprocess
import sys
import threading

import pytest

from repro.net import MonomiServer
from repro.testkit import SALES_WORKLOAD, canonical, extra_threads

PROCESSES = 3
SESSIONS = 2
REPEATS = 2

SOAK_SCRIPT = pathlib.Path(__file__).with_name("soak_client.py")
SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"

PREPARED_TEMPLATE = (
    "SELECT o_custkey, SUM(o_price) AS rev FROM orders "
    "WHERE o_price > :p GROUP BY o_custkey"
)
PREPARED_VALUES = (400, 1500, 3000)


def _open_fds() -> int:
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:  # pragma: no cover - non-procfs platforms
        return -1


@pytest.mark.slow
def test_multiprocess_soak_leaves_server_clean(sales_client, tmp_path):
    state = {
        "plain_db": sales_client.plain_db,
        "design": sales_client.design,
        "provider": sales_client.provider,
        "flags": sales_client.flags,
        "network": sales_client.network,
        "disk": sales_client.disk,
        "streaming": sales_client.streaming,
        "expected_adhoc": {
            sql: canonical(sales_client.execute(sql).rows)
            for sql in SALES_WORKLOAD
        },
        "expected_prepared": {
            value: canonical(
                sales_client.execute(PREPARED_TEMPLATE, {"p": value}).rows
            )
            for value in PREPARED_VALUES
        },
    }
    state_path = tmp_path / "soak_state.pickle"
    state_path.write_bytes(pickle.dumps(state))

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )

    thread_baseline = set(threading.enumerate())
    fd_baseline = _open_fds()
    with MonomiServer(sales_client.backend) as server:
        # Baseline after start: the accept loop is expected to live for
        # the server's lifetime; connection threads are not.
        serving_baseline = set(threading.enumerate())
        workers = [
            subprocess.Popen(
                [
                    sys.executable,
                    str(SOAK_SCRIPT),
                    str(state_path),
                    server.address,
                    str(SESSIONS),
                    str(REPEATS),
                ],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for _ in range(PROCESSES)
        ]
        for worker in workers:
            stdout, stderr = worker.communicate(timeout=600)
            assert worker.returncode == 0, f"soak client failed:\n{stderr}"

        # Every process drove SESSIONS service sessions plus the pool's
        # dialing; all of them must have checked back in and hung up.
        stats = server.stats()
        assert stats["connections_total"] >= PROCESSES * SESSIONS
        assert stats["queries"] >= PROCESSES * len(SALES_WORKLOAD)
        assert stats["errors_sent"] == 0
        # Every per-connection thread must exit once its client hangs up.
        lingering = extra_threads(serving_baseline, timeout=10.0)
        assert not lingering, lingering
        assert server.stats()["connections_open"] == 0

    leaked_threads = extra_threads(thread_baseline, timeout=10.0)
    assert not leaked_threads, leaked_threads
    if fd_baseline >= 0:
        # The listener and every connection socket are closed; transient
        # slack (one fd) tolerated for procfs races.
        assert _open_fds() <= fd_baseline + 1
