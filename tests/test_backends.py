"""Cross-backend equivalence: split plans on real SQLite vs the in-memory engine.

The ``ServerBackend`` seam promises that every split plan — including
multi-round-trip DET IN-set plans — produces identical plaintext results
and identical ledger byte counts whether the untrusted server is the
in-process engine or a real SQLite database with the ``hom_agg`` /
``grp`` / ``searchswp`` UDFs.  This module tests that promise at three
levels: the value codec, splitter-generated plans executed directly
through :class:`PlanExecutor`, and the full TPC-H / SSB suites.
"""

from __future__ import annotations

import pytest

from repro.testkit import MASTER_KEY, build_sales_db, canonical
from repro.core import (
    CryptoProvider,
    EncryptedLoader,
    HomGroup,
    MonomiClient,
    PlanExecutor,
    Scheme,
    TechniqueFlags,
    generate_query_plan,
    normalize_query,
)
from repro.core.candidates import base_design_for_plain
from repro.engine import Executor
from repro.server import InMemoryBackend, SQLiteBackend, make_backend
from repro.server.sqlite import (
    BIG_MARK,
    decode_sqlite_value,
    encode_sqlite_value,
)
from repro.sql import parse
from repro.ssb import generate as ssb_generate, ssb_queries
from repro.storage.ciphertext_store import CiphertextStore
from repro.tpch import generate as tpch_generate, tpch_queries

TPCH_SCALE = 0.0003
TPCH_NUMBERS = (1, 3, 4, 6, 11, 12, 18, 19)
SSB_SCALE = 0.0002
SSB_NUMBERS = ("1.1", "2.1", "3.1", "4.1")


# ---------------------------------------------------------------------------
# Value codec
# ---------------------------------------------------------------------------


class TestSqliteCodec:
    def test_native_values_pass_through(self):
        store = CiphertextStore()
        for value in (None, 42, -7, 3.5, "text", b"\x01\x02", 0, (1 << 62)):
            assert decode_sqlite_value(encode_sqlite_value(value), store) == value

    def test_wide_integers_round_trip(self):
        store = CiphertextStore()
        for value in (1 << 63, (1 << 88) - 1, (1 << 104) + 12345):
            encoded = encode_sqlite_value(value)
            assert isinstance(encoded, bytes) and encoded.startswith(BIG_MARK)
            assert decode_sqlite_value(encoded, store) == value

    def test_wide_integer_blobs_preserve_order(self):
        """SQLite compares BLOBs bytewise and sorts INTEGER before BLOB, so
        the marker encoding must be order-preserving across the 2**63
        boundary — that is what keeps OPE comparisons correct."""
        values = [0, 5, (1 << 62), (1 << 63) - 1, 1 << 63, (1 << 63) + 1, 1 << 87]
        encoded = [encode_sqlite_value(v) for v in values]

        def sqlite_order(x, y):
            # INTEGER < BLOB; INTEGER vs INTEGER numeric; BLOB vs BLOB memcmp.
            x_blob, y_blob = isinstance(x, bytes), isinstance(y, bytes)
            if x_blob != y_blob:
                return -1 if y_blob else 1
            return -1 if x < y else (1 if x > y else 0)

        for i in range(len(values) - 1):
            assert sqlite_order(encoded[i], encoded[i + 1]) == -1

    def test_tag_sets_round_trip(self):
        store = CiphertextStore()
        tags = frozenset({b"\x01" * 8, b"\x02" * 8, b"\xff" * 8})
        assert decode_sqlite_value(encode_sqlite_value(tags), store) == tags


# ---------------------------------------------------------------------------
# Splitter plans through PlanExecutor on both backends
# ---------------------------------------------------------------------------

PLAN_QUERIES = [
    # Integer division must use true division on every backend (SQLite's
    # native / truncates; the dialect casts the dividend to REAL).
    "SELECT o_custkey, SUM(o_price) / COUNT(*) FROM orders "
    "GROUP BY o_custkey ORDER BY o_custkey",
    # Fully pushed GROUP BY with homomorphic SUM.
    "SELECT o_custkey, SUM(o_price) FROM orders GROUP BY o_custkey",
    # grp() fallback + local re-aggregation.
    "SELECT o_status, SUM(o_qty), MIN(o_price) FROM orders GROUP BY o_status",
    # SEARCH predicate through the searchswp UDF.
    "SELECT COUNT(*) FROM orders WHERE o_comment LIKE '%brown%'",
    # OPE range + DET join.
    "SELECT c_segment, COUNT(*) FROM orders, customer "
    "WHERE o_custkey = c_custkey AND o_price > 2500 GROUP BY c_segment",
    # Multi-round-trip: IN-subquery materialized as a DET-encrypted server set.
    "SELECT o_orderkey FROM orders WHERE o_custkey IN "
    "(SELECT o_custkey FROM orders GROUP BY o_custkey HAVING SUM(o_qty) > 140)",
]


@pytest.fixture(scope="module")
def plan_env():
    db = build_sales_db(num_orders=120, seed=31)
    provider = CryptoProvider(MASTER_KEY, paillier_bits=384)
    design = base_design_for_plain(db)
    design.add("orders", "o_custkey", Scheme.DET)
    design.add("orders", "o_status", Scheme.DET)
    design.add("orders", "o_orderkey", Scheme.DET)
    design.add("orders", "o_price", Scheme.OPE)
    design.add("orders", "o_qty", Scheme.OPE)
    design.add("orders", "o_comment", Scheme.SEARCH)
    design.add("customer", "c_custkey", Scheme.DET)
    design.add("customer", "c_segment", Scheme.DET)
    design.add_hom_group(HomGroup("orders", ("o_price", "o_qty"), 4))
    loader = EncryptedLoader(db, provider)
    memory = loader.load_into(make_backend("memory"), design)
    sqlite = loader.load_into(make_backend("sqlite"), design)
    schemas = {name: t.schema for name, t in db.tables.items()}
    return db, provider, design, schemas, memory, sqlite


@pytest.mark.parametrize("sql", PLAN_QUERIES)
def test_split_plan_runs_identically_on_both_backends(plan_env, sql):
    db, provider, design, schemas, memory, sqlite = plan_env
    query = normalize_query(parse(sql))
    plan = generate_query_plan(
        query, design, schemas, provider, TechniqueFlags(), None, plain_db=db
    )
    mem_result, mem_ledger = PlanExecutor(memory, provider).execute(plan)
    lite_result, lite_ledger = PlanExecutor(sqlite, provider).execute(plan)
    expected = Executor(db).execute(query)
    assert canonical(mem_result.rows) == canonical(expected.rows)
    assert canonical(lite_result.rows) == canonical(expected.rows)
    assert mem_ledger.transfer_bytes == lite_ledger.transfer_bytes
    assert mem_ledger.server_bytes_scanned == lite_ledger.server_bytes_scanned
    assert mem_ledger.round_trips == lite_ledger.round_trips


def test_scan_accounting_is_static_for_unexecuted_subqueries():
    """A subquery the engine short-circuits (empty outer table) still counts
    toward the scan footprint — on both backends, identically."""
    from repro.engine import Database, schema

    rows_u = [(1,), (2,), (3,)]
    backends = []
    for kind in ("memory", "sqlite"):
        backend = make_backend(kind)
        backend.create_table(schema("t", ("a", "int")))
        backend.create_table(schema("u", ("b", "int")))
        backend.insert_rows("t", [])
        backend.insert_rows("u", rows_u)
        backends.append(backend)
    query = normalize_query(
        parse("SELECT a FROM t WHERE EXISTS (SELECT b FROM u WHERE b = a)")
    )
    scanned = []
    for backend in backends:
        result = backend.execute(query)
        assert result.rows == []
        scanned.append(backend.last_stats.bytes_scanned)
    assert scanned[0] == scanned[1] > 0


def test_backends_report_identical_footprint(plan_env):
    _, _, _, _, memory, sqlite = plan_env
    assert memory.table_names() == sqlite.table_names()
    for name in memory.table_names():
        assert memory.table_bytes(name) == sqlite.table_bytes(name)
    assert memory.total_bytes == sqlite.total_bytes


def test_sqlite_server_never_sees_plaintext(plan_env):
    """Dump every raw SQLite value: no plaintext string, date, or comment
    word from the sales data may appear at rest."""
    db, _, _, _, _, sqlite = plan_env
    forbidden = {"OPEN", "SHIPPED", "RETURNED", "BUILDING", "FRANCE"}
    import datetime

    for name in sqlite.table_names():
        cursor = sqlite.connection.execute(f'SELECT * FROM "{name}"')
        for row in cursor.fetchall():
            for value in row:
                assert value not in forbidden
                assert not isinstance(value, datetime.date)
                if isinstance(value, str):
                    assert "brown" not in value and "Customer" not in value


# ---------------------------------------------------------------------------
# Full TPC-H / SSB suites on both backends
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tpch_pair():
    db = tpch_generate(scale=TPCH_SCALE, seed=5)
    queries = tpch_queries(TPCH_SCALE)
    workload = [queries[n].sql for n in TPCH_NUMBERS]
    provider = CryptoProvider(MASTER_KEY, paillier_bits=384)
    memory = MonomiClient.setup(
        db, workload, master_key=MASTER_KEY, paillier_bits=384,
        space_budget=2.0, provider=provider,
    )
    sqlite = MonomiClient.setup(
        db, workload, master_key=MASTER_KEY, paillier_bits=384,
        space_budget=2.0, provider=provider, design=memory.design,
        backend="sqlite",
    )
    return db, queries, memory, sqlite


@pytest.mark.parametrize("number", TPCH_NUMBERS)
def test_tpch_backends_agree(tpch_pair, number):
    db, queries, memory, sqlite = tpch_pair
    query = normalize_query(parse(queries[number].sql))
    mem = memory.execute(query)
    lite = sqlite.execute(query)
    expected = Executor(db).execute(query)
    assert canonical(mem.rows) == canonical(expected.rows)
    assert canonical(lite.rows) == canonical(expected.rows)
    assert mem.ledger.transfer_bytes == lite.ledger.transfer_bytes
    assert mem.ledger.server_bytes_scanned == lite.ledger.server_bytes_scanned


@pytest.fixture(scope="module")
def ssb_pair():
    db = ssb_generate(scale=SSB_SCALE, seed=13)
    queries = ssb_queries()
    workload = [queries[n].sql for n in SSB_NUMBERS]
    provider = CryptoProvider(MASTER_KEY, paillier_bits=384)
    memory = MonomiClient.setup(
        db, workload, master_key=MASTER_KEY, paillier_bits=384,
        space_budget=2.0, provider=provider,
    )
    sqlite = MonomiClient.setup(
        db, workload, master_key=MASTER_KEY, paillier_bits=384,
        space_budget=2.0, provider=provider, design=memory.design,
        backend="sqlite",
    )
    return db, queries, memory, sqlite


@pytest.mark.parametrize("number", SSB_NUMBERS)
def test_ssb_backends_agree(ssb_pair, number):
    db, queries, memory, sqlite = ssb_pair
    query = normalize_query(parse(queries[number].sql))
    mem = memory.execute(query)
    lite = sqlite.execute(query)
    expected = Executor(db).execute(query)
    assert canonical(mem.rows) == canonical(expected.rows)
    assert canonical(lite.rows) == canonical(expected.rows)
    assert mem.ledger.transfer_bytes == lite.ledger.transfer_bytes
    assert mem.ledger.server_bytes_scanned == lite.ledger.server_bytes_scanned


# ---------------------------------------------------------------------------
# SQLite backend unit behavior
# ---------------------------------------------------------------------------


def test_sqlite_backend_rejects_duplicate_table():
    from repro.engine import schema

    backend = SQLiteBackend()
    backend.create_table(schema("t", ("a", "int")))
    with pytest.raises(Exception):
        backend.create_table(schema("t", ("a", "int")))


def test_sqlite_dialect_rejects_unbound_in_set():
    from repro.common.errors import ExecutionError

    backend = SQLiteBackend()
    from repro.engine import schema

    backend.create_table(schema("t", ("a", "int")))
    query = parse("SELECT a FROM t WHERE in_set(a, :sub0)")
    with pytest.raises(ExecutionError):
        backend.execute(query, params={})


def test_sqlite_sum_is_exact_over_wide_integers():
    """Native SQLite SUM coerces marker blobs to 0 and overflows past 2**63;
    the registered Python override must sum exactly, like the engine."""
    from repro.engine import schema

    values = [(1 << 63) + 5, (1 << 70) + 1, 7, None]
    expected = sum(v for v in values if v is not None)
    results = []
    for kind in ("memory", "sqlite"):
        backend = make_backend(kind)
        backend.create_table(schema("t", ("a", "int")))
        backend.insert_rows("t", [(v,) for v in values])
        result = backend.execute(normalize_query(parse("SELECT SUM(a) FROM t")))
        results.append(result.rows[0][0])
    assert results == [expected, expected]


def test_sqlite_order_limit_ties_follow_insertion_order():
    """A pushed ORDER BY + LIMIT with duplicate sort keys must serve the
    same tied subset as the engine's stable sort (insertion order)."""
    from repro.engine import schema

    rows = [(i, i % 3) for i in range(30)]  # Ten-way ties on the sort key.
    query = normalize_query(parse("SELECT i FROM t ORDER BY k LIMIT 7"))
    results = []
    for kind in ("memory", "sqlite"):
        backend = make_backend(kind)
        backend.create_table(schema("t", ("i", "int"), ("k", "int")))
        backend.insert_rows("t", rows)
        results.append(backend.execute(query).rows)
    assert results[0] == results[1]


def test_in_memory_backend_wraps_database():
    from repro.engine import Database, schema

    db = Database("d")
    backend = InMemoryBackend(db)
    backend.create_table(schema("t", ("a", "int")))
    backend.insert_rows("t", [(1,), (2,), (None,)])
    result = backend.execute(normalize_query(parse("SELECT COUNT(a) FROM t")))
    assert result.rows == [(2,)]
    assert backend.table_bytes("t") == db.table("t").total_bytes


# ---------------------------------------------------------------------------
# Shared-cache concurrency (PR 5 regression: busy_timeout on every connection)
# ---------------------------------------------------------------------------


class TestSqliteSharedCacheConcurrency:
    """Two sessions on one ``:memory:`` shared-cache database must not
    deadlock or fail with "database (table) is locked".

    Worker views open separate connections over the backend's shared-cache
    URI; without a busy timeout, transient lock states surface as
    immediate ``sqlite3.OperationalError`` instead of a short retry.  The
    backend sets ``PRAGMA busy_timeout`` on the main connection and every
    worker connection.
    """

    def _loaded_backend(self):
        from repro.engine import schema

        backend = SQLiteBackend(name="shared#cache test")
        backend.create_table(schema("t", ("i", "int"), ("k", "int")))
        backend.insert_rows("t", [(i, i % 7) for i in range(500)])
        return backend

    def test_busy_timeout_set_on_all_connections(self):
        backend = self._loaded_backend()
        for conn in (backend.connection, backend._worker_connection()):
            (timeout,) = conn.execute("PRAGMA busy_timeout").fetchone()
            assert timeout == SQLiteBackend._BUSY_TIMEOUT_MS

    def test_concurrent_shared_cache_readers_do_not_deadlock(self):
        import threading

        backend = self._loaded_backend()
        query = normalize_query(parse("SELECT i, k FROM t WHERE k = 3"))
        expected = backend.execute(query).rows
        errors: list[Exception] = []
        barrier = threading.Barrier(4)

        def reader():
            try:
                view = backend.worker_view()
                barrier.wait(timeout=30)
                for _ in range(20):
                    assert view.execute(query).rows == expected
                view.close()
            except Exception as exc:  # surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors

    def test_reader_concurrent_with_writer_commits(self):
        """Readers retry through a concurrent bulk insert on the main
        connection instead of raising "database is locked"."""
        import threading

        backend = self._loaded_backend()
        query = normalize_query(parse("SELECT COUNT(*) FROM t WHERE k >= 0"))
        stop = threading.Event()
        errors: list[Exception] = []

        def reader():
            try:
                view = backend.worker_view()
                while not stop.is_set():
                    (count,) = view.execute(query).rows[0]
                    assert count >= 500
                view.close()
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        try:
            for batch in range(10):
                backend.insert_rows(
                    "t", [(1000 + batch * 50 + i, i % 7) for i in range(50)]
                )
        finally:
            stop.set()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
