"""Engine tests: schema/catalog/table, evaluation, executor features."""

from __future__ import annotations

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CatalogError, ExecutionError
from repro.engine import Database, Executor, schema
from repro.engine.eval import Env, EvalContext, Scope, evaluate, like_matches
from repro.sql import ast, parse, parse_expression


@pytest.fixture()
def db():
    database = Database()
    t = database.create_table(
        schema("t", ("a", "int"), ("b", "int"), ("s", "text"), ("d", "date"))
    )
    t.insert_many(
        [
            (1, 10, "alpha", datetime.date(1995, 1, 1)),
            (2, 20, "beta", datetime.date(1995, 6, 1)),
            (3, None, "gamma", datetime.date(1996, 1, 1)),
            (4, 40, None, datetime.date(1996, 6, 1)),
        ]
    )
    u = database.create_table(schema("u", ("k", "int"), ("v", "text")))
    u.insert_many([(1, "one"), (2, "two"), (5, "five")])
    return database


def run(db, sql, params=None):
    return Executor(db).execute(parse(sql), params=params).rows


class TestSchemaAndCatalog:
    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            schema("x", ("a", "int"), ("a", "int"))

    def test_unknown_type_rejected(self):
        with pytest.raises(CatalogError):
            schema("x", ("a", "decimal"))

    def test_type_enforcement(self, db):
        with pytest.raises(CatalogError):
            db.table("t").insert(("not-int", 1, "x", datetime.date(2000, 1, 1)))

    def test_row_arity_enforcement(self, db):
        with pytest.raises(CatalogError):
            db.table("t").insert((1, 2))

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.create_table(schema("t", ("x", "int")))

    def test_analyze_stats(self, db):
        stats = db.table("t").analyze()
        assert stats["a"].num_distinct == 4
        assert stats["b"].num_nulls == 1
        assert stats["a"].min_value == 1 and stats["a"].max_value == 4


class TestNullSemantics:
    def test_null_comparison_filters_out(self, db):
        assert run(db, "SELECT a FROM t WHERE b > 15") == [(2,), (4,)]

    def test_is_null(self, db):
        assert run(db, "SELECT a FROM t WHERE b IS NULL") == [(3,)]
        assert len(run(db, "SELECT a FROM t WHERE b IS NOT NULL")) == 3

    def test_aggregates_skip_nulls(self, db):
        assert run(db, "SELECT COUNT(b), COUNT(*), SUM(b) FROM t") == [(3, 4, 70)]

    def test_three_valued_or(self, db):
        # b IS NULL for a=3: (b > 100 OR a = 3) must still keep the row.
        rows = run(db, "SELECT a FROM t WHERE b > 100 OR a = 3")
        assert rows == [(3,)]

    def test_in_list_with_null_needle(self, db):
        rows = run(db, "SELECT a FROM t WHERE b IN (10, 40)")
        assert rows == [(1,), (4,)]


class TestExecutorFeatures:
    def test_hash_join(self, db):
        rows = run(db, "SELECT a, v FROM t, u WHERE a = k ORDER BY a")
        assert rows == [(1, "one"), (2, "two")]

    def test_left_join_null_extension(self, db):
        rows = run(db, "SELECT k, s FROM u LEFT JOIN t ON k = a ORDER BY k")
        assert rows == [(1, "alpha"), (2, "beta"), (5, None)]

    def test_cross_product_when_no_predicate(self, db):
        assert len(run(db, "SELECT a, k FROM t, u")) == 12

    def test_group_by_expression(self, db):
        rows = run(
            db,
            "SELECT EXTRACT(YEAR FROM d) AS y, COUNT(*) FROM t "
            "GROUP BY EXTRACT(YEAR FROM d) ORDER BY y",
        )
        assert rows == [(1995, 2), (1996, 2)]

    def test_having_and_alias(self, db):
        rows = run(
            db,
            "SELECT EXTRACT(YEAR FROM d) AS y, SUM(a) AS asum FROM t "
            "GROUP BY EXTRACT(YEAR FROM d) HAVING asum > 3 ORDER BY y",
        )
        assert rows == [(1996, 7)]

    def test_order_by_desc_nulls_last(self, db):
        rows = run(db, "SELECT b FROM t ORDER BY b")
        assert rows == [(10,), (20,), (40,), (None,)]

    def test_limit_and_distinct(self, db):
        assert run(db, "SELECT a FROM t ORDER BY a LIMIT 2") == [(1,), (2,)]
        assert len(run(db, "SELECT DISTINCT EXTRACT(YEAR FROM d) FROM t")) == 2

    def test_correlated_scalar_subquery(self, db):
        rows = run(
            db,
            "SELECT a FROM t WHERE b = (SELECT MAX(b) FROM t t2 "
            "WHERE EXTRACT(YEAR FROM t2.d) = EXTRACT(YEAR FROM t.d)) ORDER BY a",
        )
        assert rows == [(2,), (4,)]

    def test_exists_semijoin(self, db):
        rows = run(db, "SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE k = a) ORDER BY a")
        assert rows == [(1,), (2,)]

    def test_not_exists(self, db):
        rows = run(db, "SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM u WHERE k = a) ORDER BY a")
        assert rows == [(3,), (4,)]

    def test_in_subquery(self, db):
        rows = run(db, "SELECT v FROM u WHERE k IN (SELECT a FROM t WHERE b >= 20) ORDER BY v")
        assert rows == [("two",)]

    def test_scalar_subquery_multi_row_error(self, db):
        with pytest.raises(ExecutionError):
            run(db, "SELECT a FROM t WHERE a = (SELECT k FROM u)")

    def test_from_subquery(self, db):
        rows = run(
            db,
            "SELECT y, total FROM (SELECT EXTRACT(YEAR FROM d) AS y, SUM(a) AS total "
            "FROM t GROUP BY EXTRACT(YEAR FROM d)) AS agg ORDER BY y",
        )
        assert rows == [(1995, 3), (1996, 7)]

    def test_case_when(self, db):
        rows = run(db, "SELECT SUM(CASE WHEN a > 2 THEN 1 ELSE 0 END) FROM t")
        assert rows == [(2,)]

    def test_params(self, db):
        rows = run(db, "SELECT a FROM t WHERE b > :1", params={"1": 15})
        assert rows == [(2,), (4,)]

    def test_or_factoring_correctness(self, db):
        rows = run(
            db,
            "SELECT a, k FROM t, u WHERE (a = k AND b < 15) OR (a = k AND b > 30) "
            "ORDER BY a",
        )
        assert rows == [(1, 1)]

    def test_aggregate_outside_group_rejected(self, db):
        with pytest.raises(ExecutionError):
            run(db, "SELECT a FROM t WHERE SUM(b) > 1")

    def test_count_distinct(self, db):
        rows = run(db, "SELECT COUNT(DISTINCT EXTRACT(YEAR FROM d)) FROM t")
        assert rows == [(2,)]

    def test_empty_aggregate_identity(self, db):
        rows = run(db, "SELECT COUNT(*), SUM(a) FROM t WHERE a > 100")
        assert rows == [(0, None)]


class TestLikeMatching:
    @pytest.mark.parametrize(
        "text,pattern,expected",
        [
            ("hello world", "%world", True),
            ("hello world", "hello%", True),
            ("hello world", "%lo wo%", True),
            ("hello world", "h_llo world", True),
            ("hello world", "%xyz%", False),
            ("special requests", "%special%requests%", True),
        ],
    )
    def test_patterns(self, text, pattern, expected):
        assert like_matches(text, pattern) is expected


class TestEvaluator:
    def test_date_interval_arithmetic(self):
        ctx = EvalContext()
        expr = parse_expression("DATE '1994-01-31' + INTERVAL '1' MONTH")
        assert evaluate(expr, None, ctx) == datetime.date(1994, 2, 28)
        expr = parse_expression("DATE '1994-03-31' - INTERVAL '1' MONTH")
        assert evaluate(expr, None, ctx) == datetime.date(1994, 2, 28)
        expr = parse_expression("DATE '1994-03-01' - DATE '1994-02-01'")
        assert evaluate(expr, None, ctx) == 28

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            evaluate(parse_expression("1 / 0"), None, ctx=EvalContext())

    def test_scope_ambiguity(self):
        scope = Scope([("a", "x"), ("b", "x")])
        env = Env(scope, (1, 2))
        with pytest.raises(ExecutionError):
            env.lookup(None, "x")
        assert env.lookup("a", "x") == 1

    @given(st.integers(-100, 100), st.integers(-100, 100))
    @settings(max_examples=30)
    def test_arithmetic_matches_python(self, a, b):
        ctx = EvalContext()
        expr = ast.BinOp("+", ast.Literal(a), ast.BinOp("*", ast.Literal(b), ast.Literal(3)))
        assert evaluate(expr, None, ctx) == a + b * 3
