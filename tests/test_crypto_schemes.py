"""Tests for the five encryption schemes: RND, DET, FFX, OPE, SEARCH."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CryptoError, DomainError
from repro.crypto.det import DetCipher
from repro.crypto.ffx import FFXInteger
from repro.crypto.ope import OpeCipher, _sample_hypergeometric
from repro.crypto.prf import KeyedPRF
from repro.crypto.rnd import RndCipher
from repro.crypto.search import SearchCipher, parse_like_pattern

KEY = b"0123456789abcdef"


class TestRnd:
    @given(st.binary(max_size=100))
    @settings(max_examples=40)
    def test_roundtrip(self, data):
        cipher = RndCipher(KEY)
        assert cipher.decrypt(cipher.encrypt(data)) == data

    def test_randomized(self):
        cipher = RndCipher(KEY)
        assert cipher.encrypt(b"same") != cipher.encrypt(b"same")

    def test_expansion_is_nonce_only(self):
        cipher = RndCipher(KEY)
        assert len(cipher.encrypt(b"x" * 40)) == 40 + 16

    def test_rejects_short_ciphertext(self):
        with pytest.raises(CryptoError):
            RndCipher(KEY).decrypt(b"short")


class TestDet:
    @given(st.binary(max_size=300))
    @settings(max_examples=60)
    def test_roundtrip(self, data):
        cipher = DetCipher(KEY)
        ct = cipher.encrypt(data)
        assert cipher.decrypt(ct) == data
        assert len(ct) == cipher.ciphertext_len(len(data))

    def test_deterministic(self):
        cipher = DetCipher(KEY)
        assert cipher.encrypt(b"v") == cipher.encrypt(b"v")

    def test_equality_preserving_distinctness(self):
        cipher = DetCipher(KEY)
        values = [b"a", b"b", b"ab", b"ba", b"x" * 20, b"y" * 20]
        cts = [cipher.encrypt(v) for v in values]
        assert len(set(cts)) == len(values)

    def test_long_values_near_length_preserving(self):
        cipher = DetCipher(KEY)
        assert len(cipher.encrypt(b"z" * 100)) == 101
        assert len(cipher.encrypt(b"z" * 300)) == 305

    def test_corrupt_ciphertext_detected(self):
        cipher = DetCipher(KEY)
        ct = bytearray(cipher.encrypt(b"payload-here-is-long"))
        ct[0] ^= 0xFF
        with pytest.raises(CryptoError):
            cipher.decrypt(bytes(ct))


class TestFfx:
    @given(st.integers(min_value=-1000, max_value=5000))
    @settings(max_examples=60)
    def test_roundtrip(self, value):
        cipher = FFXInteger(KEY, -1000, 5000)
        ct = cipher.encrypt(value)
        assert -1000 <= ct <= 5000
        assert cipher.decrypt(ct) == value

    def test_bijection_small_domain(self):
        cipher = FFXInteger(KEY, 10, 40)
        images = sorted(cipher.encrypt(v) for v in range(10, 41))
        assert images == list(range(10, 41))

    def test_power_of_two_domain(self):
        cipher = FFXInteger(KEY, 0, 255)
        images = {cipher.encrypt(v) for v in range(256)}
        assert len(images) == 256

    def test_domain_errors(self):
        cipher = FFXInteger(KEY, 0, 99)
        with pytest.raises(DomainError):
            cipher.encrypt(100)
        with pytest.raises(CryptoError):
            FFXInteger(KEY, 5, 4)


class TestOpe:
    @pytest.fixture(scope="class")
    def cipher(self):
        return OpeCipher(KEY, 0, 100_000, expansion_bits=12)

    def test_order_preserved(self, cipher):
        values = [0, 1, 7, 500, 4321, 99_999, 100_000]
        cts = [cipher.encrypt(v) for v in values]
        assert cts == sorted(cts)
        assert len(set(cts)) == len(cts)

    def test_deterministic_and_stateless(self, cipher):
        other = OpeCipher(KEY, 0, 100_000, expansion_bits=12)
        assert cipher.encrypt(777) == other.encrypt(777)

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, cipher, value):
        assert cipher.decrypt(cipher.encrypt(value)) == value

    def test_invalid_ciphertext_rejected(self, cipher):
        ct = cipher.encrypt(500)
        with pytest.raises(CryptoError):
            cipher.decrypt(ct + 1 if cipher.encrypt(501) != ct + 1 else ct + 2)

    def test_domain_check(self, cipher):
        with pytest.raises(DomainError):
            cipher.encrypt(100_001)

    def test_negative_domain(self):
        cipher = OpeCipher(KEY, -500, 500, expansion_bits=10)
        assert cipher.encrypt(-400) < cipher.encrypt(0) < cipher.encrypt(400)


class TestHypergeometricSampler:
    @given(
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=2, max_value=10_000),
    )
    @settings(max_examples=60)
    def test_support(self, marked, total):
        marked = min(marked, total)
        draws = total // 2
        x = _sample_hypergeometric(marked, total, draws, KeyedPRF(KEY), b"hg")
        assert max(0, marked - (total - draws)) <= x <= min(marked, draws)

    def test_large_instance_uses_normal_path(self):
        x = _sample_hypergeometric(10_000, 1_000_000, 500_000, KeyedPRF(KEY), b"hg2")
        # Mean is 5000; the draw should land within a plausible window.
        assert 4000 <= x <= 6000

    def test_deterministic(self):
        a = _sample_hypergeometric(50, 1000, 500, KeyedPRF(KEY), b"d")
        b = _sample_hypergeometric(50, 1000, 500, KeyedPRF(KEY), b"d")
        assert a == b


class TestSearch:
    @pytest.fixture(scope="class")
    def cipher(self):
        return SearchCipher(KEY)

    def test_word_match(self, cipher):
        tags = cipher.encrypt("the quick brown fox")
        assert cipher.matches(tags, cipher.trapdoor("%quick%"))
        assert not cipher.matches(tags, cipher.trapdoor("%slow%"))

    def test_prefix_suffix(self, cipher):
        tags = cipher.encrypt("PROMO BURNISHED COPPER")
        assert cipher.matches(tags, cipher.trapdoor("PROMO%"))
        assert cipher.matches(tags, cipher.trapdoor("%COPPER"))
        assert not cipher.matches(tags, cipher.trapdoor("STANDARD%"))

    def test_exact(self, cipher):
        tags = cipher.encrypt("MAIL")
        assert cipher.matches(tags, cipher.trapdoor("MAIL"))

    def test_multi_pattern_rejected(self, cipher):
        with pytest.raises(CryptoError):
            cipher.trapdoor("%special%requests%")

    def test_underscore_rejected(self, cipher):
        with pytest.raises(CryptoError):
            cipher.trapdoor("a_c")

    def test_pattern_classification(self):
        assert parse_like_pattern("%x%").kind == "word"
        assert parse_like_pattern("x%").kind == "prefix"
        assert parse_like_pattern("%x").kind == "suffix"
        assert parse_like_pattern("x").kind == "exact"

    @given(st.lists(st.sampled_from(["alpha", "beta", "gamma", "delta"]), min_size=1, max_size=6))
    @settings(max_examples=30)
    def test_all_words_indexed(self, cipher, words):
        text = " ".join(words)
        tags = cipher.encrypt(text)
        for word in words:
            assert cipher.matches(tags, cipher.trapdoor(f"%{word}%"))
