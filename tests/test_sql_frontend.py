"""Lexer / parser / printer tests, including the parse-print-parse property."""

from __future__ import annotations

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import LexError, ParseError
from repro.sql import ast, parse, parse_expression, to_sql
from repro.sql.lexer import tokenize


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT Select select")
        assert all(t.is_keyword("select") for t in tokens[:-1])

    def test_string_escapes(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_hex_blob(self):
        tokens = tokenize("X'deadbeef'")
        assert tokens[0].kind == "blob"
        assert tokens[0].value == bytes.fromhex("deadbeef")

    def test_numbers(self):
        tokens = tokenize("42 3.14 1e3 2.5e-2")
        assert tokens[0].value == 42
        assert tokens[1].value == 3.14
        assert tokens[2].value == 1000.0
        assert tokens[3].value == 0.025

    def test_params(self):
        tokens = tokenize(":1 :name")
        assert tokens[0].kind == "param" and tokens[0].text == "1"
        assert tokens[1].text == "name"

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- a comment\n 1")
        assert tokens[1].value == 1

    def test_errors(self):
        with pytest.raises(LexError):
            tokenize("'unterminated")
        with pytest.raises(LexError):
            tokenize("a @ b")
        with pytest.raises(LexError):
            tokenize("X'zz'")


class TestParser:
    def test_simple_select(self):
        q = parse("SELECT a, b FROM t WHERE a = 1")
        assert len(q.items) == 2
        assert isinstance(q.where, ast.BinOp)

    def test_date_and_interval(self):
        e = parse_expression("DATE '1995-01-01' + INTERVAL '3' MONTH")
        assert isinstance(e, ast.BinOp)
        assert e.left == ast.Literal(datetime.date(1995, 1, 1))
        assert e.right == ast.Interval(3, "month")

    def test_precedence(self):
        e = parse_expression("a + b * c")
        assert isinstance(e, ast.BinOp) and e.op == "+"
        assert isinstance(e.right, ast.BinOp) and e.right.op == "*"

    def test_and_or_precedence(self):
        e = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(e, ast.BinOp) and e.op == "or"

    def test_not_in(self):
        e = parse_expression("x NOT IN (1, 2)")
        assert isinstance(e, ast.InList) and e.negated

    def test_between(self):
        e = parse_expression("x BETWEEN 1 AND 10")
        assert isinstance(e, ast.Between)

    def test_case_when(self):
        e = parse_expression("CASE WHEN a = 1 THEN 'x' ELSE 'y' END")
        assert isinstance(e, ast.CaseWhen)
        assert len(e.whens) == 1

    def test_exists_subquery(self):
        q = parse("SELECT 1 FROM t WHERE EXISTS (SELECT * FROM u WHERE u.a = t.a)")
        assert isinstance(q.where, ast.Exists)

    def test_scalar_subquery(self):
        e = parse_expression("(SELECT MAX(x) FROM t)")
        assert isinstance(e, ast.ScalarSubquery)

    def test_in_subquery(self):
        e = parse_expression("a IN (SELECT b FROM t)")
        assert isinstance(e, ast.InSubquery)

    def test_joins(self):
        q = parse("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y JOIN c ON c.z = a.x")
        join = q.from_items[0]
        assert isinstance(join, ast.Join) and join.kind == "inner"
        assert isinstance(join.left, ast.Join) and join.left.kind == "left"

    def test_from_subquery(self):
        q = parse("SELECT s FROM (SELECT SUM(x) AS s FROM t) AS agg")
        assert isinstance(q.from_items[0], ast.SubqueryRef)

    def test_group_having_order_limit(self):
        q = parse(
            "SELECT a, COUNT(*) AS n FROM t GROUP BY a HAVING COUNT(*) > 2 "
            "ORDER BY n DESC, a LIMIT 5"
        )
        assert len(q.group_by) == 1
        assert q.having is not None
        assert q.order_by[0].ascending is False
        assert q.limit == 5

    def test_distinct_and_count_distinct(self):
        q = parse("SELECT DISTINCT a FROM t")
        assert q.distinct
        e = parse_expression("COUNT(DISTINCT x)")
        assert isinstance(e, ast.FuncCall) and e.distinct

    def test_extract_substring(self):
        e = parse_expression("EXTRACT(YEAR FROM d)")
        assert isinstance(e, ast.Extract) and e.field_name == "year"
        e = parse_expression("SUBSTRING(p FROM 1 FOR 2)")
        assert isinstance(e, ast.Substring)

    def test_negative_literal_folded(self):
        assert parse_expression("-5") == ast.Literal(-5)

    def test_errors(self):
        with pytest.raises(ParseError):
            parse("SELECT FROM t")
        with pytest.raises(ParseError):
            parse("SELECT a FROM t WHERE")
        with pytest.raises(ParseError):
            parse("SELECT a FROM t LIMIT x")
        with pytest.raises(ParseError):
            parse_expression("CASE END")


class TestPrinterRoundtrip:
    CASES = [
        "SELECT a FROM t",
        "SELECT DISTINCT a, b + 1 AS c FROM t, u WHERE t.x = u.y",
        "SELECT SUM(a * (100 - b)) AS rev FROM t GROUP BY c HAVING SUM(a) > 10 "
        "ORDER BY rev DESC LIMIT 3",
        "SELECT CASE WHEN a LIKE '%x%' THEN 1 ELSE 0 END FROM t",
        "SELECT a FROM t WHERE d >= DATE '1994-01-01' + INTERVAL '1' YEAR "
        "AND b BETWEEN 5 AND 7 AND c IN ('x', 'y') AND e IS NOT NULL",
        "SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE u.k = t.k) "
        "AND a > (SELECT MIN(z) FROM u)",
        "SELECT a FROM t LEFT JOIN u ON t.x = u.y WHERE NOT t.flag = 1",
        "SELECT EXTRACT(YEAR FROM d) AS y, COUNT(*) FROM t GROUP BY EXTRACT(YEAR FROM d)",
        "SELECT SUBSTRING(p FROM 1 FOR 2) FROM t WHERE x = X'00ff'",
    ]

    @pytest.mark.parametrize("sql", CASES)
    def test_roundtrip(self, sql):
        tree = parse(sql)
        assert parse(to_sql(tree)) == tree

    @given(
        st.recursive(
            st.one_of(
                st.integers(min_value=-1000, max_value=1000).map(ast.Literal),
                st.sampled_from(["a", "b", "c"]).map(ast.Column),
                st.text(
                    alphabet="abc xyz", min_size=0, max_size=6
                ).map(ast.Literal),
            ),
            lambda children: st.builds(
                ast.BinOp,
                st.sampled_from(["+", "-", "*", "=", "<", "and", "or"]),
                children,
                children,
            ),
            max_leaves=12,
        )
    )
    @settings(max_examples=60)
    def test_expression_roundtrip_property(self, expr):
        assert parse_expression(to_sql(expr)) == expr
