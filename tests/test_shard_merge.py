"""Property suite for the scatter-gather merge layer (hypothesis).

Four families, mirroring the merge paths in
:mod:`repro.server.sharded`:

* the k-way sorted merge reproduces the serial engine's exact ORDER BY
  semantics (ties, duplicates, NULLs-last ascending / NULLs-first
  descending, uneven and empty shards);
* Paillier partial sums recombine by ciphertext multiplication to the
  single-store reference;
* DET group keys merge exactly: same groups, same first-encounter
  order, same re-aggregated values as one serial store;
* plaintext rows and ledger byte counts are shard-count-invariant
  across N ∈ {1, 2, 3, 8}.
"""

from __future__ import annotations

import functools

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.paillier import generate_keypair
from repro.engine.executor import _SortKey
from repro.server import make_backend, make_sharded_backend
from repro.server.sharded import DirectedKey, merge_sorted_rows
from repro.sql import ast
from repro.engine.schema import schema

# -- strategies -------------------------------------------------------------

#: Sortable cell values: small ints force ties and duplicates; None
#: exercises the NULL ordering rules.
sort_values = st.one_of(st.none(), st.integers(min_value=-4, max_value=4))

#: A row of 1-3 sort keys (every row in one example has the same width).
key_widths = st.integers(min_value=1, max_value=3)


@st.composite
def merge_cases(draw):
    """Rows + per-key directions + an arbitrary row→shard assignment."""
    width = draw(key_widths)
    directions = draw(
        st.lists(st.booleans(), min_size=width, max_size=width)
    )
    rows = draw(
        st.lists(
            st.tuples(*[sort_values for _ in range(width)]),
            min_size=0,
            max_size=40,
        )
    )
    shard_count = draw(st.sampled_from([1, 2, 3, 8]))
    assignment = draw(
        st.lists(
            st.integers(min_value=0, max_value=shard_count - 1),
            min_size=len(rows),
            max_size=len(rows),
        )
    )
    return width, directions, rows, shard_count, assignment


def serial_order(rows_with_ordinals, directions):
    """The engine's reference sort: repeated stable passes, last key
    first, ``_SortKey`` per value (NULLs last ascending), ordinals as the
    final implied tiebreak via initial order."""
    ordered = sorted(rows_with_ordinals, key=lambda row: row[-1])
    for index in reversed(range(len(directions))):
        ordered.sort(
            key=lambda row: _SortKey(row[index]),
            reverse=not directions[index],
        )
    return ordered


class TestSortedMerge:
    @given(merge_cases())
    @settings(max_examples=200, deadline=None)
    def test_kway_merge_equals_serial_sort(self, case):
        width, directions, rows, shard_count, assignment = case
        tagged = [row + (ordinal,) for ordinal, row in enumerate(rows)]
        shards = [[] for _ in range(shard_count)]
        for row, target in zip(tagged, assignment):
            shards[target].append(row)
        key_slots = list(enumerate(directions))

        def shard_sort_key(row):
            return tuple(
                DirectedKey(row[slot], asc) for slot, asc in key_slots
            ) + (row[-1],)

        for shard in shards:
            shard.sort(key=shard_sort_key)
        merged = list(merge_sorted_rows(shards, key_slots, width))
        assert merged == serial_order(tagged, directions)

    @given(merge_cases(), st.integers(min_value=0, max_value=10))
    @settings(max_examples=100, deadline=None)
    def test_limit_trims_after_the_merge(self, case, limit):
        width, directions, rows, shard_count, assignment = case
        tagged = [row + (ordinal,) for ordinal, row in enumerate(rows)]
        shards = [[] for _ in range(shard_count)]
        for row, target in zip(tagged, assignment):
            shards[target].append(row)
        key_slots = list(enumerate(directions))

        def shard_sort_key(row):
            return tuple(
                DirectedKey(row[slot], asc) for slot, asc in key_slots
            ) + (row[-1],)

        for shard in shards:
            shard.sort(key=shard_sort_key)
        merged = list(merge_sorted_rows(shards, key_slots, width, limit))
        assert merged == serial_order(tagged, directions)[:limit]

    def test_directed_key_null_rules(self):
        # Ascending: every value < NULL; descending: NULL < every value.
        assert DirectedKey(1, True) < DirectedKey(None, True)
        assert not DirectedKey(None, True) < DirectedKey(1, True)
        assert DirectedKey(None, False) < DirectedKey(1, False)
        assert not DirectedKey(1, False) < DirectedKey(None, False)
        assert DirectedKey(None, True) == DirectedKey(None, False)
        assert not DirectedKey(None, True) < DirectedKey(None, True)


# -- Paillier partial-sum recombination -------------------------------------


@functools.lru_cache(maxsize=1)
def _keypair():
    # One small deterministic keypair for the whole suite: keygen is the
    # expensive part, the property is about recombination.
    return generate_keypair(modulus_bits=256, seed=b"shard-merge-suite")


class TestPaillierRecombination:
    @given(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=1 << 32),
                min_size=0,
                max_size=6,
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_partial_sums_multiply_to_reference(self, per_shard):
        public, private = _keypair()
        everything = [v for shard in per_shard for v in shard]
        # Per-shard partial: the homomorphic sum of that shard's values.
        partials = []
        for shard in per_shard:
            total = public.encrypt_zero()
            for value in shard:
                total = public.add(total, public.encrypt(value))
            partials.append(total)
        combined = functools.reduce(public.add, partials)
        # Single-store reference: one fold over all values, in order.
        reference = public.encrypt_zero()
        for value in everything:
            reference = public.add(reference, public.encrypt(value))
        assert private.decrypt(combined) == sum(everything)
        assert private.decrypt(combined) == private.decrypt(reference)


# -- DET group-key merge + shard-count invariance ---------------------------

group_rows = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(min_value=0, max_value=6)),  # k_det
        st.one_of(st.none(), st.integers(min_value=-50, max_value=50)),  # v
    ),
    min_size=0,
    max_size=48,
)

GROUP_QUERY = ast.Select(
    items=(
        ast.SelectItem(ast.Column("k_det"), "k"),
        ast.SelectItem(ast.FuncCall("count", star=True), "n"),
        ast.SelectItem(ast.FuncCall("sum", (ast.Column("v"),)), "s"),
        ast.SelectItem(ast.FuncCall("min", (ast.Column("v"),)), "lo"),
        ast.SelectItem(ast.FuncCall("grp", (ast.Column("v"),)), "g"),
        ast.SelectItem(
            ast.FuncCall("count", (ast.Column("v"),), distinct=True), "nd"
        ),
    ),
    from_items=(ast.TableName("t"),),
    group_by=(ast.Column("k_det"),),
)

SCAN_QUERY = ast.Select(
    items=(ast.SelectItem(ast.Column("k_det")), ast.SelectItem(ast.Column("v"))),
    from_items=(ast.TableName("t"),),
)

ORDER_QUERY = ast.Select(
    items=(ast.SelectItem(ast.Column("v")), ast.SelectItem(ast.Column("k_det"))),
    from_items=(ast.TableName("t"),),
    order_by=(
        ast.OrderItem(ast.Column("v"), False),
        ast.OrderItem(ast.Column("k_det")),
    ),
    limit=11,
)

TABLE = schema("t", ("k_det", "any"), ("v", "any"))


def _serial_reference(rows):
    backend = make_backend("memory", name="ref")
    backend.create_table(TABLE)
    backend.insert_rows("t", rows)
    return backend


class TestGroupMergeAndInvariance:
    @given(group_rows, st.sampled_from([1, 2, 3, 8]))
    @settings(max_examples=60, deadline=None)
    def test_det_group_merge_matches_serial(self, rows, shard_count):
        serial = _serial_reference(rows)
        sharded = make_sharded_backend("memory", shard_count, name="p")
        sharded.create_table(TABLE)
        sharded.insert_rows("t", rows)
        want = serial.execute(GROUP_QUERY)
        got = sharded.execute(GROUP_QUERY)
        assert got.rows == want.rows  # Values AND first-encounter order.
        assert sharded.last_stats.bytes_scanned == serial.last_stats.bytes_scanned

    @given(group_rows)
    @settings(max_examples=40, deadline=None)
    def test_rows_and_ledger_bytes_shard_count_invariant(self, rows):
        serial = _serial_reference(rows)
        reference = {
            query: (serial.execute(query).rows, serial.last_stats.bytes_scanned)
            for query in (SCAN_QUERY, ORDER_QUERY, GROUP_QUERY)
        }
        for shard_count in (1, 2, 3, 8):
            sharded = make_sharded_backend(
                "memory", shard_count, name=f"inv{shard_count}"
            )
            sharded.create_table(TABLE)
            sharded.insert_rows("t", rows)
            assert sharded.table_bytes("t") == serial.table_bytes("t")
            for query, (want_rows, want_bytes) in reference.items():
                assert sharded.execute(query).rows == want_rows
                assert sharded.last_stats.bytes_scanned == want_bytes
