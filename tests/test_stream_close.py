"""Mid-stream close: abandoned query streams must release everything.

A consumer that stops pulling (residual LIMIT, application error, user
cancel) closes the :class:`~repro.core.client.QueryStream`.  That close
must propagate down the whole pipeline — prefetch producer thread,
partition scan threads, server cursors — and leave no thread running,
on every backend and in every parallelism configuration.  The scan-byte
accounting contract from the streaming PR also holds: the full scan
footprint is charged whether or not the stream was drained.
"""

from __future__ import annotations

import gc
import threading

import pytest

from repro.core.client import MonomiClient
from repro.testkit import extra_threads as _extra_threads

STREAM_SQL = "SELECT o_orderkey, o_price FROM orders"


def _client_with(
    base: MonomiClient,
    partitions: int | None,
    prefetch_blocks: int | None,
) -> MonomiClient:
    """A streaming client over ``base``'s backend with explicit knobs."""
    return MonomiClient(
        base.plain_db,
        base.design,
        base.provider,
        base.backend,
        base.flags,
        base.network,
        base.disk,
        streaming=True,
        partitions=partitions,
        prefetch_blocks=prefetch_blocks,
    )


@pytest.fixture(
    params=[
        pytest.param((None, 0), id="serial"),
        pytest.param((None, 2), id="prefetch"),
        pytest.param((2, 0), id="partitions"),
        pytest.param((2, 2), id="partitions-prefetch"),
    ]
)
def stream_client(request, each_backend_client):
    """Both backends crossed with every parallelism configuration."""
    partitions, prefetch = request.param
    client = _client_with(each_backend_client, partitions, prefetch)
    # Warm up pools and caches with one fully drained query, so the
    # thread baseline each test snapshots includes long-lived pool
    # machinery but no per-query workers.
    client.execute(STREAM_SQL)
    return client


class TestMidStreamClose:
    def test_close_after_two_blocks_leaks_no_threads(self, stream_client):
        baseline = set(threading.enumerate())
        stream = stream_client.execute_iter(STREAM_SQL, block_rows=16)
        blocks = iter(stream)
        first = next(blocks)
        next(blocks)
        assert len(first) == 16
        stream.close()
        leaked = _extra_threads(baseline)
        assert not leaked, f"leaked threads after close: {leaked}"

    def test_close_still_charges_full_scan(self, stream_client):
        reference = stream_client.execute(STREAM_SQL)
        stream = stream_client.execute_iter(STREAM_SQL, block_rows=16)
        next(iter(stream))
        stream.close()
        assert (
            stream.ledger.server_bytes_scanned
            == reference.ledger.server_bytes_scanned
        )

    def test_close_is_idempotent(self, stream_client):
        stream = stream_client.execute_iter(STREAM_SQL, block_rows=16)
        next(iter(stream))
        stream.close()
        stream.close()

    def test_close_before_first_pull(self, stream_client):
        baseline = set(threading.enumerate())
        stream = stream_client.execute_iter(STREAM_SQL, block_rows=16)
        stream.close()
        leaked = _extra_threads(baseline)
        assert not leaked, f"leaked threads after close: {leaked}"

    def test_dropped_stream_is_collectable(self, stream_client):
        baseline = set(threading.enumerate())
        stream = stream_client.execute_iter(STREAM_SQL, block_rows=16)
        next(iter(stream))
        del stream
        gc.collect()
        leaked = _extra_threads(baseline)
        assert not leaked, f"leaked threads after GC: {leaked}"

    def test_drain_after_partial_pull_matches_execute(self, stream_client):
        reference = stream_client.execute(STREAM_SQL)
        stream = stream_client.execute_iter(STREAM_SQL, block_rows=16)
        outcome = stream.drain()
        assert outcome.rows == reference.rows
        assert (
            outcome.ledger.transfer_bytes == reference.ledger.transfer_bytes
        )
