"""Storage tests: codec roundtrips (property) and ciphertext files."""

from __future__ import annotations

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import EngineError
from repro.crypto.packing import PackedLayout
from repro.crypto.paillier import generate_keypair
from repro.storage import (
    CiphertextFile,
    CiphertextStore,
    decode_row,
    encode_row,
    row_bytes,
    value_bytes,
)

value_strategy = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.integers(min_value=2**70, max_value=2**80),  # Ciphertext-sized.
    st.floats(allow_nan=False, allow_infinity=False),
    st.dates(min_value=datetime.date(1970, 1, 1), max_value=datetime.date(2100, 1, 1)),
    st.text(max_size=40),
    st.binary(max_size=40),
)


class TestRowCodec:
    @given(st.lists(value_strategy, max_size=8).map(tuple))
    @settings(max_examples=80)
    def test_roundtrip(self, row):
        assert decode_row(encode_row(row)) == row

    def test_value_bytes_matches_paper_sizes(self):
        assert value_bytes(42) == 8
        assert value_bytes(3.14) == 8
        assert value_bytes(datetime.date(1995, 1, 1)) == 4
        assert value_bytes("hello") == 6
        assert value_bytes(b"\x00" * 10) == 11
        assert value_bytes(None) == 1
        assert value_bytes(True) == 1

    def test_big_int_sized_by_bit_length(self):
        ciphertext = 1 << 2047
        assert value_bytes(ciphertext) == 256

    def test_tagset_sizing(self):
        tags = frozenset({b"12345678", b"abcdefgh"})
        assert value_bytes(tags) == 8 * 2 + 2

    def test_row_bytes_includes_header(self):
        assert row_bytes((1, "ab")) == 24 + 8 + 3

    def test_unsizable_rejected(self):
        with pytest.raises(EngineError):
            value_bytes(object())


class TestCiphertextFile:
    @pytest.fixture(scope="class")
    def file(self):
        pub, _ = generate_keypair(256, seed=b"ct-file")
        layout = PackedLayout(column_bits=(16,), pad_bits=8, plaintext_bits=pub.plaintext_bits)
        f = CiphertextFile(
            name="t_hom",
            public_key=pub,
            layout=layout,
            column_names=("x",),
            num_rows=10,
        )
        per_ct = layout.rows_per_ciphertext
        for start in range(0, 10, per_ct):
            rows = [[i] for i in range(start, min(start + per_ct, 10))]
            f.ciphertexts.append(pub.encrypt(layout.encode_rows(rows)))
        return f

    def test_locate(self, file):
        group, offset = file.locate(0)
        assert group == 0 and offset == 0
        last_group, last_offset = file.locate(file.num_rows - 1)
        assert last_group == (file.num_rows - 1) // file.rows_per_ciphertext
        assert last_offset == (file.num_rows - 1) % file.rows_per_ciphertext

    def test_locate_out_of_range(self, file):
        with pytest.raises(EngineError):
            file.locate(10)

    def test_read_accounting(self, file):
        before = file.bytes_read
        file.read(0)
        assert file.bytes_read == before + file.ciphertext_bytes

    def test_total_bytes(self, file):
        assert file.total_bytes == len(file.ciphertexts) * file.ciphertext_bytes

    def test_store(self, file):
        store = CiphertextStore()
        store.add(file)
        assert store.get("t_hom") is file
        with pytest.raises(EngineError):
            store.add(file)
        with pytest.raises(EngineError):
            store.get("missing")
        assert store.total_bytes == file.total_bytes
