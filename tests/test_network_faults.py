"""Network chaos: faults on the real socket, byte-identical recovery.

The server side injects the failure modes only a network deployment has —
typed faults from the PR 6 chaos proxy wrapped around the *hosted*
backend, and whole connections severed mid-stream — and every query must
still produce rows and primary ledger byte counts identical to fault-free
execution, with the redone work visible only in ``ledger.retries`` /
``retry_bytes``.  Three fixed seeds replay three deterministic fault
schedules; deadlines must fire across the wire; a permanently failing
server must surface the same typed exception the in-process stack raises.
"""

from __future__ import annotations

import pytest

from repro.common.errors import (
    DeadlineExceededError,
    InjectedFaultError,
    TransientError,
)
from repro.core import MonomiClient
from repro.net import MonomiServer, RemoteBackend
from repro.server.chaos import chaos_from_env
from repro.testkit import SALES_WORKLOAD, canonical

CHAOS_SEEDS = (3, 11, 42)
CHAOS_RATE = 0.08


def ledger_bytes(ledger) -> tuple[int, int, int]:
    return (
        ledger.transfer_bytes,
        ledger.server_bytes_scanned,
        ledger.round_trips,
    )


def remote_client(sales_client, server: MonomiServer, **backend_opts) -> MonomiClient:
    """A dedicated client over its own RemoteBackend to ``server``."""
    backend = RemoteBackend(server.address, **backend_opts)
    return MonomiClient(
        sales_client.plain_db,
        sales_client.design,
        sales_client.provider,
        backend,
        sales_client.flags,
        sales_client.network,
        sales_client.disk,
        streaming=sales_client.streaming,
    )


@pytest.fixture(scope="module")
def references(sales_client):
    """Fault-free outcomes per workload query (rows + primary ledger)."""
    return {
        sql: (canonical(outcome.rows), ledger_bytes(outcome.ledger))
        for sql, outcome in (
            (sql, sales_client.execute(sql)) for sql in SALES_WORKLOAD
        )
    }


# ---------------------------------------------------------------------------
# Server-side chaos: typed faults crossing the wire
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_server_chaos_is_byte_identical(seed, sales_client, references):
    with MonomiServer(
        sales_client.backend, chaos=(seed, CHAOS_RATE)
    ) as server:
        client = remote_client(sales_client, server, pool_size=1)
        total_retries = 0
        for sql in SALES_WORKLOAD:
            outcome = client.execute(sql)
            want_rows, want_ledger = references[sql]
            assert canonical(outcome.rows) == want_rows, (seed, sql)
            assert ledger_bytes(outcome.ledger) == want_ledger, (seed, sql)
            total_retries += outcome.ledger.retries
        chaos = server.stats()["chaos"]
        client.close()
    faults = chaos["injected_errors"] + chaos["truncations"]
    assert chaos["draws"] > 0
    if chaos_from_env() is None:
        # Every server-injected fault crossed the wire as one typed
        # transient the client retried — no faults lost, none invented.
        # (Pre-call injections abandon attempts that charged nothing, so
        # retry_bytes is asserted on the deterministic drop test instead.)
        assert total_retries == faults, (seed, chaos)


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_server_chaos_streaming_iter_is_byte_identical(
    seed, sales_client, references
):
    sql = SALES_WORKLOAD[4]  # ORDER BY + LIMIT: the resumable stream shape.
    with MonomiServer(
        sales_client.backend, chaos=(seed, CHAOS_RATE)
    ) as server:
        client = remote_client(sales_client, server, pool_size=1)
        for _ in range(4):
            outcome = client.execute_iter(sql, block_rows=4).drain()
            want_rows, want_ledger = references[sql]
            assert canonical(outcome.rows) == want_rows, seed
            assert ledger_bytes(outcome.ledger) == want_ledger, seed
        client.close()


def test_permanent_faults_surface_the_in_process_type(sales_client):
    # rate=1.0: every attempt faults, the retry budget exhausts, and the
    # client must see the *same* exception class the in-process chaos
    # stack raises — the taxonomy survived the socket.
    with MonomiServer(sales_client.backend, chaos=(5, 1.0)) as server:
        client = remote_client(sales_client, server, pool_size=1)
        with pytest.raises(TransientError) as excinfo:
            client.execute(SALES_WORKLOAD[0])
        assert isinstance(excinfo.value, InjectedFaultError)
        client.close()


# ---------------------------------------------------------------------------
# Severed connections: the failure mode only a real socket has
# ---------------------------------------------------------------------------


def test_dropped_connections_are_byte_identical(sales_client, references):
    with MonomiServer(
        sales_client.backend, drop_rate=0.25, drop_seed=7
    ) as server:
        client = remote_client(sales_client, server)
        total_retries = total_retry_bytes = 0
        for _round in range(3):
            for sql in SALES_WORKLOAD:
                outcome = client.execute(sql)
                want_rows, want_ledger = references[sql]
                assert canonical(outcome.rows) == want_rows, sql
                assert ledger_bytes(outcome.ledger) == want_ledger, sql
                total_retries += outcome.ledger.retries
                total_retry_bytes += outcome.ledger.retry_bytes
        drops = server.stats()["drops_injected"]
        client.close()
    assert drops > 0  # The schedule actually severed connections.
    if chaos_from_env() is None:
        assert total_retries == drops
        if sales_client.streaming:
            # A severed stream abandons a started attempt: its redone
            # bytes land in retry accounting, never in primary totals.
            assert total_retry_bytes > 0


def test_drop_storm_with_concurrent_sessions(sales_client, references):
    # Drops under the service layer: worker views each dial their own
    # connections; severing them must never corrupt another session.
    with MonomiServer(
        sales_client.backend, drop_rate=0.15, drop_seed=23
    ) as server:
        client = remote_client(sales_client, server)
        with client.service(workers=3) as service:
            sessions = [service.open_session() for _ in range(3)]
            futures = [
                (sql, session.submit(sql))
                for session in sessions
                for sql in SALES_WORKLOAD
            ]
            for sql, future in futures:
                outcome = future.result()
                want_rows, want_ledger = references[sql]
                assert canonical(outcome.rows) == want_rows, sql
                assert ledger_bytes(outcome.ledger) == want_ledger, sql
        client.close()


# ---------------------------------------------------------------------------
# Deadlines across the wire
# ---------------------------------------------------------------------------


class TestWireDeadlines:
    def test_expired_deadline_fires_on_execute(self, sales_client_remote):
        with pytest.raises(DeadlineExceededError):
            sales_client_remote.execute(SALES_WORKLOAD[0], timeout=1e-6)

    def test_expired_deadline_fires_on_execute_iter(self, sales_client_remote):
        with pytest.raises(DeadlineExceededError):
            stream = sales_client_remote.execute_iter(
                SALES_WORKLOAD[4], timeout=1e-6
            )
            stream.drain()

    def test_client_still_works_after_a_deadline(self, sales_client_remote):
        with pytest.raises(DeadlineExceededError):
            sales_client_remote.execute(SALES_WORKLOAD[0], timeout=1e-6)
        outcome = sales_client_remote.execute(SALES_WORKLOAD[0])
        assert outcome.rows

    def test_generous_deadline_does_not_perturb_results(
        self, sales_client, sales_client_remote
    ):
        want = sales_client.execute(SALES_WORKLOAD[1])
        got = sales_client_remote.execute(SALES_WORKLOAD[1], timeout=120.0)
        assert canonical(got.rows) == canonical(want.rows)
        assert ledger_bytes(got.ledger) == ledger_bytes(want.ledger)

    def test_deadline_is_not_retried(self, sales_client):
        # Fatal taxonomy: an expired deadline must fail fast, not burn
        # the retry budget on an error retrying cannot fix.
        with MonomiServer(sales_client.backend) as server:
            client = remote_client(sales_client, server, pool_size=1)
            try:
                client.execute(SALES_WORKLOAD[0], timeout=1e-6)
            except DeadlineExceededError:
                pass
            stats = server.stats()
            client.close()
        assert stats["drops_injected"] == 0
        assert stats["queries"] <= 1  # No whole-query retry happened.
