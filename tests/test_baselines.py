"""Baseline systems: correctness and the relationships §8 relies on."""

from __future__ import annotations

import pytest

from repro.testkit import MASTER_KEY, SALES_WORKLOAD, build_sales_db, canonical
from repro.baselines import (
    client_only_setup,
    cryptdb_client_setup,
    execution_greedy_setup,
)
from repro.core import MonomiClient, Scheme, normalize_query
from repro.engine import Executor
from repro.sql import parse

QUERIES = SALES_WORKLOAD[:4]


@pytest.fixture(scope="module")
def db():
    return build_sales_db(num_orders=120, seed=17)


@pytest.fixture(scope="module")
def systems(db):
    return {
        "cryptdb": cryptdb_client_setup(db, QUERIES, master_key=MASTER_KEY, paillier_bits=384),
        "greedy": execution_greedy_setup(db, QUERIES, master_key=MASTER_KEY, paillier_bits=384),
        "monomi": MonomiClient.setup(
            db, QUERIES, master_key=MASTER_KEY, paillier_bits=384, space_budget=2.5
        ),
    }


@pytest.mark.parametrize("label", ["cryptdb", "greedy", "monomi"])
@pytest.mark.parametrize("sql", QUERIES)
def test_all_systems_agree_with_plaintext(db, systems, label, sql):
    query = normalize_query(parse(sql))
    outcome = systems[label].execute(query)
    expected = Executor(db).execute(query)
    assert canonical(outcome.rows) == canonical(expected.rows)


def test_cryptdb_design_is_onion_shaped(systems):
    design = systems["cryptdb"].design
    schemes = {}
    for entry in design.entries:
        schemes.setdefault((entry.table, entry.expr_sql), set()).add(entry.scheme)
    # Every integer/text column carries both RND and DET copies.
    assert all(
        Scheme.RND in s for s in schemes.values()
    )
    # No precomputed expressions anywhere (CryptDB has none).
    assert not any(e.is_precomputed for e in design.entries)
    # Paillier files are one value per ciphertext.
    assert all(g.rows_per_ciphertext == 1 and len(g.expr_sqls) == 1 for g in design.hom_groups)


def test_cryptdb_uses_more_space_than_monomi(systems):
    assert systems["cryptdb"].server_bytes() > systems["monomi"].server_bytes()


def test_greedy_planner_tries_single_candidate(systems):
    planned = systems["greedy"].planner.plan(normalize_query(parse(QUERIES[0])))
    assert planned.candidates_tried == 1


def test_client_only_ships_everything(db):
    client = client_only_setup(db, QUERIES[:1], master_key=MASTER_KEY, paillier_bits=384)
    query = normalize_query(parse("SELECT COUNT(*) FROM orders WHERE o_price > 500"))
    outcome = client.execute(query)
    expected = Executor(db).execute(query)
    assert canonical(outcome.rows) == canonical(expected.rows)
    # Every row crossed the wire: transfer exceeds one value per order row.
    assert outcome.ledger.transfer_bytes > 120 * 8
