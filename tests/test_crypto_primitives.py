"""Unit + property tests for PRF, primes, AES, and Feistel PRPs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CryptoError
from repro.crypto.aes import AES128
from repro.crypto.feistel import FeistelPRP, IntegerPRP
from repro.crypto.prf import PRFStream, derive_key, prf, prf_int
from repro.crypto.primes import generate_prime, is_probable_prime

KEY = b"0123456789abcdef"


class TestPrf:
    def test_deterministic(self):
        assert prf(KEY, b"msg") == prf(KEY, b"msg")

    def test_key_separation(self):
        assert prf(KEY, b"msg") != prf(b"fedcba9876543210", b"msg")

    def test_message_separation(self):
        assert prf(KEY, b"a") != prf(KEY, b"b")

    def test_prf_int_width(self):
        for nbits in (1, 7, 8, 9, 63, 64, 65, 257):
            value = prf_int(KEY, b"m", nbits)
            assert 0 <= value < (1 << nbits)

    def test_prf_int_rejects_nonpositive(self):
        with pytest.raises(CryptoError):
            prf_int(KEY, b"m", 0)

    def test_derive_key_path_sensitivity(self):
        assert derive_key(KEY, "a", "b") != derive_key(KEY, "ab")
        assert derive_key(KEY, "t", "col", "det") != derive_key(KEY, "t", "col", "ope")

    def test_derive_key_rejects_empty_master(self):
        with pytest.raises(CryptoError):
            derive_key(b"", "x")


class TestPrfStream:
    def test_reproducible(self):
        a = PRFStream(KEY, b"tweak")
        b = PRFStream(KEY, b"tweak")
        assert a.next_bytes(100) == b.next_bytes(100)

    def test_tweak_separation(self):
        a = PRFStream(KEY, b"t1")
        b = PRFStream(KEY, b"t2")
        assert a.next_bytes(32) != b.next_bytes(32)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_next_below_in_range(self, bound):
        stream = PRFStream(KEY, b"nb")
        for _ in range(5):
            assert 0 <= stream.next_below(bound) < bound

    def test_next_unit_in_range(self):
        stream = PRFStream(KEY, b"u")
        for _ in range(100):
            u = stream.next_unit()
            assert 0.0 <= u < 1.0


class TestPrimes:
    def test_small_primes(self):
        assert is_probable_prime(2)
        assert is_probable_prime(97)
        assert not is_probable_prime(1)
        assert not is_probable_prime(100)

    def test_carmichael_rejected(self):
        assert not is_probable_prime(561)
        assert not is_probable_prime(41041)

    def test_generate_prime_size(self):
        p = generate_prime(96)
        assert p.bit_length() == 96
        assert is_probable_prime(p)

    def test_generate_deterministic_with_stream(self):
        a = generate_prime(64, PRFStream(KEY, b"p"))
        b = generate_prime(64, PRFStream(KEY, b"p"))
        assert a == b


class TestAES:
    def test_fips_197_vector(self):
        cipher = AES128(bytes(range(16)))
        ct = cipher.encrypt_block(bytes.fromhex("00112233445566778899aabbccddeeff"))
        assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_appendix_b_vector(self):
        cipher = AES128(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        ct = cipher.encrypt_block(bytes.fromhex("3243f6a8885a308d313198a2e0370734"))
        assert ct.hex() == "3925841d02dc09fbdc118597196a0b32"

    @given(st.binary(min_size=16, max_size=16))
    @settings(max_examples=25)
    def test_roundtrip(self, block):
        cipher = AES128(KEY)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_rejects_bad_key_and_block(self):
        with pytest.raises(CryptoError):
            AES128(b"short")
        with pytest.raises(CryptoError):
            AES128(KEY).encrypt_block(b"short")


class TestFeistelPRP:
    @given(st.binary(min_size=2, max_size=64))
    @settings(max_examples=50)
    def test_roundtrip(self, data):
        prp = FeistelPRP(KEY)
        assert prp.decrypt(prp.encrypt(data)) == data

    def test_length_preserving(self):
        prp = FeistelPRP(KEY)
        for n in (2, 3, 17, 31):
            assert len(prp.encrypt(b"x" * n)) == n

    def test_tweak_changes_permutation(self):
        a = FeistelPRP(KEY, tweak=b"1").encrypt(b"hello world!")
        b = FeistelPRP(KEY, tweak=b"2").encrypt(b"hello world!")
        assert a != b

    def test_rejects_tiny_input(self):
        with pytest.raises(CryptoError):
            FeistelPRP(KEY).encrypt(b"x")


class TestIntegerPRP:
    @pytest.mark.parametrize("nbits", [2, 3, 5, 8, 13, 31, 64, 127])
    def test_roundtrip(self, nbits):
        prp = IntegerPRP(KEY, nbits)
        for value in (0, 1, (1 << nbits) - 1, (1 << nbits) // 3):
            ct = prp.encrypt(value)
            assert 0 <= ct < (1 << nbits)
            assert prp.decrypt(ct) == value

    @pytest.mark.parametrize("nbits", [2, 4, 6, 8])
    def test_is_permutation(self, nbits):
        prp = IntegerPRP(KEY, nbits)
        images = sorted(prp.encrypt(v) for v in range(1 << nbits))
        assert images == list(range(1 << nbits))

    def test_domain_check(self):
        prp = IntegerPRP(KEY, 8)
        with pytest.raises(CryptoError):
            prp.encrypt(256)
        with pytest.raises(CryptoError):
            prp.encrypt(-1)
