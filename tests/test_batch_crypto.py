"""Batch crypto APIs: element-wise equivalence with the scalar paths.

The columnar pipeline (loader, client decrypt) relies on the ``*_batch``
methods producing exactly what a per-value loop over the scalar methods
would — including ``None`` passthrough, FFX short-text length boundaries,
and the CRT-vs-textbook Paillier decryption split.
"""

from __future__ import annotations

import datetime
import random

import pytest

from repro.core import CryptoProvider
from repro.core.encdata import (
    _SHORT_TEXT_BYTES,
    DEFAULT_CACHE_SIZE,
    INT_BOUND,
    LRUCache,
)
from repro.common.errors import DomainError
from repro.crypto.paillier import generate_keypair
from repro.testkit import MASTER_KEY

RNG = random.Random(20130713)


def _sample_ints(n: int) -> list:
    values: list = [0, 1, -1, INT_BOUND - 1, -INT_BOUND, None, True, False]
    values += [RNG.randint(-(10 ** 6), 10 ** 6) for _ in range(n)]
    return values


def _sample_dates(n: int) -> list:
    base = datetime.date(1970, 1, 1)
    # DATE_DAYS = 1 << 15: the domain's last representable day.
    values: list = [base, base + datetime.timedelta(days=(1 << 15) - 1), None]
    values += [base + datetime.timedelta(days=RNG.randint(0, 30000)) for _ in range(n)]
    return values


def _sample_texts() -> list:
    # Every FFX short-text boundary: empty (CMC branch), 1..12 bytes (FFX
    # per-length domains), 13+ bytes (CMC wide-block branch), multi-byte
    # UTF-8 straddling the byte-length boundary.
    values: list = ["", None]
    for length in range(1, _SHORT_TEXT_BYTES + 3):
        values.append("x" * length)
    values += ["héllo", "naïve-café", "ünïcödé-stri", "日本語テキスト", "BRASS", "PROMO"]
    values += ["word salad " * 4, "a much longer comment string than twelve bytes"]
    return values


@pytest.fixture(scope="module")
def prov() -> CryptoProvider:
    return CryptoProvider(MASTER_KEY, paillier_bits=256)


class TestDetBatch:
    @pytest.mark.parametrize(
        "values", [_sample_ints(40), _sample_dates(25), _sample_texts()],
        ids=["ints", "dates", "texts"],
    )
    def test_encrypt_matches_scalar(self, prov, values):
        assert prov.det_encrypt_batch(values) == [prov.det_encrypt(v) for v in values]

    def test_decrypt_matches_scalar_and_roundtrips(self, prov):
        for values, sql_type in [
            (_sample_ints(25), "int"),
            (_sample_dates(15), "date"),
            (_sample_texts(), "text"),
        ]:
            if sql_type == "int":
                values = [v for v in values if not isinstance(v, bool)]
            cts = prov.det_encrypt_batch(values)
            batch = prov.det_decrypt_batch(cts, sql_type)
            assert batch == [prov.det_decrypt(c, sql_type) for c in cts]
            assert batch == values

    def test_bool_type(self, prov):
        values = [True, False, None, True]
        cts = prov.det_encrypt_batch(values)
        assert prov.det_decrypt_batch(cts, "bool") == values


class TestOpeBatch:
    @pytest.mark.parametrize(
        "values", [_sample_ints(25), _sample_dates(15), _sample_texts()],
        ids=["ints", "dates", "texts"],
    )
    def test_encrypt_matches_scalar(self, prov, values):
        assert prov.ope_encrypt_batch(values) == [prov.ope_encrypt(v) for v in values]

    def test_order_preserved_and_decrypt_matches(self, prov):
        values = sorted(v for v in _sample_ints(30) if isinstance(v, int))
        cts = prov.ope_encrypt_batch(values)
        assert cts == sorted(cts)
        fresh = CryptoProvider(MASTER_KEY, paillier_bits=256)
        batch = fresh.ope_decrypt_batch(cts, "int")
        assert batch == [prov.ope_decrypt(c, "int") for c in cts]
        assert batch == [int(v) for v in values]


class TestRndSearchBatch:
    def test_rnd_roundtrip_batch(self, prov):
        values = _sample_ints(10) + _sample_texts() + _sample_dates(5) + [2.5, -0.125]
        cts = prov.rnd_encrypt_batch(values)
        assert [c is None for c in cts] == [v is None for v in values]
        assert prov.rnd_decrypt_batch(cts) == values

    def test_search_matches_scalar(self, prov):
        values = ["quick brown fox", "", None, "PROMO burnished", "word " * 8]
        assert prov.search_encrypt_batch(values) == [
            prov.search_encrypt(v) for v in values
        ]

    def test_generic_dispatch_matches_scheme_methods(self, prov):
        values = _sample_ints(10)
        assert prov.encrypt_batch(values, "det") == prov.det_encrypt_batch(values)
        assert prov.encrypt_batch(values, "ope") == prov.ope_encrypt_batch(values)
        cts = prov.det_encrypt_batch(values)
        assert prov.decrypt_batch(cts, "det", "int") == prov.det_decrypt_batch(cts, "int")
        assert prov.decrypt_batch(cts, "plain", "int") == list(cts)


class TestPaillierBatchAndCrt:
    def test_crt_matches_textbook(self):
        public, private = generate_keypair(384, seed=b"crt-equivalence-seed")
        assert private.p and private.q  # CRT parameters present
        messages = [0, 1, 2, public.n - 1] + [
            RNG.randrange(public.n) for _ in range(40)
        ]
        for m in messages:
            c = public.encrypt(m)
            assert private.decrypt(c) == private.decrypt_textbook(c) == m

    def test_textbook_fallback_without_factors(self):
        public, private = generate_keypair(256, seed=b"fallback-seed")
        bare = type(private)(public=public, lam=private.lam, mu=private.mu)
        cts = [public.encrypt(m) for m in (0, 7, 12345)]
        assert bare._crt is None
        assert [bare.decrypt(c) for c in cts] == [0, 7, 12345]
        assert bare.decrypt_batch(cts) == [0, 7, 12345]

    def test_encrypt_batch_with_pool_decrypts(self, prov):
        messages = [RNG.randrange(1 << 48) for _ in range(30)] + [0, 1]
        cts = prov.paillier_encrypt_batch(messages)
        assert prov.paillier_decrypt_batch(cts) == messages
        # Pool factors must be fresh randomness: ciphertexts all distinct.
        assert len(set(cts)) == len(cts)

    def test_pool_randomness_not_repeated_across_providers(self):
        # Two providers under the same master key share keys but must NOT
        # share encryption randomness — repeated obfuscation factors would
        # let the server compute plaintext deltas between two loads.
        a = CryptoProvider(MASTER_KEY, paillier_bits=256)
        b = CryptoProvider(MASTER_KEY, paillier_bits=256)
        assert a.paillier_public.n == b.paillier_public.n
        messages = [5, 5, 5, 5]
        assert set(a.paillier_encrypt_batch(messages)).isdisjoint(
            b.paillier_encrypt_batch(messages)
        )

    def test_pool_homomorphism(self, prov):
        public = prov.paillier_public
        a, b = 1234, 5678
        ca, cb = prov.paillier_encrypt_batch([a, b])
        assert prov.paillier_private.decrypt(public.add(ca, cb)) == a + b

    def test_decrypt_batch_matches_scalar(self, prov):
        private = prov.paillier_private
        cts = prov.paillier_encrypt_batch([RNG.randrange(1 << 32) for _ in range(10)])
        assert private.decrypt_batch(cts) == [private.decrypt(c) for c in cts]

    def test_out_of_range_error_reports_value_and_modulus(self, prov):
        public = prov.paillier_public
        with pytest.raises(DomainError) as excinfo:
            public.encrypt(public.n)
        assert str(public.n) in str(excinfo.value)
        with pytest.raises(DomainError) as excinfo:
            public.encrypt_batch([0, -3])
        assert "-3" in str(excinfo.value)


class TestBoundedCaches:
    def test_lru_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert len(cache) == 2

    def test_provider_caches_stay_bounded(self):
        prov = CryptoProvider(MASTER_KEY, paillier_bits=256, cache_size=16)
        values = list(range(100))
        first = prov.det_encrypt_batch(values)
        assert len(prov._det_cache) <= 16
        assert len(prov._ope_cache) == 0
        # Correctness survives eviction: re-encrypting gives the same
        # ciphertexts (DET is deterministic) even though nothing is cached.
        assert prov.det_encrypt_batch(values) == first
        cts = prov.ope_encrypt_batch(values[:40])
        assert len(prov._ope_cache) <= 16
        assert prov.ope_decrypt_batch(cts, "int") == values[:40]
        assert len(prov._ope_dec_cache) <= 16

    def test_default_cache_size(self):
        prov = CryptoProvider(MASTER_KEY, paillier_bits=256)
        assert prov._det_cache.capacity == DEFAULT_CACHE_SIZE
