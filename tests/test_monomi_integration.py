"""Integration: split execution matches plaintext execution exactly.

The central invariant of the whole system — for every query the client
returns precisely what a plaintext database would — tested over the shared
sales database, plus property-based random queries.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testkit import SALES_WORKLOAD, canonical
from repro.common.errors import UnsupportedQueryError
from repro.core import normalize_query
from repro.sql import parse

EXTRA_QUERIES = [
    # Correlated IN-subquery pushed to the server (per-outer-row
    # re-execution must not re-charge scan bytes — they are charged once
    # per table reference, matching the SQLite backend's accounting).
    "SELECT o_orderkey FROM orders WHERE o_custkey IN "
    "(SELECT c_custkey FROM customer WHERE c_nation = o_status)",
    # Aggregates + having alias (the paper's §3 example shape).
    "SELECT o_custkey, SUM(o_price) AS total FROM orders GROUP BY o_custkey "
    "HAVING total > 5000 ORDER BY total DESC",
    # Join + date range + group.
    "SELECT c_nation, COUNT(*) AS n, SUM(o_qty) FROM orders, customer "
    "WHERE o_custkey = c_custkey AND o_date < DATE '1996-06-01' "
    "GROUP BY c_nation ORDER BY n DESC, c_nation",
    # Local-only predicate (multiplication of two columns).
    "SELECT COUNT(*) FROM orders WHERE o_price * o_qty > 40000",
    # LIKE + group.
    "SELECT o_status, COUNT(*) FROM orders WHERE o_comment LIKE '%brown%' "
    "GROUP BY o_status ORDER BY o_status",
    # Scalar subquery consumed locally (Q11 shape).
    "SELECT o_custkey, SUM(o_price) AS total FROM orders GROUP BY o_custkey "
    "HAVING SUM(o_price) > (SELECT SUM(o_price) * 0.05 FROM orders) ORDER BY total DESC",
    # IN-subquery with aggregate HAVING (Q18 shape: round-trip plan).
    "SELECT o_orderkey, o_price FROM orders WHERE o_custkey IN "
    "(SELECT o_custkey FROM orders GROUP BY o_custkey HAVING SUM(o_qty) > 140) "
    "ORDER BY o_orderkey LIMIT 25",
    # Correlated EXISTS pushed to the server.
    "SELECT c_name FROM customer WHERE EXISTS "
    "(SELECT * FROM orders WHERE o_custkey = c_custkey AND o_price > 4500) "
    "ORDER BY c_name",
    # NOT EXISTS (Q22 shape).
    "SELECT COUNT(*) FROM customer WHERE NOT EXISTS "
    "(SELECT * FROM orders WHERE o_custkey = c_custkey)",
    # FROM-subquery composition (Q7/8/9 shape).
    "SELECT seg, SUM(rev) FROM (SELECT c_segment AS seg, o_price * o_qty AS rev "
    "FROM orders, customer WHERE o_custkey = c_custkey AND o_discount <= 5) AS x "
    "GROUP BY seg ORDER BY seg",
    # MIN/MAX via OPE.
    "SELECT o_custkey, MIN(o_price), MAX(o_price) FROM orders "
    "GROUP BY o_custkey ORDER BY o_custkey LIMIT 8",
    # DISTINCT.
    "SELECT DISTINCT o_status FROM orders ORDER BY o_status",
    # BETWEEN + IN list.
    "SELECT COUNT(*) FROM orders WHERE o_qty BETWEEN 10 AND 20 "
    "AND o_status IN ('OPEN', 'SHIPPED')",
]


@pytest.mark.parametrize("sql", SALES_WORKLOAD + EXTRA_QUERIES)
def test_split_matches_plaintext(each_backend_client, plain_executor, sql):
    query = normalize_query(parse(sql))
    outcome = each_backend_client.execute(query)
    expected = plain_executor.execute(query)
    assert canonical(outcome.rows) == canonical(expected.rows)


@pytest.mark.parametrize("sql", SALES_WORKLOAD + EXTRA_QUERIES)
def test_backends_agree_on_results_and_ledger(
    sales_client, sales_client_sqlite, sql
):
    """The in-memory engine and real SQLite run the same split plans to the
    same plaintext — and charge identical scan/transfer bytes, so every
    cost-model figure is backend-independent."""
    query = normalize_query(parse(sql))
    mem = sales_client.execute(query)
    lite = sales_client_sqlite.execute(query)
    assert canonical(mem.rows) == canonical(lite.rows)
    assert mem.ledger.transfer_bytes == lite.ledger.transfer_bytes
    assert mem.ledger.server_bytes_scanned == lite.ledger.server_bytes_scanned
    assert mem.ledger.round_trips == lite.ledger.round_trips


def test_ledger_accounts_all_components(sales_client):
    outcome = sales_client.execute(SALES_WORKLOAD[0])
    ledger = outcome.ledger
    assert ledger.transfer_bytes > 0
    assert ledger.transfer_seconds > 0
    assert ledger.total_seconds == pytest.approx(
        ledger.server_seconds + ledger.client_seconds + ledger.transfer_seconds
    )


def test_server_never_sees_plaintext(sales_client):
    """No plaintext value from the sales data appears on the server."""
    server = sales_client.server_db
    plaintext_strings = {"OPEN", "SHIPPED", "RETURNED", "BUILDING", "FRANCE"}
    for table in server.tables.values():
        for row in table.rows[:50]:
            for value in row:
                assert value not in plaintext_strings
                # Date columns never stored as dates — only FFX integers.
                import datetime

                assert not isinstance(value, datetime.date)


def test_remote_queries_reference_only_encrypted_columns(sales_client):
    outcome = sales_client.execute(SALES_WORKLOAD[0])
    for relation in outcome.planned.plan.remote_relations():
        text = relation.sql()
        # Plaintext-named columns never appear bare in server SQL.
        assert "o_price " not in text and "o_price," not in text


def test_multi_pattern_like_rejected(sales_client):
    with pytest.raises(UnsupportedQueryError):
        sales_client.execute(
            "SELECT COUNT(*) FROM orders WHERE o_comment LIKE '%brown%fox%'"
        )


def test_explain_mentions_remote_sql(sales_client):
    text = sales_client.explain(SALES_WORKLOAD[0])
    assert "RemoteSQL" in text
    assert "estimated cost" in text


def test_space_overhead_reported(sales_client):
    assert 1.0 <= sales_client.space_overhead() <= 3.0


# ---------------------------------------------------------------------------
# Property-based equivalence over randomly generated queries
# ---------------------------------------------------------------------------

_int_cols = st.sampled_from(["o_price", "o_qty", "o_discount", "o_orderkey"])
_filters = st.one_of(
    st.builds(lambda c, v: f"{c} > {v}", _int_cols, st.integers(0, 4000)),
    st.builds(lambda c, v: f"{c} = {v}", _int_cols, st.integers(0, 50)),
    st.builds(
        lambda c, lo, hi: f"{c} BETWEEN {lo} AND {hi}",
        _int_cols,
        st.integers(0, 2000),
        st.integers(2000, 5000),
    ),
    st.sampled_from(
        [
            "o_status = 'OPEN'",
            "o_comment LIKE '%green%'",
            "o_date >= DATE '1996-01-01'",
            "o_price * o_qty > 20000",
        ]
    ),
)
_aggs = st.sampled_from(
    ["SUM(o_price)", "COUNT(*)", "MIN(o_qty)", "MAX(o_price)", "SUM(o_price * o_qty)"]
)


@given(
    agg=_aggs,
    filters=st.lists(_filters, min_size=0, max_size=2),
    group=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_random_query_equivalence(sales_client, plain_executor, agg, filters, group):
    where = (" WHERE " + " AND ".join(filters)) if filters else ""
    if group:
        sql = (
            f"SELECT o_status, {agg} FROM orders{where} "
            f"GROUP BY o_status ORDER BY o_status"
        )
    else:
        sql = f"SELECT {agg} FROM orders{where}"
    query = normalize_query(parse(sql))
    outcome = sales_client.execute(query)
    expected = plain_executor.execute(query)
    assert canonical(outcome.rows) == canonical(expected.rows)
