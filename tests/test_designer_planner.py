"""Designer and planner behaviour tests (§6, §8.5, §8.6 mechanics)."""

from __future__ import annotations

import pytest

from repro.testkit import MASTER_KEY, SALES_WORKLOAD, build_sales_db, canonical
from repro.core import (
    CryptoProvider,
    MonomiClient,
    PhysicalDesign,
    Scheme,
    TechniqueFlags,
    normalize_query,
)
from repro.core.candidates import base_design_for_plain
from repro.core.designer import Designer
from repro.core.sizer import DesignSizer
from repro.engine import Executor
from repro.sql import parse


@pytest.fixture(scope="module")
def small_db():
    return build_sales_db(num_orders=150, seed=3)


@pytest.fixture(scope="module")
def provider():
    return CryptoProvider(MASTER_KEY, paillier_bits=384)


@pytest.fixture(scope="module")
def designer(small_db, provider):
    return Designer(small_db, provider)


@pytest.fixture(scope="module")
def queries():
    return [normalize_query(parse(sql)) for sql in SALES_WORKLOAD]


class TestDesigner:
    def test_greedy_design_covers_workload_ops(self, designer, queries):
        result = designer.design_greedy(queries)
        schemes = {e.scheme for e in result.design.entries}
        assert Scheme.SEARCH in schemes  # The LIKE query.
        assert Scheme.OPE in schemes  # Range filters.

    def test_ilp_respects_budget(self, designer, queries, small_db, provider):
        result = designer.design_ilp(queries, space_budget=1.3)
        sizer = DesignSizer(small_db, provider)
        assert sizer.design_bytes(result.design) <= 1.3 * sizer.plaintext_bytes() * 1.02

    def test_tighter_budget_costs_more(self, designer, queries):
        loose = designer.design_ilp(queries, space_budget=2.5)
        tight = designer.design_ilp(queries, space_budget=1.2)
        assert tight.total_cost >= loose.total_cost * 0.999

    def test_space_greedy_meets_budget(self, designer, queries, small_db, provider):
        result = designer.design_space_greedy(queries, space_budget=1.3)
        sizer = DesignSizer(small_db, provider)
        assert sizer.design_bytes(result.design) <= 1.3 * sizer.plaintext_bytes() * 1.02

    def test_ilp_not_worse_than_space_greedy(self, designer, queries):
        ilp = designer.design_ilp(queries, space_budget=1.3)
        greedy = designer.design_space_greedy(queries, space_budget=1.3)
        assert ilp.total_cost <= greedy.total_cost * 1.001

    def test_setup_time_recorded(self, designer, queries):
        result = designer.design_ilp(queries, space_budget=2.0)
        assert result.setup_seconds > 0

    def test_stats_max(self, designer):
        assert designer.stats_max("orders", "o_qty") == 50
        assert designer.stats_max("orders", "o_price * o_qty") > 0
        assert designer.stats_max("missing", "x") is None


class TestPlannerChoices:
    def test_planner_enumerates_candidates(self, small_db):
        client = MonomiClient.setup(
            small_db, SALES_WORKLOAD, master_key=MASTER_KEY, paillier_bits=384
        )
        planned = client.planner.plan(normalize_query(parse(SALES_WORKLOAD[0])))
        assert planned.candidates_tried >= 2

    def test_greedy_flag_disables_enumeration(self, small_db):
        flags = TechniqueFlags.execution_greedy()
        client = MonomiClient.setup(
            small_db,
            SALES_WORKLOAD,
            master_key=MASTER_KEY,
            paillier_bits=384,
            flags=flags,
            designer_mode="greedy",
            space_budget=None,
        )
        planned = client.planner.plan(normalize_query(parse(SALES_WORKLOAD[0])))
        assert planned.candidates_tried == 1

    def test_manual_design_is_usable(self, small_db):
        design = base_design_for_plain(small_db)
        design.add("orders", "o_custkey", Scheme.DET)
        client = MonomiClient.setup(
            small_db,
            SALES_WORKLOAD,
            master_key=MASTER_KEY,
            paillier_bits=384,
            design=design,
        )
        query = normalize_query(
            parse("SELECT COUNT(*) FROM orders WHERE o_custkey = 5")
        )
        outcome = client.execute(query)
        expected = Executor(small_db).execute(query)
        assert canonical(outcome.rows) == canonical(expected.rows)

    def test_design_without_schemes_forces_local_work(self, small_db):
        """With only fetch copies, filters run on the client but results
        stay correct."""
        design = base_design_for_plain(small_db)
        client = MonomiClient.setup(
            small_db,
            ["SELECT COUNT(*) FROM orders WHERE o_price > 100"],
            master_key=MASTER_KEY,
            paillier_bits=384,
            design=design,
        )
        query = normalize_query(parse("SELECT COUNT(*) FROM orders WHERE o_price > 100"))
        outcome = client.execute(query)
        expected = Executor(small_db).execute(query)
        assert canonical(outcome.rows) == canonical(expected.rows)
        # Nothing was filterable on the server: whole rows came back.
        assert outcome.ledger.transfer_bytes > 150 * 8


class TestLoader:
    def test_every_column_fetchable(self, small_db, provider):
        from repro.core import EncryptedLoader, complete_design

        design = complete_design(PhysicalDesign(), small_db)
        server = EncryptedLoader(small_db, provider).load(design)
        for name, table in small_db.tables.items():
            enc = server.table(name)
            assert enc.num_rows == table.num_rows

    def test_hom_group_materializes_file(self, small_db, provider):
        from repro.core import EncryptedLoader, HomGroup

        design = PhysicalDesign()
        design.add_hom_group(HomGroup("orders", ("o_price", "o_qty"), 8))
        server = EncryptedLoader(small_db, provider).load(design)
        names = server.ciphertext_store.names()
        assert len(names) == 1
        file = server.ciphertext_store.get(names[0])
        assert file.num_rows == small_db.table("orders").num_rows
        assert server.table("orders").schema.has_column("row_id")
