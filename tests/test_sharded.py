"""Sharded scatter-gather execution: N backends behind the single seam.

The contract under test everywhere: plaintext rows and ledger byte
counts are **shard-count-invariant** — a :class:`ShardedBackend` over N
stores is indistinguishable from one serial backend (N=1 ≡ serial
reference), in-process and over TCP, fault-free and with chaos armed on
a single shard.
"""

from __future__ import annotations

import os

import pytest

from repro.common.errors import ConfigError
from repro.core import MonomiClient
from repro.engine.schema import schema
from repro.server import (
    FaultInjectingBackend,
    ShardedBackend,
    make_backend,
    make_sharded_backend,
)
from repro.server.sharded import (
    ORDINAL_COLUMN,
    resolve_shards,
    route_hash,
)
from repro.sql import ast
from repro.testkit import MASTER_KEY, SALES_WORKLOAD, canonical

STREAMING = os.environ.get("MONOMI_STREAMING", "1") != "0"

CHAOS_SEEDS = (3, 11, 42)


# ---------------------------------------------------------------------------
# Backend-level harness: plain-value tables, sharded vs serial reference
# ---------------------------------------------------------------------------

ROWS = [
    # (k_det, v, label) — k has ties, None keys, and skew; v has Nones.
    (i % 7 if i % 11 else None, i * 3 if i % 5 else None, f"r{i}")
    for i in range(83)
]

SCHEMA = schema("t1", ("k_det", "any"), ("v", "any"), ("label", "text"))


def build_pair(kind: str, shards: int, rows=ROWS, shard_keys=None):
    """A sharded backend and its serial twin, loaded identically."""
    sharded = make_sharded_backend(
        kind, shards, name="sh", shard_keys=shard_keys
    )
    sharded.create_table(SCHEMA)
    sharded.insert_rows("t1", rows)
    serial = make_backend(kind, name="ref")
    serial.create_table(SCHEMA)
    serial.insert_rows("t1", rows)
    return sharded, serial


def assert_equivalent(sharded, serial, query, params=None):
    got = sharded.execute(query, params=params)
    want = serial.execute(query, params=params)
    assert got.columns == want.columns
    assert got.rows == want.rows
    assert sharded.last_stats.bytes_scanned == serial.last_stats.bytes_scanned
    assert sharded.last_stats.rows_output == serial.last_stats.rows_output
    return got


def col(name):
    return ast.Column(name)


def item(expr, alias=None):
    return ast.SelectItem(expr, alias)


SCAN = ast.Select(
    items=(item(col("k_det")), item(col("v")), item(col("label"))),
    from_items=(ast.TableName("t1"),),
)

FILTERED = ast.Select(
    items=(item(col("v")), item(col("label"))),
    from_items=(ast.TableName("t1"),),
    where=ast.BinOp(">", col("v"), ast.Literal(30)),
    limit=9,
)

ORDERED = ast.Select(
    items=(item(col("label")), item(col("v"))),
    from_items=(ast.TableName("t1"),),
    order_by=(
        ast.OrderItem(col("v"), False),  # Descending: NULLs first.
        ast.OrderItem(col("k_det")),  # Ascending: NULLs last; many ties.
    ),
    limit=17,
)

GROUPED = ast.Select(
    items=(
        item(col("k_det"), "k"),
        item(ast.FuncCall("count", star=True), "n"),
        item(ast.FuncCall("sum", (col("v"),)), "s"),
        item(ast.FuncCall("avg", (col("v"),)), "a"),
        item(ast.FuncCall("min", (col("v"),)), "lo"),
        item(ast.FuncCall("max", (col("v"),)), "hi"),
        item(ast.FuncCall("grp", (col("label"),)), "g"),
        item(ast.FuncCall("count", (col("v"),), distinct=True), "nd"),
    ),
    from_items=(ast.TableName("t1"),),
    group_by=(col("k_det"),),
    having=ast.BinOp(">", ast.FuncCall("count", star=True), ast.Literal(3)),
    order_by=(ast.OrderItem(col("s"), False),),
    limit=5,
)

UNGROUPED = ast.Select(
    items=(
        item(ast.FuncCall("count", star=True), "n"),
        item(ast.FuncCall("sum", (col("v"),)), "s"),
        item(ast.FuncCall("grp", (col("k_det"),)), "g"),
    ),
    from_items=(ast.TableName("t1"),),
)

DISTINCT = ast.Select(
    items=(item(col("k_det")),),
    from_items=(ast.TableName("t1"),),
    distinct=True,
    order_by=(ast.OrderItem(col("k_det")),),
)

ALL_QUERIES = (SCAN, FILTERED, ORDERED, GROUPED, UNGROUPED, DISTINCT)


class TestBackendEquivalence:
    @pytest.mark.parametrize("kind", ["memory", "sqlite"])
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_all_modes_match_serial(self, kind, shards):
        sharded, serial = build_pair(kind, shards)
        for query in ALL_QUERIES:
            assert_equivalent(sharded, serial, query)
        sharded.close()

    def test_scan_preserves_insertion_order(self):
        sharded, serial = build_pair("memory", 3)
        assert sharded.execute(SCAN).rows == [r for r in ROWS]

    def test_ordinal_routing_without_det_column(self):
        plain_schema = schema("t1", ("a", "any"), ("b", "any"), ("label", "text"))
        sharded = make_sharded_backend("memory", 3, name="ord")
        sharded.create_table(plain_schema)
        rows = [(r[0], r[1], r[2]) for r in ROWS]
        sharded.insert_rows("t1", rows)
        scan = ast.Select(
            items=(item(col("a")), item(col("b")), item(col("label"))),
            from_items=(ast.TableName("t1"),),
        )
        assert sharded.execute(scan).rows == rows
        # Round-robin actually spread the rows.
        counts = [s.row_count("t1") for s in sharded.shards]
        assert all(c > 0 for c in counts)

    def test_det_key_routing_colocates_equal_keys(self):
        sharded, _ = build_pair("memory", 4)
        # Every row with the same k_det lives on exactly one shard.
        probe = ast.Select(
            items=(item(col("k_det")),), from_items=(ast.TableName("t1"),)
        )
        homes: dict[object, set[int]] = {}
        for index, shard in enumerate(sharded.shards):
            for (k,) in shard.execute(probe).rows:
                homes.setdefault(k, set()).add(index)
        assert all(len(where) == 1 for where in homes.values())

    def test_group_keys_merge_exactly_across_shards(self):
        # DET group keys split across shards re-merge to the serial
        # grouping: same groups, same first-encounter order.
        sharded, serial = build_pair("memory", 3)
        no_order = ast.Select(
            items=(
                item(col("k_det"), "k"),
                item(ast.FuncCall("count", star=True), "n"),
            ),
            from_items=(ast.TableName("t1"),),
            group_by=(col("k_det"),),
        )
        assert_equivalent(sharded, serial, no_order)

    def test_general_gather_join_and_subquery(self):
        sharded, serial = build_pair("memory", 3)
        other = schema("t2", ("k_det", "any"), ("w", "any"))
        extra = [(i % 7, i * 100) for i in range(7)]
        for backend in (sharded, serial):
            backend.create_table(other)
            backend.insert_rows("t2", extra)
        join = ast.Select(
            items=(item(col("label")), item(col("w"))),
            from_items=(
                ast.Join(
                    ast.TableName("t1"),
                    ast.TableName("t2"),
                    "inner",
                    ast.BinOp(
                        "=", ast.Column("k_det", "t1"), ast.Column("k_det", "t2")
                    ),
                ),
            ),
            order_by=(ast.OrderItem(col("label")),),
            limit=25,
        )
        assert_equivalent(sharded, serial, join)
        sub = ast.Select(
            items=(item(col("label")),),
            from_items=(ast.TableName("t1"),),
            where=ast.InSubquery(
                col("k_det"),
                ast.Select(
                    items=(item(col("k_det")),),
                    from_items=(ast.TableName("t2"),),
                    where=ast.BinOp(">", col("w"), ast.Literal(300)),
                ),
            ),
        )
        assert_equivalent(sharded, serial, sub)

    def test_replicated_table_stays_on_coordinator(self):
        sharded, serial = build_pair(
            "memory", 3, shard_keys={"t2": None}
        )
        other = schema("t2", ("k_det", "any"), ("w", "any"))
        extra = [(i % 7, i * 100) for i in range(7)]
        for backend in (sharded, serial):
            backend.create_table(other)
            backend.insert_rows("t2", extra)
        assert not any(s.has_table("t2") for s in sharded.shards)
        small_scan = ast.Select(
            items=(item(col("w")),), from_items=(ast.TableName("t2"),)
        )
        assert_equivalent(sharded, serial, small_scan)
        assert sharded.table_bytes("t2") == serial.table_bytes("t2")

    def test_explicit_shard_key_override(self):
        keyed = make_sharded_backend(
            "memory", 3, name="keyed", shard_keys={"t1": "label"}
        )
        keyed.create_table(SCHEMA)
        keyed.insert_rows("t1", ROWS)
        assert keyed.execute(SCAN).rows == ROWS
        with pytest.raises(ConfigError):
            bad = make_sharded_backend(
                "memory", 2, name="bad", shard_keys={"t1": "nope"}
            )
            bad.create_table(SCHEMA)

    def test_params_reach_the_shards(self):
        sharded, serial = build_pair("memory", 2)
        query = ast.Select(
            items=(item(col("label")),),
            from_items=(ast.TableName("t1"),),
            where=ast.BinOp(">", col("v"), ast.Param("lo")),
        )
        assert_equivalent(sharded, serial, query, params={"lo": 120})

    def test_empty_table_identity_rows(self):
        sharded = make_sharded_backend("memory", 3, name="empty")
        sharded.create_table(SCHEMA)
        serial = make_backend("memory", name="empty_ref")
        serial.create_table(SCHEMA)
        for query in ALL_QUERIES:
            assert_equivalent(sharded, serial, query)

    def test_table_bytes_shard_count_invariant(self):
        reference = None
        for shards in (1, 2, 3, 8):
            backend, _ = build_pair("memory", shards)
            current = backend.table_bytes("t1")
            assert reference is None or current == reference
            reference = current
            assert backend.row_count("t1") == len(ROWS)

    def test_hidden_ordinal_never_leaks(self):
        sharded, _ = build_pair("memory", 2)
        result = sharded.execute(SCAN)
        assert ORDINAL_COLUMN not in result.columns
        assert all(len(row) == 3 for row in result.rows)


class TestStreaming:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_stream_matches_serial_blocks(self, shards):
        sharded, serial = build_pair("memory", shards)
        for query in (SCAN, FILTERED, ORDERED):
            got = sharded.execute_stream(query, block_rows=8)
            want = serial.execute_stream(query, block_rows=8)
            got_blocks = [block.rows() for block in got]
            want_blocks = [block.rows() for block in want]
            assert got_blocks == want_blocks  # Boundaries, not just rows.
            assert got.stats.bytes_scanned == want.stats.bytes_scanned
            assert got.stats.rows_output == want.stats.rows_output

    def test_blocking_query_with_partitions_degrades_serially(self):
        # The native-backend contract: a partitioned stream request on a
        # non-streamable shape materializes instead of raising.
        sharded, serial = build_pair("memory", 2)
        got = sharded.execute_stream(GROUPED, block_rows=4, partitions=4)
        rows = [row for block in got for row in block.rows()]
        assert rows == serial.execute(GROUPED).rows

    def test_early_close_releases_producers(self):
        sharded, _ = build_pair("memory", 3)
        stream = sharded.execute_stream(SCAN, block_rows=4)
        first = next(iter(stream))
        assert first.num_rows == 4
        stream.close()  # Must not hang on the producer queues.


class TestChaosOneShard:
    """Faults injected on a single shard retry per the transient taxonomy
    without disturbing the others — results stay byte-identical."""

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_execute_under_single_shard_chaos(self, seed):
        sharded, serial = build_pair("memory", 3)
        chaotic = FaultInjectingBackend(sharded.shards[0], seed, 0.2)
        wrapped = sharded.with_shards(
            [chaotic, sharded.shards[1], sharded.shards[2]]
        )
        for _ in range(4):  # Enough volume for the schedule to fire.
            for query in ALL_QUERIES:
                assert_equivalent(wrapped, serial, query)
        stats = chaotic.stats()
        assert stats["draws"] > 0
        assert stats["injected_errors"] + stats["truncations"] > 0

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_stream_under_single_shard_chaos(self, seed):
        sharded, serial = build_pair("memory", 3)
        chaotic = FaultInjectingBackend(sharded.shards[1], seed, 0.2)
        wrapped = sharded.with_shards(
            [sharded.shards[0], chaotic, sharded.shards[2]]
        )
        want = serial.execute(ORDERED).rows
        for _ in range(6):
            stream = wrapped.execute_stream(ORDERED, block_rows=4)
            assert [row for b in stream for row in b.rows()] == want
        assert chaotic.stats()["draws"] > 0

    def test_insert_retries_through_shard_faults(self):
        sharded = make_sharded_backend("memory", 2, name="chaotic_load")
        chaotic = FaultInjectingBackend(sharded.shards[0], 11, 0.3)
        wrapped = sharded.with_shards([chaotic, sharded.shards[1]])
        wrapped.create_table(SCHEMA)
        wrapped.insert_rows("t1", ROWS)
        assert wrapped.execute(SCAN).rows == ROWS
        assert chaotic.stats()["draws"] > 0


class TestTopology:
    def test_with_shards_count_mismatch_raises(self):
        sharded, _ = build_pair("memory", 3)
        with pytest.raises(ConfigError):
            sharded.with_shards(sharded.shards[:2])

    def test_adopt_table_recovers_accounting(self):
        sharded, _ = build_pair("memory", 3)
        resumed = ShardedBackend(sharded.shards, name="resumed")
        resumed.adopt_table(SCHEMA)
        assert resumed.row_count("t1") == sharded.row_count("t1")
        assert resumed.table_bytes("t1") == sharded.table_bytes("t1")
        assert resumed.execute(SCAN).rows == sharded.execute(SCAN).rows
        # Ordinal watermark continues past the adopted rows.
        resumed.insert_rows("t1", [(99, 1, "tail")])
        assert resumed.execute(SCAN).rows[-1] == (99, 1, "tail")

    def test_resolve_shards_env(self, monkeypatch):
        monkeypatch.delenv("MONOMI_SHARDS", raising=False)
        assert resolve_shards(None) == 1
        monkeypatch.setenv("MONOMI_SHARDS", "4")
        assert resolve_shards(None) == 4
        assert resolve_shards(2) == 2  # Explicit beats env.
        monkeypatch.setenv("MONOMI_SHARDS", "zero")
        with pytest.raises(ConfigError):
            resolve_shards(None)

    def test_route_hash_is_process_stable(self):
        # Routing must not depend on Python's salted hash().
        assert route_hash(42) == route_hash(42)
        assert route_hash(b"\x01\x02") == route_hash(b"\x01\x02")
        values = [route_hash(v) % 4 for v in range(64)]
        assert len(set(values)) > 1  # Actually spreads.


# ---------------------------------------------------------------------------
# Client-level: the full encrypted pipeline, shard-count-invariant
# ---------------------------------------------------------------------------


def ledger_key(ledger):
    return (
        ledger.transfer_bytes,
        ledger.server_bytes_scanned,
        ledger.round_trips,
    )


@pytest.fixture(scope="module", params=[2, 3])
def sharded_sales_client(request, sales_db, provider, sales_client):
    """The conftest sales client's sharded twin: same design, same key
    chain, N shards — so rows and ledgers must match byte-for-byte."""
    return MonomiClient.setup(
        sales_db,
        SALES_WORKLOAD,
        master_key=MASTER_KEY,
        paillier_bits=384,
        space_budget=2.5,
        provider=provider,
        design=sales_client.design,
        streaming=STREAMING,
        shards=request.param,
    )


class TestClientEquivalence:
    def test_backend_is_sharded(self, sharded_sales_client):
        backend = sharded_sales_client.backend
        while hasattr(backend, "_parent"):  # Unwrap chaos, if armed.
            backend = backend._parent
        assert isinstance(backend, ShardedBackend)

    def test_sales_workload_rows_and_ledgers(
        self, sharded_sales_client, sales_client
    ):
        for query in SALES_WORKLOAD:
            want = sales_client.execute(query)
            got = sharded_sales_client.execute(query)
            assert canonical(got.rows) == canonical(want.rows)
            assert got.rows == want.rows
            assert ledger_key(got.ledger) == ledger_key(want.ledger)

    def test_execute_iter_streams_through_shards(
        self, sharded_sales_client, sales_client
    ):
        for query in SALES_WORKLOAD[:3]:
            rows = []
            for block in sharded_sales_client.execute_iter(query):
                rows.extend(block.rows())
            assert rows == sales_client.execute(query).rows

    def test_sqlite_sharded_client(self, sales_db, provider, sales_client):
        client = MonomiClient.setup(
            sales_db,
            SALES_WORKLOAD,
            master_key=MASTER_KEY,
            paillier_bits=384,
            space_budget=2.5,
            provider=provider,
            design=sales_client.design,
            backend="sqlite",
            streaming=STREAMING,
            shards=2,
        )
        try:
            for query in SALES_WORKLOAD:
                want = sales_client.execute(query)
                got = client.execute(query)
                assert got.rows == want.rows
                assert ledger_key(got.ledger) == ledger_key(want.ledger)
        finally:
            client.close()

    def test_setup_reads_shards_env(
        self, monkeypatch, sales_db, provider, sales_client
    ):
        monkeypatch.setenv("MONOMI_SHARDS", "2")
        client = MonomiClient.setup(
            sales_db,
            SALES_WORKLOAD,
            master_key=MASTER_KEY,
            paillier_bits=384,
            space_budget=2.5,
            provider=provider,
            design=sales_client.design,
            streaming=STREAMING,
        )
        backend = client.backend
        while hasattr(backend, "_parent"):
            backend = backend._parent
        assert isinstance(backend, ShardedBackend)
        assert len(backend.shards) == 2
        query = SALES_WORKLOAD[0]
        assert client.execute(query).rows == sales_client.execute(query).rows


# ---------------------------------------------------------------------------
# Over the network: N TCP shard servers (selected by `-k network`)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def network_shard_cluster(sharded_sales_client):
    from repro.net.sharded import serve_shards

    backend = sharded_sales_client.backend
    while hasattr(backend, "_parent"):
        backend = backend._parent
    with serve_shards(backend) as cluster:
        yield cluster


class TestNetworkShards:
    def test_network_cluster_addresses(self, network_shard_cluster):
        addresses = network_shard_cluster.addresses
        assert len(addresses) == len(set(addresses)) >= 2

    def test_network_rows_and_ledgers_match_in_process(
        self, network_shard_cluster, sharded_sales_client, sales_client, sales_db
    ):
        remote = MonomiClient(
            sales_db,
            sharded_sales_client.design,
            sharded_sales_client.provider,
            network_shard_cluster.backend,
            sharded_sales_client.flags,
            sharded_sales_client.network,
            sharded_sales_client.disk,
            streaming=STREAMING,
        )
        for query in SALES_WORKLOAD:
            want = sales_client.execute(query)
            got = remote.execute(query)
            assert got.rows == want.rows
            assert ledger_key(got.ledger) == ledger_key(want.ledger)

    def test_network_streaming_through_shard_sockets(
        self, network_shard_cluster, sharded_sales_client, sales_client, sales_db
    ):
        remote = MonomiClient(
            sales_db,
            sharded_sales_client.design,
            sharded_sales_client.provider,
            network_shard_cluster.backend,
            sharded_sales_client.flags,
            sharded_sales_client.network,
            sharded_sales_client.disk,
            streaming=True,
        )
        for query in SALES_WORKLOAD[:3]:
            rows = []
            for block in remote.execute_iter(query):
                rows.extend(block.rows())
            assert rows == sales_client.execute(query).rows
