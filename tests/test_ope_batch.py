"""Batch-vs-scalar equivalence for the shared-tree OPE and FFX paths.

The batch APIs (PR 8) must be *observationally identical* to the scalar
ones: same ciphertexts, same plaintexts, same errors — cold or warm
cache, serial or sharded across worker processes, single- or
multi-threaded.  Hypothesis drives the value shapes (duplicates,
clustering, Nones, ordering) that the shared descent partitions on.
"""

from __future__ import annotations

import concurrent.futures
import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CryptoError
from repro.common.lru import LRUCache
from repro.core.encdata import CryptoProvider
from repro.crypto.ffx import FFXInteger
from repro.crypto.ope import OpeCipher

KEY = b"ope-batch-key-01"


@pytest.fixture(scope="module")
def provider():
    return CryptoProvider(KEY, paillier_bits=256, workers=1)


# -- OpeCipher ----------------------------------------------------------------


class TestOpeCipherBatch:
    @pytest.fixture(scope="class")
    def cipher(self):
        return OpeCipher(KEY, -5000, 5000, expansion_bits=12)

    @given(
        st.lists(
            st.one_of(st.none(), st.integers(min_value=-5000, max_value=5000)),
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_encrypt_batch_matches_scalar(self, cipher, values):
        batch = cipher.encrypt_batch(values)
        scalar = [None if v is None else cipher.encrypt(v) for v in values]
        assert batch == scalar

    @given(
        st.lists(
            st.one_of(st.none(), st.integers(min_value=-5000, max_value=5000)),
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_decrypt_batch_roundtrip(self, cipher, values):
        cts = cipher.encrypt_batch(values)
        assert cipher.decrypt_batch(cts) == values

    def test_order_and_dedup_invariance(self, cipher):
        values = [7, -3, 7, 7, 0, 4999, -5000, -3]
        by_batch = dict(zip(values, cipher.encrypt_batch(values)))
        for perm in ([4999, 7, -3], [-5000, -3, 0], list(reversed(values))):
            assert cipher.encrypt_batch(perm) == [by_batch[v] for v in perm]

    def test_cold_and_warm_cache_identical(self):
        a = OpeCipher(KEY, 0, 10_000, expansion_bits=10)
        values = [i * 37 % 10_000 for i in range(400)]
        warm = a.encrypt_batch(values)
        warm_again = a.encrypt_batch(values)  # All-hit pass.
        a.clear_pivot_cache()
        cold = a.encrypt_batch(values)
        assert warm == warm_again == cold
        b = OpeCipher(KEY, 0, 10_000, expansion_bits=10, pivot_cache_size=0)
        assert b.encrypt_batch(values) == warm

    def test_invalid_ciphertext_raises_in_batch(self, cipher):
        good = cipher.encrypt_batch([1, 2, 3])
        bad = next(
            c
            for c in range(max(good) + 1, max(good) + 50_000)
            if c not in set(good)
        )
        with pytest.raises(CryptoError):
            cipher.decrypt_batch(good + [bad])
        with pytest.raises(CryptoError):
            cipher.decrypt_batch([-1])

    def test_empty_and_all_none(self, cipher):
        assert cipher.encrypt_batch([]) == []
        assert cipher.encrypt_batch([None, None]) == [None, None]
        assert cipher.decrypt_batch([None]) == [None]

    def test_pivot_cache_counters_move(self):
        cipher = OpeCipher(KEY, 0, 1 << 20, expansion_bits=8)
        values = list(range(0, 4096, 4))
        cipher.encrypt_batch(values)
        after_encrypt = cipher.cache_stats()
        assert after_encrypt.misses > 0
        assert after_encrypt.entries <= after_encrypt.capacity
        cipher.encrypt_batch(values)
        after_repeat = cipher.cache_stats()
        assert after_repeat.hits > after_encrypt.hits

    def test_cache_disabled_reports_zeros(self):
        cipher = OpeCipher(KEY, 0, 100, expansion_bits=8, pivot_cache_size=0)
        cipher.encrypt_batch([1, 2, 3])
        stats = cipher.cache_stats()
        assert (stats.hits, stats.misses, stats.capacity) == (0, 0, 0)


# -- FFXInteger ---------------------------------------------------------------


class TestFFXBatch:
    @pytest.fixture(scope="class")
    def ffx(self):
        return FFXInteger(KEY, -1000, 900)

    @given(
        st.lists(
            st.one_of(st.none(), st.integers(min_value=-1000, max_value=900)),
            max_size=80,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_matches_scalar(self, ffx, values):
        batch = ffx.encrypt_batch(values)
        scalar = [None if v is None else ffx.encrypt(v) for v in values]
        assert batch == scalar
        assert ffx.decrypt_batch(batch) == values

    def test_dedup_and_order(self, ffx):
        values = [5, 5, -1000, 900, 5, 0]
        cts = ffx.encrypt_batch(values)
        assert cts[0] == cts[1] == cts[4]
        assert ffx.encrypt_batch(list(reversed(values))) == list(reversed(cts))

    def test_domain_error_in_batch(self, ffx):
        with pytest.raises(Exception):
            ffx.encrypt_batch([0, 901])


# -- CryptoProvider integration ----------------------------------------------


def _columns():
    ints = [i * 7919 % 1009 - 500 for i in range(300)] + [None, 0, 0]
    dates = [
        datetime.date(1995, 1, 1) + datetime.timedelta(days=i * 13 % 900)
        for i in range(120)
    ] + [None]
    texts = [f"sku-{i % 41:04d}" for i in range(200)] + [None, "", "x" * 40]
    return ints, dates, texts


class TestProviderBatchEquivalence:
    def test_ope_batch_matches_scalar(self, provider):
        fresh = CryptoProvider(KEY, paillier_bits=256, workers=1)
        ints, dates, texts = _columns()
        for col, sql_type in ((ints, "int"), (dates, "date"), (texts, "text")):
            batch = provider.ope_encrypt_batch(col)
            scalar = [fresh.ope_encrypt(v) for v in col]
            assert batch == scalar
            assert provider.ope_decrypt_batch(batch, sql_type) == [
                fresh.ope_decrypt(c, sql_type) for c in batch
            ]

    def test_det_batch_matches_scalar(self, provider):
        fresh = CryptoProvider(KEY, paillier_bits=256, workers=1)
        ints, dates, texts = _columns()
        for col, sql_type in ((ints, "int"), (dates, "date"), (texts, "text")):
            batch = provider.det_encrypt_batch(col)
            scalar = [fresh.det_encrypt(v) for v in col]
            assert batch == scalar
            assert provider.det_decrypt_batch(batch, sql_type) == col

    def test_cold_warm_identity_through_provider(self, provider):
        ints, _, _ = _columns()
        warm_cts = provider.ope_encrypt_batch(ints)
        warm_plain = provider.ope_decrypt_batch(warm_cts, "int")
        provider.reset_crypto_caches()
        cold_cts = provider.ope_encrypt_batch(ints)
        cold_plain = provider.ope_decrypt_batch(cold_cts, "int")
        assert warm_cts == cold_cts
        assert warm_plain == cold_plain == ints

    def test_invalid_ope_ciphertext_raises_through_provider(self, provider):
        cts = provider.ope_encrypt_batch([1, 2, 3])
        with pytest.raises(CryptoError):
            provider.ope_decrypt_batch([-1] + cts, "int")

    def test_cache_stats_shape_and_counters(self):
        prov = CryptoProvider(KEY, paillier_bits=256, workers=1)
        ints, _, _ = _columns()
        prov.ope_encrypt_batch(ints)
        prov.det_encrypt_batch(ints)
        stats = prov.cache_stats()
        assert set(stats) == {
            "det_encrypt",
            "ope_encrypt",
            "ope_decrypt",
            "ope_pivots_int",
            "ope_pivots_date",
            "ope_pivots_text",
        }
        assert stats["ope_encrypt"].misses > 0
        assert stats["det_encrypt"].misses > 0
        assert stats["ope_pivots_int"].misses > 0
        # Duplicates in the column hit the value cache, not the pivot cache.
        prov.ope_encrypt_batch(ints)
        assert prov.cache_stats()["ope_encrypt"].hits > 0

    def test_worker_pool_equivalence(self):
        serial = CryptoProvider(KEY, paillier_bits=256, workers=1)
        pooled = CryptoProvider(KEY, paillier_bits=256, workers=2)
        pooled.parallel_min_batch = 32  # Force pool traffic on a small batch.
        try:
            ints, dates, texts = _columns()
            for col, sql_type in (
                (ints, "int"),
                (dates, "date"),
                (texts, "text"),
            ):
                enc_pool = pooled.ope_encrypt_batch(col)
                assert enc_pool == serial.ope_encrypt_batch(col)
                assert pooled.ope_decrypt_batch(
                    enc_pool, sql_type
                ) == serial.ope_decrypt_batch(enc_pool, sql_type)
                det_pool = pooled.det_encrypt_batch(col)
                assert det_pool == serial.det_encrypt_batch(col)
                assert pooled.det_decrypt_batch(det_pool, sql_type) == col
        finally:
            pooled.close()

    def test_threaded_batches_on_shared_provider(self):
        prov = CryptoProvider(KEY, paillier_bits=256, workers=1)
        ints, _, _ = _columns()
        expected_cts = prov.ope_encrypt_batch(ints)
        prov.reset_crypto_caches()

        def roundtrip(_):
            cts = prov.ope_encrypt_batch(ints)
            return cts, prov.ope_decrypt_batch(cts, "int")

        with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
            for cts, plain in pool.map(roundtrip, range(8)):
                assert cts == expected_cts
                assert plain == ints


# -- LRU cache ----------------------------------------------------------------


class TestLRUCacheStats:
    def test_counters(self):
        cache = LRUCache(2)
        assert cache.get("a") is None
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        cache.put("c", 3)  # Evicts "b" (LRU).
        stats = cache.stats()
        assert stats.misses == 1
        assert stats.hits == 1
        assert stats.evictions == 1
        assert stats.entries == 2
        assert stats.capacity == 2
        assert cache.get("b") is None

    def test_clear_keeps_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_hit_rate(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        assert cache.stats().hit_rate == 0.5
