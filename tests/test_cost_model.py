"""Cost model, ledger, and selectivity estimation tests."""

from __future__ import annotations


import pytest

from repro.testkit import MASTER_KEY, build_sales_db
from repro.common.ledger import CostLedger, DiskModel, NetworkModel
from repro.core import CryptoProvider, normalize_query
from repro.core.cost import DecryptionProfiler, MonomiCostModel
from repro.core.rewrite import BindingContext
from repro.core.selest import SelectivityEstimator
from repro.engine.cost import CostEstimator, estimate_hom_ciphertexts
from repro.sql import parse, parse_expression


class TestLedger:
    def test_network_model(self):
        network = NetworkModel(bandwidth_bits_per_sec=10_000_000, latency_seconds=0.02)
        # 1.25 MB at 10 Mbit/s = 1 second + latency.
        assert network.transfer_seconds(1_250_000) == pytest.approx(1.02)

    def test_disk_model(self):
        disk = DiskModel(read_bytes_per_sec=300_000_000)
        assert disk.read_seconds(300_000_000) == pytest.approx(1.0)

    def test_ledger_totals(self):
        ledger = CostLedger()
        ledger.server_seconds = 1.0
        ledger.client_seconds = 0.5
        ledger.add_transfer(1_250_000, NetworkModel(latency_seconds=0.0))
        assert ledger.total_seconds == pytest.approx(2.5)
        assert ledger.transfer_bytes == 1_250_000

    def test_ledger_merge(self):
        a, b = CostLedger(), CostLedger()
        a.server_seconds = 1.0
        b.client_seconds = 2.0
        a.merge(b)
        assert a.total_seconds == pytest.approx(3.0)

    def test_timing_contexts(self):
        ledger = CostLedger()
        with ledger.timing_server():
            pass
        with ledger.timing_client():
            pass
        assert ledger.server_seconds >= 0 and ledger.client_seconds >= 0


class TestHomCiphertextEstimate:
    def test_per_row_is_one(self):
        assert estimate_hom_ciphertexts(1, group_size=1000, group_count=50) == 1.0

    def test_grouped_columnar_is_expensive(self):
        grouped = estimate_hom_ciphertexts(4, group_size=1000, group_count=6, selectivity=1.0)
        assert grouped > 500  # ~one partial per row.

    def test_full_scan_single_group_is_cheap(self):
        full = estimate_hom_ciphertexts(8, group_size=10_000, group_count=1, selectivity=1.0)
        assert full < 10  # Near-total coverage folds into the product.

    def test_selective_scan_degrades(self):
        selective = estimate_hom_ciphertexts(8, 500, 1, selectivity=0.05)
        assert selective > 400


class TestSelectivityEstimator:
    @pytest.fixture(scope="class")
    def estimator(self):
        db = build_sales_db(num_orders=200, seed=2)
        schemas = {name: t.schema for name, t in db.tables.items()}
        bindings = BindingContext(
            {"orders": "orders", "customer": "customer"}, schemas
        )
        return SelectivityEstimator(db, bindings)

    def test_range_interpolation(self, estimator):
        low = estimator.conjunct(parse_expression("o_price > 4900"))
        high = estimator.conjunct(parse_expression("o_price > 100"))
        assert low < 0.1 < high

    def test_date_range(self, estimator):
        sel = estimator.conjunct(
            parse_expression("o_date >= DATE '1995-01-01'")
        )
        assert 0.8 < sel <= 1.0

    def test_equality_uses_ndv(self, estimator):
        sel = estimator.conjunct(parse_expression("o_status = 'OPEN'"))
        assert 0.2 < sel < 0.5  # Three statuses.

    def test_join_selectivity(self, estimator):
        sel = estimator.conjunct(parse_expression("o_custkey = c_custkey"))
        assert sel == pytest.approx(1.0 / 30, rel=0.2)

    def test_and_composes(self, estimator):
        a = estimator.conjunct(parse_expression("o_price > 2500"))
        b = estimator.conjunct(parse_expression("o_qty > 25"))
        both = estimator.conjunct(parse_expression("o_price > 2500 AND o_qty > 25"))
        assert both == pytest.approx(a * b)

    def test_between(self, estimator):
        sel = estimator.conjunct(parse_expression("o_discount BETWEEN 0 AND 10"))
        assert sel > 0.9


class TestDecryptionProfiler:
    def test_profiles_are_positive_and_ordered(self):
        provider = CryptoProvider(MASTER_KEY, paillier_bits=384)
        profile = DecryptionProfiler.profile(provider)
        assert profile.det_int > 0
        assert profile.paillier > profile.hom_multiply
        # OPE decryption is the slow one (tree walk per value).
        assert profile.ope > profile.det_int

    def test_profile_cached(self):
        provider = CryptoProvider(MASTER_KEY, paillier_bits=384)
        assert DecryptionProfiler.profile(provider) is DecryptionProfiler.profile(provider)


class TestCostEstimator:
    @pytest.fixture(scope="class")
    def db(self):
        return build_sales_db(num_orders=200, seed=4)

    def test_bigger_tables_cost_more(self, db):
        estimator = CostEstimator(db)
        small = estimator.estimate(parse("SELECT c_name FROM customer"))
        big = estimator.estimate(
            parse("SELECT o_orderkey FROM orders")
        )
        assert big.cost_units > small.cost_units

    def test_table_bytes_override_scales_cost(self, db):
        plain = CostEstimator(db).estimate(parse("SELECT o_orderkey FROM orders"))
        doubled = CostEstimator(
            db, table_bytes_override={"orders": db.table("orders").total_bytes * 10}
        ).estimate(parse("SELECT o_orderkey FROM orders"))
        assert doubled.cost_units > plain.cost_units

    def test_selectivity_override(self, db):
        estimator = CostEstimator(db)
        query = parse("SELECT o_orderkey FROM orders WHERE o_price > 100")
        default = estimator.estimate(query)
        overridden = estimator.estimate(query, selectivity_override=0.01)
        assert overridden.rows < default.rows

    def test_group_estimate(self, db):
        estimator = CostEstimator(db)
        grouped = estimator.estimate(
            parse("SELECT o_custkey, SUM(o_price) FROM orders GROUP BY o_custkey")
        )
        assert 1 <= grouped.rows <= 100
        assert grouped.group_size > 1

    def test_plan_cost_components(self, db):
        provider = CryptoProvider(MASTER_KEY, paillier_bits=384)
        model = MonomiCostModel(db, provider)
        from repro.core import Scheme, generate_query_plan
        from repro.core.candidates import base_design_for_plain

        design = base_design_for_plain(db)
        design.add("orders", "o_custkey", Scheme.DET)
        schemas = {name: t.schema for name, t in db.tables.items()}
        plan = generate_query_plan(
            normalize_query(parse("SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey")),
            design,
            schemas,
            provider,
        )
        cost = model.plan_cost(plan)
        assert cost.server_seconds > 0
        assert cost.transfer_seconds > 0
        assert cost.total_seconds == pytest.approx(
            cost.server_seconds + cost.transfer_seconds + cost.client_seconds
        )
