"""Shared fixtures: a small sales database and a loaded MONOMI client.

Expensive artifacts (Paillier keys, encrypted loads, TPC-H generation) are
session-scoped; tests must not mutate them.  The data builders and
comparison helpers live in :mod:`repro.testkit` so the benchmark harness
can share them without cross-conftest imports.
"""

from __future__ import annotations

import os

import pytest

from repro.core import CryptoProvider, MonomiClient
from repro.engine import Database, Executor
from repro.testkit import MASTER_KEY, SALES_WORKLOAD, build_sales_db

#: CI runs the suite twice: MONOMI_STREAMING=1 (default — clients drain the
#: RowBlock streaming pipeline) and MONOMI_STREAMING=0 (the materializing
#: reference path).  Both must pass identically.
STREAMING = os.environ.get("MONOMI_STREAMING", "1") != "0"


@pytest.fixture(scope="session")
def sales_db() -> Database:
    return build_sales_db()


@pytest.fixture(scope="session")
def provider() -> CryptoProvider:
    return CryptoProvider(MASTER_KEY, paillier_bits=384)


@pytest.fixture(scope="session")
def sales_client(sales_db, provider) -> MonomiClient:
    return MonomiClient.setup(
        sales_db,
        SALES_WORKLOAD,
        master_key=MASTER_KEY,
        paillier_bits=384,
        space_budget=2.5,
        provider=provider,
        streaming=STREAMING,
    )


@pytest.fixture(scope="session")
def sales_client_sqlite(sales_db, provider, sales_client) -> MonomiClient:
    """Same design and key chain as ``sales_client``, but the untrusted
    server is a real SQLite database.  Sharing the provider keeps the
    launch-time decryption profile (and hence plan choice) identical, so
    ledgers are comparable byte-for-byte across backends."""
    return MonomiClient.setup(
        sales_db,
        SALES_WORKLOAD,
        master_key=MASTER_KEY,
        paillier_bits=384,
        space_budget=2.5,
        provider=provider,
        design=sales_client.design,
        backend="sqlite",
        streaming=STREAMING,
    )


@pytest.fixture(params=["memory", "sqlite"])
def each_backend_client(request, sales_client, sales_client_sqlite) -> MonomiClient:
    """Parametrizes a test over both untrusted-server backends."""
    if request.param == "memory":
        return sales_client
    return sales_client_sqlite


@pytest.fixture(scope="session")
def plain_executor(sales_db) -> Executor:
    return Executor(sales_db)


@pytest.fixture(scope="session")
def sales_server(sales_client):
    """A live TCP loopback server hosting ``sales_client``'s backend.

    The in-process client and the network client below share one
    encrypted database, so rows *and* ledger byte counts must be
    byte-identical between them — that is the invariant most of the
    network suite asserts.
    """
    from repro.net import MonomiServer

    with MonomiServer(sales_client.backend) as server:
        yield server


@pytest.fixture(scope="session")
def sales_client_remote(sales_db, provider, sales_client, sales_server):
    """``sales_client``'s twin, across the wire: same design, same
    provider (hence the same key chain and plan choices), but every
    server request crosses a real TCP socket."""
    client = MonomiClient.connect(
        sales_server.address,
        sales_db,
        design=sales_client.design,
        provider=provider,
        streaming=STREAMING,
    )
    yield client
    client.close()
