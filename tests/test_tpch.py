"""TPC-H substrate tests: generator invariants, query texts, and a
plaintext-vs-encrypted equivalence spot check at a tiny scale."""

from __future__ import annotations


import pytest

from repro.testkit import MASTER_KEY, canonical
from repro.core import MonomiClient, normalize_query
from repro.engine import Executor
from repro.sql import parse
from repro.tpch import generate, supported_numbers, tpch_queries

SCALE = 0.0003


@pytest.fixture(scope="module")
def tpch_db():
    return generate(scale=SCALE, seed=5)


class TestDbgen:
    def test_deterministic(self):
        a = generate(scale=0.0002, seed=9)
        b = generate(scale=0.0002, seed=9)
        assert a.table("lineitem").rows == b.table("lineitem").rows

    def test_cardinalities(self, tpch_db):
        assert tpch_db.table("region").num_rows == 5
        assert tpch_db.table("nation").num_rows == 25
        assert tpch_db.table("lineitem").num_rows > tpch_db.table("orders").num_rows

    def test_date_chain_invariants(self, tpch_db):
        schema = tpch_db.table("lineitem").schema
        ship = schema.column_index("l_shipdate")
        receipt = schema.column_index("l_receiptdate")
        for row in tpch_db.table("lineitem").rows[:500]:
            assert row[receipt] > row[ship]

    def test_foreign_keys_resolve(self, tpch_db):
        customers = {r[0] for r in tpch_db.table("customer").rows}
        for row in tpch_db.table("orders").rows[:200]:
            assert row[1] in customers

    def test_scaled_integers_everywhere(self, tpch_db):
        for row in tpch_db.table("lineitem").rows[:100]:
            assert isinstance(row[5], int)  # extendedprice in cents
            assert 0 <= row[6] <= 10  # discount in points

    def test_phone_country_codes(self, tpch_db):
        schema = tpch_db.table("customer").schema
        phone = schema.column_index("c_phone")
        nation = schema.column_index("c_nationkey")
        for row in tpch_db.table("customer").rows[:50]:
            assert int(row[phone].split("-")[0]) == row[nation] + 10


class TestQueryTexts:
    def test_all_22_parse(self):
        for number, q in tpch_queries(0.01).items():
            tree = parse(q.sql)
            assert tree.items, f"Q{number} has no select items"

    def test_exclusions_match_paper(self):
        queries = tpch_queries(0.01)
        assert {n for n, q in queries.items() if q.paper_excluded} == {13, 15, 16}
        assert queries[21].paper_timeout
        assert supported_numbers() == [n for n in range(1, 23) if n not in (13, 15, 16)]

    def test_q11_fraction_scales(self):
        assert "0.05" in tpch_queries(0.001)[11].sql
        assert "0.0001" in tpch_queries(1.0)[11].sql

    def test_all_22_execute_plaintext(self, tpch_db):
        executor = Executor(tpch_db)
        for number, q in tpch_queries(SCALE).items():
            result = executor.execute(normalize_query(parse(q.sql)))
            assert result.columns, f"Q{number} returned no schema"


@pytest.mark.parametrize("number", [1, 3, 4, 6, 11, 12, 18, 19])
def test_encrypted_equals_plaintext(tpch_db, number):
    client = _client(tpch_db)
    queries = tpch_queries(SCALE)
    query = normalize_query(parse(queries[number].sql))
    outcome = client.execute(query)
    expected = Executor(tpch_db).execute(query)
    assert canonical(outcome.rows) == canonical(expected.rows)


_CLIENT_CACHE: dict = {}


def _client(tpch_db) -> MonomiClient:
    if "client" not in _CLIENT_CACHE:
        queries = tpch_queries(SCALE)
        workload = [queries[n].sql for n in (1, 3, 4, 6, 11, 12, 18, 19)]
        _CLIENT_CACHE["client"] = MonomiClient.setup(
            tpch_db,
            workload,
            master_key=MASTER_KEY,
            paillier_bits=384,
            space_budget=2.0,
        )
    return _CLIENT_CACHE["client"]
