"""Concurrent query-service layer: plan cache, sessions, prepared
statements, and the 8-session concurrency stress harness.

Equivalence contract under test: every query through
:class:`~repro.service.MonomiService` — whatever worker thread, session,
or cache state serves it — returns the same plaintext rows and the same
ledger *byte counts* (transfer bytes, scanned bytes, round trips) as the
same query run serially through the underlying client.  Measured seconds
legitimately differ; byte counts never may.

The prepared-statement fast path has a stronger, deterministic invariant:
a literal re-bind must produce a plan *identical* to re-running Algorithm
1 under the anchored unit choice (``Planner.plan_with_units``) — asserted
structurally on the printed plans.  Against a fresh full-planner run only
rows are compared: the optimizer may legitimately pick a different split
shape for a literal with different selectivity, which is exactly the
prepared-statement trade-off.
"""

from __future__ import annotations

import datetime
import random
import threading

import pytest

from repro.common.errors import ConfigError
from repro.core import MonomiClient, normalize_query
from repro.core.planner import PlannedQuery
from repro.service import (
    MonomiService,
    PlanCache,
    plan_cache_key,
)
from repro.service.prepared import (
    PreparedPlan,
    RebindError,
    param_sites,
    rebind_plan,
    substitution_safety,
)
from repro.sql import parse, to_sql
from repro.ssb import generate as ssb_generate
from repro.ssb import ssb_queries
from repro.testkit import MASTER_KEY, SALES_WORKLOAD, canonical
from repro.tpch import generate as tpch_generate
from repro.tpch import tpch_queries

TPCH_SCALE = 0.0003
TPCH_NUMBERS = (1, 3, 6, 12)
SSB_SCALE = 0.0002
SSB_NUMBERS = ("1.1", "2.1", "3.1")


def ledger_bytes(ledger) -> tuple[int, int, int]:
    return (
        ledger.transfer_bytes,
        ledger.server_bytes_scanned,
        ledger.round_trips,
    )


def plan_text(plan) -> str:
    """Structural identity of a split plan (printed remote + residual SQL)."""
    parts = []
    if plan.residual is not None:
        parts.append("residual: " + to_sql(plan.residual))
    parts.extend("remote: " + to_sql(r.query) for r in plan.remote_relations())
    return "\n".join(parts)


def make_planned(tag: str) -> PlannedQuery:
    """A distinguishable stand-in for cache unit tests."""
    return PlannedQuery(plan=tag, cost=None, chosen_units=(), candidates_tried=0)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Plan cache + keying rule
# ---------------------------------------------------------------------------


class TestPlanCache:
    def test_miss_then_hit_counts(self):
        cache = PlanCache(capacity=4)
        key = ("SELECT 1", "fp")
        assert cache.get(key) is None
        cache.put(key, make_planned("a"))
        assert cache.get(key).plan == "a"
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_lru_evicts_least_recently_used(self):
        cache = PlanCache(capacity=2)
        cache.put(("q1", "fp"), make_planned("1"))
        cache.put(("q2", "fp"), make_planned("2"))
        assert cache.get(("q1", "fp")) is not None  # q1 now most recent
        cache.put(("q3", "fp"), make_planned("3"))  # evicts q2
        assert cache.get(("q2", "fp")) is None
        assert cache.get(("q1", "fp")) is not None
        assert cache.stats().evictions == 1

    def test_peek_does_not_count(self):
        cache = PlanCache(capacity=2)
        assert cache.peek(("q", "fp")) is None
        cache.put(("q", "fp"), make_planned("x"))
        assert cache.peek(("q", "fp")).plan == "x"
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 0)

    def test_capacity_validated(self):
        with pytest.raises(ConfigError):
            PlanCache(capacity=0)

    def test_clear_and_len(self):
        cache = PlanCache(capacity=4)
        cache.put(("q", "fp"), make_planned("x"))
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0

    def test_key_normalization_merges_equivalent_texts(self, sales_client):
        # AVG expands to SUM/COUNT during normalization, so the two texts
        # share one cache entry; that is the documented keying rule.
        design = sales_client.design
        a = plan_cache_key(
            normalize_query(parse("SELECT AVG(o_price) FROM orders")), design
        )
        b = plan_cache_key(
            normalize_query(
                parse("SELECT SUM(o_price) / COUNT(o_price) FROM orders")
            ),
            design,
        )
        assert a == b

    def test_key_separates_literals_and_designs(self, sales_client):
        design = sales_client.design
        q1 = normalize_query(parse("SELECT o_price FROM orders WHERE o_price > 5"))
        q2 = normalize_query(parse("SELECT o_price FROM orders WHERE o_price > 6"))
        assert plan_cache_key(q1, design) != plan_cache_key(q2, design)
        smaller = design.without_entry(next(iter(design.entries)))
        assert plan_cache_key(q1, design) != plan_cache_key(q1, smaller)


class TestDesignFingerprint:
    def test_stable_and_order_insensitive(self, sales_client):
        design = sales_client.design
        assert design.fingerprint() == design.copy().fingerprint()

    def test_sensitive_to_entries(self, sales_client):
        design = sales_client.design
        assert (
            design.fingerprint()
            != design.without_entry(next(iter(design.entries))).fingerprint()
        )


# ---------------------------------------------------------------------------
# Service basics (both backends via the shared conftest fixtures)
# ---------------------------------------------------------------------------


class TestServiceBasics:
    def test_execute_matches_client(self, each_backend_client):
        client = each_backend_client
        with client.service(workers=2) as service:
            for sql in SALES_WORKLOAD:
                want = client.execute(sql)
                got = service.execute(sql)
                assert canonical(got.rows) == canonical(want.rows)
                assert ledger_bytes(got.ledger) == ledger_bytes(want.ledger)

    def test_repeat_query_hits_cache_and_skips_planner(self, sales_client):
        with sales_client.service(workers=2) as service:
            sql = SALES_WORKLOAD[0]
            first = service.execute(sql)
            planner_calls = 0
            original = sales_client.planner.plan

            def counting_plan(query):
                nonlocal planner_calls
                planner_calls += 1
                return original(query)

            sales_client.planner.plan = counting_plan
            try:
                again = service.execute(sql)
            finally:
                sales_client.planner.plan = original
            assert planner_calls == 0  # served from the plan cache
            assert canonical(again.rows) == canonical(first.rows)
            assert ledger_bytes(again.ledger) == ledger_bytes(first.ledger)
            stats = service.stats()
            assert stats.plan_cache.hits >= 1
            assert stats.plan_cache.misses >= 1

    def test_session_ledger_accumulates(self, sales_client):
        with sales_client.service(workers=2) as service:
            session = service.open_session()
            outcomes = [session.execute(sql) for sql in SALES_WORKLOAD[:3]]
            assert session.queries_run == 3
            assert session.ledger.transfer_bytes == sum(
                o.ledger.transfer_bytes for o in outcomes
            )
            assert session.ledger.round_trips == sum(
                o.ledger.round_trips for o in outcomes
            )

    def test_sessions_are_isolated(self, sales_client):
        with sales_client.service(workers=2) as service:
            a = service.open_session()
            b = service.open_session()
            a.execute(SALES_WORKLOAD[0])
            assert b.queries_run == 0
            assert b.ledger.transfer_bytes == 0
            assert a.session_id != b.session_id

    def test_submit_returns_future(self, sales_client):
        with sales_client.service(workers=2) as service:
            future = service.submit(SALES_WORKLOAD[0])
            outcome = future.result(timeout=60)
            want = sales_client.execute(SALES_WORKLOAD[0])
            assert canonical(outcome.rows) == canonical(want.rows)

    def test_closed_service_rejects_work(self, sales_client):
        service = sales_client.service(workers=1)
        service.close()
        with pytest.raises(ConfigError):
            service.execute(SALES_WORKLOAD[0])
        service.close()  # idempotent

    def test_worker_count_validated(self, sales_client):
        with pytest.raises(ConfigError):
            MonomiService(sales_client, workers=0)

    def test_stats_counts_queries_and_sessions(self, sales_client):
        with sales_client.service(workers=2) as service:
            service.open_session()
            service.execute(SALES_WORKLOAD[0])
            stats = service.stats()
            assert stats.queries == 1
            # The internal default session is not a user session.
            assert stats.sessions_opened == 1
            assert stats.workers == 2


# ---------------------------------------------------------------------------
# Prepared statements
# ---------------------------------------------------------------------------

PRICE_TEMPLATE = (
    "SELECT o_custkey, SUM(o_price) AS t FROM orders "
    "WHERE o_price > :p GROUP BY o_custkey"
)


class TestPreparedAnalysis:
    def test_param_sites(self):
        template = parse(
            "SELECT o_price FROM orders WHERE o_price > :p AND o_qty < :q "
            "AND o_custkey <> :p"
        )
        assert param_sites(template) == {"p": 2, "q": 1}

    def test_safety_accepts_distinct_values(self):
        template = parse("SELECT o_price FROM orders WHERE o_price > :p")
        normalized = normalize_query(template, {"p": 500})
        assert substitution_safety(template, normalized, {"p": 500})

    def test_safety_rejects_value_collision_with_literal(self):
        template = parse(
            "SELECT o_price FROM orders WHERE o_price > :p AND o_qty < 500"
        )
        normalized = normalize_query(template, {"p": 500})
        assert not substitution_safety(template, normalized, {"p": 500})

    def test_safety_rejects_shared_param_values(self):
        template = parse(
            "SELECT o_price FROM orders WHERE o_price > :a AND o_qty < :b"
        )
        normalized = normalize_query(template, {"a": 7, "b": 7})
        assert not substitution_safety(template, normalized, {"a": 7, "b": 7})

    def test_safety_rejects_folded_param(self):
        # DATE :d - INTERVAL folds the parameter into a new literal, so the
        # bound value never appears verbatim — substitution must refuse.
        template = parse(
            "SELECT o_price FROM orders "
            "WHERE o_date >= :d - INTERVAL '30' DAY"
        )
        params = {"d": datetime.date(1995, 6, 1)}
        normalized = normalize_query(template, params)
        assert not substitution_safety(template, normalized, params)

    def test_safety_rejects_like_params(self):
        template = parse(
            "SELECT o_comment FROM orders WHERE o_comment LIKE :pat"
        )
        params = {"pat": "%brown%"}
        normalized = normalize_query(template, params)
        assert not substitution_safety(template, normalized, params)

    def test_rebind_requires_same_types(self, sales_client):
        template = parse("SELECT o_price FROM orders WHERE o_price > :p")
        normalized = normalize_query(template, {"p": 500})
        planned = sales_client.planner.plan(normalized)
        entry = PreparedPlan(planned, {"p": 500}, True)
        with pytest.raises(RebindError):
            rebind_plan(entry, sales_client.provider, {"p": "high"})
        with pytest.raises(RebindError):
            rebind_plan(entry, sales_client.provider, {"q": 700})


class TestPreparedExecution:
    def test_rebind_identical_to_unit_replanning(self, sales_client):
        """The deterministic fast-path invariant: literal substitution
        must reproduce exactly the plan Algorithm 1 yields under the
        anchored unit choice."""
        cases = [
            (PRICE_TEMPLATE, [{"p": 400}, {"p": 900}, {"p": 2200}]),
            (
                "SELECT o_orderkey, o_price FROM orders "
                "WHERE o_price BETWEEN :lo AND :hi ORDER BY o_price",
                [{"lo": 100, "hi": 900}, {"lo": 50, "hi": 2000}],
            ),
            (
                "SELECT COUNT(*) FROM orders WHERE o_status = :s",
                [{"s": "OPEN"}, {"s": "RETURNED"}],
            ),
            (
                "SELECT o_custkey, SUM(o_qty) AS q FROM orders "
                "WHERE o_date >= :d GROUP BY o_custkey",
                [
                    {"d": datetime.date(1995, 6, 1)},
                    {"d": datetime.date(1996, 1, 1)},
                ],
            ),
        ]
        for template_sql, value_sets in cases:
            template = parse(template_sql)
            anchor_params = value_sets[0]
            normalized = normalize_query(template, anchor_params)
            anchor = sales_client.planner.plan(normalized)
            assert substitution_safety(template, normalized, anchor_params)
            entry = PreparedPlan(anchor, anchor_params, True)
            for params in value_sets[1:]:
                rebound = rebind_plan(entry, sales_client.provider, params)
                replanned = sales_client.planner.plan_with_units(
                    normalize_query(template, params), anchor.chosen_units
                )
                assert plan_text(rebound.plan) == plan_text(replanned.plan)

    def test_prepared_results_match_adhoc(self, each_backend_client):
        client = each_backend_client
        with client.service(workers=2) as service:
            statement = service.prepare(PRICE_TEMPLATE)
            for value in (400, 900, 2200, 400):
                got = service.execute_prepared(statement, {"p": value})
                want = client.execute(PRICE_TEMPLATE, {"p": value})
                assert canonical(got.rows) == canonical(want.rows), value
            stats = service.stats()
            assert stats.prepared_statements == 1
            assert stats.prepared_fast_rebinds >= 1

    def test_prepared_repeat_value_served_from_cache(self, sales_client):
        planner_calls = 0
        original_plan = sales_client.planner.plan

        def counting_plan(query):
            nonlocal planner_calls
            planner_calls += 1
            return original_plan(query)

        sales_client.planner.plan = counting_plan
        try:
            with sales_client.service(workers=2) as service:
                statement = service.prepare(PRICE_TEMPLATE)
                first = service.execute_prepared(statement, {"p": 700})
                again = service.execute_prepared(statement, {"p": 700})
                # One full plan (the anchor); the repeat came out of the
                # statement's plan cache — no re-plan, no re-bind.
                assert planner_calls == 1
                assert service.stats().prepared_fast_rebinds == 0
                assert canonical(again.rows) == canonical(first.rows)
                assert ledger_bytes(again.ledger) == ledger_bytes(first.ledger)
        finally:
            sales_client.planner.plan = original_plan

    def test_prepared_plans_never_leak_into_adhoc_cache(self, sales_client):
        """Regression: a re-bound prepared plan keeps its anchor's split
        shape, so it must never serve ad-hoc executions of the same SQL
        text — those must match serial client execution byte-for-byte."""
        with sales_client.service(workers=2) as service:
            statement = service.prepare(PRICE_TEMPLATE)
            for value in (400, 900):
                service.execute_prepared(statement, {"p": value})
            # Ad-hoc execution of the identical bound text goes through
            # the full planner, exactly like the serial client.
            got = service.execute(PRICE_TEMPLATE, {"p": 900})
            want = sales_client.execute(PRICE_TEMPLATE, {"p": 900})
            assert canonical(got.rows) == canonical(want.rows)
            assert ledger_bytes(got.ledger) == ledger_bytes(want.ledger)

    def test_prepared_type_change_falls_back_to_replan(self, sales_client):
        template = (
            "SELECT o_orderkey FROM orders WHERE o_price > :p ORDER BY "
            "o_orderkey"
        )
        with sales_client.service(workers=2) as service:
            statement = service.prepare(template)
            service.execute_prepared(statement, {"p": 500})
            got = service.execute_prepared(statement, {"p": 750.0})
            want = sales_client.execute(template, {"p": 750.0})
            assert canonical(got.rows) == canonical(want.rows)
            assert service.stats().prepared_replans >= 1

    def test_unknown_statement_rejected(self, sales_client):
        with sales_client.service(workers=1) as service:
            foreign = service.prepare(PRICE_TEMPLATE)
        with sales_client.service(workers=1) as other:
            with pytest.raises(ConfigError):
                other.execute_prepared(foreign, {"p": 1})


# ---------------------------------------------------------------------------
# Concurrency stress: 8 sessions, mixed workloads, vs serial references
# ---------------------------------------------------------------------------


def run_stress(client, workload: list[str], sessions: int = 8, repeats: int = 2):
    """Run ``sessions`` concurrent sessions over shuffled copies of
    ``workload`` and assert each outcome matches its serial reference.

    Also asserts the planner runs exactly once per *distinct* query:
    every repeat — across sessions, orders, and races — must come out of
    the plan cache.  (Raw miss counters may legitimately exceed the
    distinct count when several threads miss before the single-flight
    planner publishes, so the planner call count is the invariant.)
    """
    references = {}
    for sql in workload:
        outcome = client.execute(sql)
        references[sql] = (
            canonical(outcome.rows),
            ledger_bytes(outcome.ledger),
        )
    planner_calls = 0
    original_plan = client.planner.plan

    def counting_plan(query):
        nonlocal planner_calls  # Serialized by the service's plan lock.
        planner_calls += 1
        return original_plan(query)

    client.planner.plan = counting_plan
    try:
        with client.service(workers=sessions) as service:
            handles = [service.open_session() for _ in range(sessions)]
            futures = []
            for session in handles:
                mixed = list(workload) * repeats
                random.Random(session.session_id).shuffle(mixed)
                for sql in mixed:
                    futures.append((sql, session.submit(sql)))
            for sql, future in futures:
                outcome = future.result(timeout=600)
                want_rows, want_ledger = references[sql]
                assert canonical(outcome.rows) == want_rows, sql
                assert ledger_bytes(outcome.ledger) == want_ledger, sql
            stats = service.stats()
            assert stats.queries == len(futures)
            assert stats.plan_cache.hits > 0
            assert stats.plan_cache.hits + stats.plan_cache.misses == len(futures)
            assert planner_calls == len(set(workload))
            # Per-session ledger totals equal the serial sums of their
            # queries.
            total = sum(h.ledger.transfer_bytes for h in handles)
            per_query = sum(references[sql][1][0] for sql, _ in futures)
            assert total == per_query
    finally:
        client.planner.plan = original_plan
    return stats


class TestConcurrentStress:
    def test_sales_eight_sessions_both_backends(self, each_backend_client):
        run_stress(each_backend_client, SALES_WORKLOAD)

    def test_plan_cache_hits_never_change_results(self, sales_client):
        # Same query through many sessions at once: the planner runs
        # exactly once (single-flight), every execution returns identical
        # output whether it planned, waited, or hit the cache.
        sql = SALES_WORKLOAD[1]
        want = sales_client.execute(sql)
        planner_calls = 0
        original_plan = sales_client.planner.plan

        def counting_plan(query):
            nonlocal planner_calls
            planner_calls += 1
            return original_plan(query)

        sales_client.planner.plan = counting_plan
        try:
            with sales_client.service(workers=4) as service:
                futures = [service.submit(sql) for _ in range(12)]
                for future in futures:
                    outcome = future.result(timeout=600)
                    assert canonical(outcome.rows) == canonical(want.rows)
                    assert ledger_bytes(outcome.ledger) == ledger_bytes(
                        want.ledger
                    )
                cache = service.stats().plan_cache
                assert planner_calls == 1
                assert cache.hits + cache.misses == 12
                assert cache.hits >= 1
        finally:
            sales_client.planner.plan = original_plan

    def test_concurrent_worker_views_see_consistent_state(self, sales_client):
        # Hammer one view-per-thread path without the service wrapper:
        # every thread drains the same query through its own worker view.
        want = sales_client.execute(SALES_WORKLOAD[0])
        errors: list[Exception] = []

        def worker():
            try:
                view = sales_client.backend.worker_view()
                executor = sales_client.executor.clone_with_backend(view)
                planned = sales_client.planner.plan(
                    normalize_query(parse(SALES_WORKLOAD[0]))
                )
                result, ledger = executor.execute(planned.plan)
                assert canonical(result.rows) == canonical(want.rows)
                assert ledger_bytes(ledger) == ledger_bytes(want.ledger)
            except Exception as exc:  # surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        assert not errors


# ---------------------------------------------------------------------------
# TPC-H / SSB mixed workload (the acceptance-criterion harness)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tpch_service_client():
    db = tpch_generate(scale=TPCH_SCALE, seed=5)
    queries = tpch_queries(TPCH_SCALE)
    workload = [queries[n].sql for n in TPCH_NUMBERS]
    client = MonomiClient.setup(
        db,
        workload,
        master_key=MASTER_KEY,
        paillier_bits=384,
        space_budget=2.0,
    )
    return client, workload


@pytest.fixture(scope="module")
def ssb_service_client():
    db = ssb_generate(scale=SSB_SCALE, seed=13)
    queries = ssb_queries()
    workload = [queries[n].sql for n in SSB_NUMBERS]
    client = MonomiClient.setup(
        db,
        workload,
        master_key=MASTER_KEY,
        paillier_bits=384,
        space_budget=2.0,
    )
    return client, workload


class TestMixedWorkloadStress:
    def test_tpch_eight_sessions_byte_identical(self, tpch_service_client):
        """Acceptance criterion: 8 concurrent TPC-H sessions, byte-identical
        plaintexts and ledger totals, repeat plans from the cache."""
        client, workload = tpch_service_client
        stats = run_stress(client, workload, sessions=8, repeats=2)
        # run_stress asserted the planner ran once per distinct query and
        # every repeat hit the cache; the totals reconcile here.
        assert stats.queries == len(workload) * 8 * 2

    def test_mixed_tpch_ssb_interleaved(
        self, tpch_service_client, ssb_service_client
    ):
        """8 threads interleave TPC-H and SSB queries across two services
        sharing one process: per-query outputs must match their serial
        references on both."""
        tpch_client, tpch_workload = tpch_service_client
        ssb_client, ssb_workload = ssb_service_client
        references = {}
        for client, workload in (
            (tpch_client, tpch_workload),
            (ssb_client, ssb_workload),
        ):
            for sql in workload:
                outcome = client.execute(sql)
                references[sql] = (
                    canonical(outcome.rows),
                    ledger_bytes(outcome.ledger),
                )
        with tpch_client.service(workers=4) as tpch_service:
            with ssb_client.service(workers=4) as ssb_service:
                jobs = []
                for seed in range(8):
                    mixed = [
                        (tpch_service, sql) for sql in tpch_workload
                    ] + [(ssb_service, sql) for sql in ssb_workload]
                    random.Random(seed).shuffle(mixed)
                    session_pair = (
                        tpch_service.open_session(),
                        ssb_service.open_session(),
                    )
                    for service, sql in mixed:
                        session = session_pair[0 if service is tpch_service else 1]
                        jobs.append((sql, session.submit(sql)))
                for sql, future in jobs:
                    outcome = future.result(timeout=600)
                    want_rows, want_ledger = references[sql]
                    assert canonical(outcome.rows) == want_rows, sql
                    assert ledger_bytes(outcome.ledger) == want_ledger, sql
