"""Wire-protocol battery: round-trips, then adversarial bytes.

Two halves.  The constructive half proves the codec is lossless over the
whole value domain that crosses the client/server boundary — hypothesis
generates scalars, containers, ciphertext carriers, and query ASTs, and
every one must decode to an equal value *of the same Python type*
(``bool`` is not ``int``; ``tuple`` is not ``frozenset`` — the ledger's
``value_bytes`` sizes them differently, so type drift would silently
break byte-identical accounting across the socket).

The adversarial half feeds the decoder what a hostile or broken peer
would send — truncated frames, oversized length prefixes, bad magic,
wrong versions, garbage — and requires exactly one of two outcomes:
``None`` (incomplete, wait for more bytes) or a typed
:class:`~repro.common.errors.WireError`.  Never a hang, never an
over-read, never a non-library exception.
"""

from __future__ import annotations

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import errors as errors_module
from repro.common.errors import (
    CodecError,
    ConfigError,
    FramingError,
    InjectedFaultError,
    LexError,
    PlanningError,
    RemoteError,
    ReproError,
    TransientError,
    TruncatedStreamError,
    UnsupportedVersionError,
    WireError,
)
from repro.crypto.packing import PackedLayout
from repro.engine.aggregates import HomAggResult
from repro.net import wire
from repro.sql import parse
from repro.testkit import SALES_WORKLOAD

# ---------------------------------------------------------------------------
# Value strategies
# ---------------------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1),
    # Past int64: the BIGINT path (OPE/Paillier ciphertexts live here).
    st.integers(min_value=1 << 63, max_value=1 << 256),
    st.integers(min_value=-(1 << 256), max_value=-(1 << 63) - 1),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
    st.dates(),
)

hashable_values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.tuples(children, children),
        st.frozensets(children, max_size=4),
    ),
    max_leaves=8,
)

layouts = st.builds(
    PackedLayout,
    column_bits=st.lists(
        st.integers(min_value=1, max_value=8), min_size=1, max_size=3
    ).map(tuple),
    pad_bits=st.integers(min_value=0, max_value=4),
    plaintext_bits=st.just(128),
)

hom_aggs = st.builds(
    HomAggResult,
    file_name=st.text(max_size=16),
    column_names=st.lists(st.text(max_size=8), max_size=3).map(tuple),
    product=st.one_of(st.none(), st.integers(min_value=0, max_value=1 << 200)),
    partials=st.lists(
        st.tuples(st.integers(min_value=0, max_value=1 << 64)), max_size=3
    ).map(tuple),
    multiplications=st.integers(min_value=0, max_value=1 << 40),
    ciphertext_bytes=st.integers(min_value=0, max_value=1 << 40),
    layout=st.one_of(st.none(), layouts),
)

values = st.recursive(
    st.one_of(scalars, layouts, hom_aggs),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.frozensets(hashable_values, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


def assert_same(decoded: object, original: object) -> None:
    """Equality plus exact-type fidelity, recursively."""
    assert type(decoded) is type(original)
    assert decoded == original
    if isinstance(original, (tuple, list)):
        for got, want in zip(decoded, original):
            assert_same(got, want)
    elif isinstance(original, dict):
        for key in original:
            assert_same(decoded[key], original[key])


# ---------------------------------------------------------------------------
# Round-trips
# ---------------------------------------------------------------------------


class TestValueRoundTrip:
    @given(value=values)
    @settings(max_examples=200, deadline=None, derandomize=True)
    def test_any_value_round_trips(self, value):
        assert_same(wire.decode_value(wire.encode_value(value)), value)

    def test_bool_int_distinction_survives(self):
        # The load-bearing case: value_bytes(True) != value_bytes(1).
        decoded = wire.decode_value(wire.encode_value((True, 1, False, 0)))
        assert [type(v) for v in decoded] == [bool, int, bool, int]

    def test_tuple_frozenset_list_distinction_survives(self):
        for value in ((1, 2), [1, 2], frozenset({1, 2})):
            decoded = wire.decode_value(wire.encode_value(value))
            assert type(decoded) is type(value)

    def test_frozenset_encoding_is_order_independent(self):
        a = frozenset({b"\x01" * 8, b"\x02" * 8, b"\xff" * 8, 5, "x"})
        b = frozenset(sorted(a, key=repr))
        assert wire.encode_value(a) == wire.encode_value(b)

    @given(value=st.integers())
    @settings(max_examples=100, deadline=None, derandomize=True)
    def test_unbounded_integers_round_trip(self, value):
        assert wire.decode_value(wire.encode_value(value)) == value

    def test_query_asts_round_trip(self):
        from repro.core import normalize_query

        extra = [
            "SELECT o_orderkey FROM orders WHERE o_custkey IN "
            "(SELECT o_custkey FROM orders GROUP BY o_custkey "
            "HAVING SUM(o_qty) > 140)",
            "SELECT COUNT(*) FROM orders WHERE o_comment LIKE '%brown%' "
            "AND o_date >= DATE '1995-06-01'",
        ]
        for sql in SALES_WORKLOAD + extra:
            query = normalize_query(parse(sql))
            decoded = wire.decode_value(wire.encode_value(query))
            assert decoded == query

    def test_unencodable_types_raise_codec_error(self):
        for value in (object(), {1: "non-str key"}, 3 + 4j, {"set"}):
            with pytest.raises(CodecError):
                wire.encode_value(value)

    def test_nesting_past_max_depth_raises(self):
        bomb: object = ()
        for _ in range(wire.MAX_DEPTH + 2):
            bomb = (bomb,)
        with pytest.raises(CodecError):
            wire.encode_value(bomb)


class TestFrameRoundTrip:
    BODIES = {
        wire.HELLO: {"client": "monomi", "version": wire.VERSION},
        wire.EXECUTE: {"stream": True, "block_rows": 64, "partitions": 2},
        wire.PREPARE: {"query": None},
        wire.BLOCK: {"data": [[1, 2], ["a", "b"]], "rows": 2},
        wire.LEDGER: {"bytes_scanned": 123, "rows_output": 2},
        wire.ERROR: {"code": "EngineError", "message": "x", "transient": False},
        wire.CANCEL: {},
    }

    @pytest.mark.parametrize("ftype", sorted(BODIES))
    def test_every_frame_type_round_trips(self, ftype):
        encoded = wire.encode_message(ftype, self.BODIES[ftype])
        decoder = wire.FrameDecoder()
        decoder.feed(encoded)
        got_type, payload = decoder.next_frame()
        assert got_type == ftype
        assert wire.decode_message(payload) == self.BODIES[ftype]
        assert decoder.next_frame() is None
        assert decoder.pending == 0

    @given(split=st.integers(min_value=0))
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_arbitrary_split_points_reassemble(self, split):
        encoded = wire.encode_message(wire.LEDGER, self.BODIES[wire.LEDGER])
        cut = split % (len(encoded) + 1)
        decoder = wire.FrameDecoder()
        decoder.feed(encoded[:cut])
        first = decoder.next_frame()
        if cut < len(encoded):
            assert first is None
            decoder.feed(encoded[cut:])
            first = decoder.next_frame()
        ftype, payload = first
        assert ftype == wire.LEDGER
        assert wire.decode_message(payload) == self.BODIES[wire.LEDGER]

    def test_back_to_back_frames_decode_in_order(self):
        stream = b"".join(
            wire.encode_message(ftype, body)
            for ftype, body in sorted(self.BODIES.items())
        )
        decoder = wire.FrameDecoder()
        decoder.feed(stream)
        seen = []
        while (frame := decoder.next_frame()) is not None:
            seen.append(frame[0])
        assert seen == sorted(self.BODIES)


# ---------------------------------------------------------------------------
# Malformed input: typed errors, no hangs, no over-reads
# ---------------------------------------------------------------------------


class TestMalformedFrames:
    def test_truncated_frame_returns_none_never_raises(self):
        encoded = wire.encode_message(wire.HELLO, {"k": "v"})
        for cut in range(len(encoded)):
            decoder = wire.FrameDecoder()
            decoder.feed(encoded[:cut])
            assert decoder.next_frame() is None
            assert decoder.pending == cut

    def test_bad_magic_raises_framing_error(self):
        decoder = wire.FrameDecoder()
        decoder.feed(b"XX" + wire.encode_frame(wire.HELLO, b"")[2:])
        with pytest.raises(FramingError):
            decoder.next_frame()

    def test_wrong_version_raises_unsupported_version(self):
        frame = bytearray(wire.encode_frame(wire.HELLO, b""))
        frame[2] = wire.VERSION + 1
        decoder = wire.FrameDecoder()
        decoder.feed(bytes(frame))
        with pytest.raises(UnsupportedVersionError):
            decoder.next_frame()

    def test_unknown_frame_type_raises_framing_error(self):
        frame = bytearray(wire.encode_frame(wire.HELLO, b""))
        frame[3] = 0x7F
        decoder = wire.FrameDecoder()
        decoder.feed(bytes(frame))
        with pytest.raises(FramingError):
            decoder.next_frame()

    def test_oversized_length_prefix_raises_before_payload(self):
        # The header alone must trip the limit: a hostile length may
        # never make the receiver buffer (or wait for) the payload.
        header = wire.HEADER.pack(wire.MAGIC, wire.VERSION, wire.BLOCK, 1 << 30)
        decoder = wire.FrameDecoder(max_frame_bytes=1 << 20)
        decoder.feed(header)
        with pytest.raises(FramingError):
            decoder.next_frame()

    def test_encode_frame_rejects_unknown_type(self):
        with pytest.raises(FramingError):
            wire.encode_frame(99, b"")

    @given(junk=st.binary(max_size=64))
    @settings(max_examples=200, deadline=None, derandomize=True)
    def test_garbage_bytes_never_hang_or_escape_the_taxonomy(self, junk):
        decoder = wire.FrameDecoder(max_frame_bytes=1 << 16)
        decoder.feed(junk)
        # Bounded work: each iteration either consumes a frame, stops, or
        # raises a typed WireError.  Anything else is a defect.
        for _ in range(len(junk) + 1):
            try:
                frame = decoder.next_frame()
            except WireError:
                return
            if frame is None:
                return

    @given(junk=st.binary(max_size=64))
    @settings(max_examples=200, deadline=None, derandomize=True)
    def test_valid_header_with_garbage_payload_stays_typed(self, junk):
        decoder = wire.FrameDecoder()
        decoder.feed(wire.encode_frame(wire.EXECUTE, junk))
        ftype, payload = decoder.next_frame()
        assert ftype == wire.EXECUTE
        try:
            wire.decode_message(payload)
        except WireError:
            pass  # Typed rejection is the expected outcome.


class TestMalformedValues:
    def test_truncated_value_raises_codec_error(self):
        encoded = wire.encode_value({"key": [1, 2.5, "three", b"four"]})
        for cut in range(len(encoded)):
            with pytest.raises(CodecError):
                wire.decode_value(encoded[:cut])

    def test_trailing_bytes_raise_codec_error(self):
        with pytest.raises(CodecError):
            wire.decode_value(wire.encode_value(1) + b"\x00")

    def test_unknown_tag_raises_codec_error(self):
        with pytest.raises(CodecError):
            wire.decode_value(b"\xee")

    def test_lying_container_count_rejected_before_allocation(self):
        # A list claiming 2**31 elements inside a 9-byte payload must be
        # rejected by the count sanity bound, not attempted.
        payload = bytes([0x0A]) + (1 << 31).to_bytes(4, "big") + b"\x00" * 4
        with pytest.raises(CodecError):
            wire.decode_value(payload)

    def test_depth_bomb_payload_rejected(self):
        # 250 nested one-element tuples, hand-built so encode's own depth
        # guard cannot save us — decode must enforce the limit itself.
        payload = bytes([0x00])  # innermost None
        for _ in range(wire.MAX_DEPTH + 50):
            payload = bytes([0x09]) + (1).to_bytes(4, "big") + payload
        with pytest.raises(CodecError):
            wire.decode_value(payload)

    def test_invalid_layout_payload_stays_codec_error(self):
        # A structurally valid LAYOUT frame whose numbers violate the
        # PackedLayout invariants (row wider than the plaintext) must
        # surface as CodecError, not leak CryptoError internals.
        evil = bytes([0x0E]) + wire.encode_value((64, 64)) + wire.encode_value(
            0
        ) + wire.encode_value(8)
        with pytest.raises(CodecError):
            wire.decode_value(evil)

    def test_non_dict_message_payload_rejected(self):
        with pytest.raises(CodecError):
            wire.decode_message(wire.encode_value([1, 2, 3]))

    def test_bad_date_ordinal_rejected(self):
        evil = bytes([0x08]) + (0).to_bytes(4, "big")
        with pytest.raises(CodecError):
            wire.decode_value(evil)
        assert wire.decode_value(
            wire.encode_value(datetime.date.max)
        ) == datetime.date.max

    @given(junk=st.binary(max_size=64))
    @settings(max_examples=300, deadline=None, derandomize=True)
    def test_random_payloads_decode_or_raise_codec_error(self, junk):
        try:
            wire.decode_value(junk)
        except CodecError:
            pass


# ---------------------------------------------------------------------------
# Error mapping
# ---------------------------------------------------------------------------


def concrete_error_classes() -> list[type]:
    return sorted(
        (
            obj
            for obj in vars(errors_module).values()
            if isinstance(obj, type) and issubclass(obj, ReproError)
        ),
        key=lambda cls: cls.__name__,
    )


class TestErrorMapping:
    @pytest.mark.parametrize(
        "cls", concrete_error_classes(), ids=lambda cls: cls.__name__
    )
    def test_every_taxonomy_class_survives_the_wire(self, cls):
        exc = cls("boom", 3) if cls is LexError else cls("boom")
        decoded = wire.decode_error(wire.encode_error(exc))
        assert isinstance(decoded, ReproError)
        # Transience must be preserved exactly: it decides whether the
        # client retries or surfaces the failure.
        assert isinstance(decoded, TransientError) == isinstance(
            exc, TransientError
        )
        if cls is not LexError:  # LexError's 2-arg ctor degrades to SQLError.
            assert type(decoded) is cls
        assert "boom" in str(decoded)

    def test_unknown_transient_code_degrades_to_transient(self):
        decoded = wire.decode_error(
            {"code": "FutureFlakyError", "message": "m", "transient": True}
        )
        assert type(decoded) is TransientError

    def test_unknown_fatal_code_degrades_to_remote_error(self):
        decoded = wire.decode_error(
            {"code": "FutureFatalError", "message": "m", "transient": False}
        )
        assert type(decoded) is RemoteError
        assert "FutureFatalError" in str(decoded)

    def test_foreign_exception_encodes_by_transience(self):
        class Weird(TransientError):
            pass

        class Awful(ReproError):
            pass

        assert wire.encode_error(Weird("w"))["code"] == "TransientError"
        assert wire.encode_error(Awful("a"))["code"] == "RemoteError"

    def test_bytes_scanned_rides_along(self):
        body = wire.encode_error(InjectedFaultError("x"), bytes_scanned=4096)
        assert body["bytes_scanned"] == 4096
        assert body["transient"] is True

    def test_error_body_round_trips_as_a_frame(self):
        for exc in (
            TruncatedStreamError("cut"),
            PlanningError("no plan"),
            ConfigError("bad knob"),
        ):
            encoded = wire.encode_message(wire.ERROR, wire.encode_error(exc))
            decoder = wire.FrameDecoder()
            decoder.feed(encoded)
            ftype, payload = decoder.next_frame()
            assert ftype == wire.ERROR
            decoded = wire.decode_error(wire.decode_message(payload))
            assert type(decoded) is type(exc)
