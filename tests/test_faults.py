"""Resilience suite: chaos equivalence, deadlines, crash-safe load, retries.

The invariant under test everywhere: under any injected fault schedule, a
query either returns rows and primary ledger byte counts **identical** to
the fault-free run, or raises a typed error — and retried work lands in
``ledger.retries`` / ``ledger.retry_bytes``, never in the primary totals.

Chaos schedules are seeded (``FaultInjectingBackend(seed, rate)``), so
every test here is deterministic: a fixed seed replays the exact same
faults in single-threaded runs.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.common.errors import (
    ConfigError,
    DeadlineExceededError,
    InjectedFaultError,
    LoadJournalError,
    TransientError,
)
from repro.common.retry import NO_RETRY, Deadline, RetryPolicy, retry_call
from repro.core.client import MonomiClient
from repro.core.loader import EncryptedLoader, complete_design
from repro.core.loadjournal import LoadJournal
from repro.core.schemes import Scheme
from repro.engine.rowblock import DEFAULT_BLOCK_ROWS
from repro.server import (
    CHAOS_ENV,
    FaultInjectingBackend,
    chaos_from_env,
    make_backend,
    maybe_wrap_chaos,
    parse_chaos,
)
from repro.server.backend import DelegatingView, supports_partitions
from repro.service import MonomiService
from repro.sql import parse
from repro.testkit import SALES_WORKLOAD, canonical

REPO_ROOT = Path(__file__).resolve().parents[1]


def _primary(ledger) -> tuple[int, int, int]:
    """The byte-identical contract's fields."""
    return (
        ledger.transfer_bytes,
        ledger.server_bytes_scanned,
        ledger.round_trips,
    )


def _chaos_client(base: MonomiClient, seed: int, rate: float) -> MonomiClient:
    """A client identical to ``base`` but talking through a chaos proxy."""
    return MonomiClient(
        base.plain_db,
        base.design,
        base.provider,
        FaultInjectingBackend(base.backend, seed=seed, rate=rate),
        base.flags,
        base.network,
        base.disk,
        streaming=base.streaming,
    )


# -- retry / deadline primitives ---------------------------------------------


class TestRetryPrimitives:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay=0.01, multiplier=2.0, max_delay=0.05, jitter=0.0
        )
        delays = [policy.delay(k) for k in range(1, 6)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_transient_errors_retry_until_success(self):
        calls = {"n": 0}
        retried = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise InjectedFaultError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=5, base_delay=0.0, jitter=0.0)
        out = retry_call(
            flaky, policy, on_retry=lambda a, e: retried.append(a)
        )
        assert out == "ok"
        assert calls["n"] == 3
        assert retried == [1, 2]

    def test_fatal_errors_do_not_retry(self):
        calls = {"n": 0}

        def fatal():
            calls["n"] += 1
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            retry_call(fatal, RetryPolicy(base_delay=0.0))
        assert calls["n"] == 1

    def test_exhaustion_reraises_the_typed_error(self):
        calls = {"n": 0}

        def always():
            calls["n"] += 1
            raise InjectedFaultError("still down")

        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        with pytest.raises(InjectedFaultError):
            retry_call(always, policy)
        assert calls["n"] == 3

    def test_no_retry_policy_is_single_attempt(self):
        calls = {"n": 0}

        def always():
            calls["n"] += 1
            raise InjectedFaultError("down")

        with pytest.raises(InjectedFaultError):
            retry_call(always, NO_RETRY)
        assert calls["n"] == 1

    def test_deadline_stops_a_retry_loop(self):
        deadline = Deadline.after(0.02)

        def always():
            raise InjectedFaultError("down")

        policy = RetryPolicy(max_attempts=50, base_delay=0.01, jitter=0.0)
        with pytest.raises(DeadlineExceededError):
            retry_call(always, policy, deadline=deadline)

    def test_deadline_basics(self):
        with pytest.raises(ConfigError):
            Deadline.after(0.0)
        past = Deadline(time.monotonic() - 1.0)
        assert past.expired
        with pytest.raises(DeadlineExceededError):
            past.check("unit test")
        future = Deadline.after(60.0)
        assert not future.expired
        future.check("unit test")  # must not raise


# -- the chaos proxy ----------------------------------------------------------


class TestChaosProxy:
    def test_parse_chaos(self):
        assert parse_chaos("7:0.05") == (7, 0.05)
        for bad in ("7", "x:0.1", "7:nope", "7:1.5", "7:-0.1"):
            with pytest.raises(ConfigError):
                parse_chaos(bad)

    def test_env_wrap_is_armed_and_idempotent(self, sales_client, monkeypatch):
        # Chaos CI pre-wraps the fixture's backend; peel down to the real one
        # so the wrap-exactly-once property is tested from a clean base.
        base = sales_client.backend
        while isinstance(base, FaultInjectingBackend):
            base = base._parent
        monkeypatch.setenv(CHAOS_ENV, "9:0.25")
        wrapped = maybe_wrap_chaos(base)
        assert isinstance(wrapped, FaultInjectingBackend)
        assert wrapped.kind == f"chaos({base.kind})"
        assert maybe_wrap_chaos(wrapped) is wrapped
        monkeypatch.delenv(CHAOS_ENV)
        assert maybe_wrap_chaos(base) is base

    def test_same_seed_replays_the_same_schedule(self, sales_client):
        runs = []
        for _ in range(2):
            client = _chaos_client(sales_client, seed=5, rate=0.3)
            rows = [
                canonical(client.execute(q).rows) for q in SALES_WORKLOAD[:2]
            ]
            runs.append((rows, client.backend.stats()))
        if chaos_from_env() is None:
            assert runs[0] == runs[1]
        else:
            # Under chaos CI the env-level proxy inside `sales_client` keeps
            # drawing from its own schedule across our two runs, shifting the
            # outer proxy's draw counts; rows must still replay identically.
            assert runs[0][0] == runs[1][0]
        assert runs[0][1]["draws"] > 0

    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_chaos_equivalence(self, each_backend_client, seed):
        """Rows and primary ledger bytes are identical under chaos."""
        base = each_backend_client
        client = _chaos_client(base, seed=seed, rate=0.2)
        for sql in SALES_WORKLOAD[:3]:
            reference = base.execute(sql)
            outcome = client.execute(sql)
            assert canonical(outcome.rows) == canonical(reference.rows)
            assert _primary(outcome.ledger) == _primary(reference.ledger)
            if chaos_from_env() is None:
                assert reference.ledger.retries == 0
        assert client.backend.stats()["draws"] > 0

    def test_retries_are_accounted_outside_primary_totals(self, sales_client):
        client = _chaos_client(sales_client, seed=1, rate=0.35)
        total_retries = 0
        for sql in SALES_WORKLOAD:
            reference = sales_client.execute(sql)
            outcome = client.execute(sql)
            assert canonical(outcome.rows) == canonical(reference.rows)
            assert _primary(outcome.ledger) == _primary(reference.ledger)
            total_retries += outcome.ledger.retries
        stats = client.backend.stats()
        assert stats["injected_errors"] + stats["truncations"] > 0
        assert total_retries > 0

    def test_rate_zero_injects_nothing(self, sales_client):
        client = _chaos_client(sales_client, seed=1, rate=0.0)
        outcome = client.execute(SALES_WORKLOAD[0])
        reference = sales_client.execute(SALES_WORKLOAD[0])
        assert canonical(outcome.rows) == canonical(reference.rows)
        stats = client.backend.stats()
        assert stats["injected_errors"] == 0
        assert stats["truncations"] == 0
        if chaos_from_env() is None:
            # An env-level chaos proxy underneath can still cause retries;
            # only the rate-0 proxy under test is asserted silent above.
            assert outcome.ledger.retries == 0
            assert outcome.ledger.retry_bytes == 0


# -- deadlines at the client API ----------------------------------------------


class TestDeadlines:
    def test_expired_timeout_raises_typed_error(self, each_backend_client):
        with pytest.raises(DeadlineExceededError):
            each_backend_client.execute(SALES_WORKLOAD[0], timeout=1e-6)

    def test_invalid_timeout_rejected(self, sales_client):
        with pytest.raises(ConfigError):
            sales_client.execute(SALES_WORKLOAD[0], timeout=0)

    def test_slow_stream_consumer_times_out(self, sales_client):
        stream = sales_client.execute_iter(
            "SELECT o_orderkey FROM orders", block_rows=16, timeout=0.15
        )
        blocks = iter(stream)
        next(blocks)  # first block arrives well inside the deadline
        time.sleep(0.3)
        try:
            with pytest.raises(DeadlineExceededError):
                for _ in blocks:
                    pass
        finally:
            stream.close()

    def test_generous_timeout_changes_nothing(self, sales_client):
        reference = sales_client.execute(SALES_WORKLOAD[0])
        outcome = sales_client.execute(SALES_WORKLOAD[0], timeout=60.0)
        assert canonical(outcome.rows) == canonical(reference.rows)
        assert _primary(outcome.ledger) == _primary(reference.ledger)


# -- service-level resilience -------------------------------------------------


class _FlakyView(DelegatingView):
    """Fails the first N query calls with a transient error, then heals.

    N greater than the executor's per-query retry budget forces the
    failure to escape one whole execution, exercising the *service's*
    outer whole-query retry.
    """

    def __init__(self, parent, failures: int, state: dict | None = None):
        super().__init__(parent)
        self._state = state if state is not None else {"left": failures}

    def _maybe_fail(self) -> None:
        if self._state["left"] > 0:
            self._state["left"] -= 1
            raise InjectedFaultError("flaky backend")

    def execute(self, query, params=None):
        self._maybe_fail()
        result = self._parent.execute(query, params=params)
        self.last_stats = self._parent.last_stats
        return result

    def execute_stream(
        self, query, params=None, block_rows=DEFAULT_BLOCK_ROWS, partitions=1
    ):
        self._maybe_fail()
        if supports_partitions(self._parent):
            return self._parent.execute_stream(
                query, params=params, block_rows=block_rows, partitions=partitions
            )
        return self._parent.execute_stream(
            query, params=params, block_rows=block_rows
        )

    def worker_view(self):
        return _FlakyView(self._parent.worker_view(), 0, state=self._state)


class TestServiceResilience:
    def test_whole_query_retry_counts_and_recovers(
        self, sales_client, monkeypatch
    ):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        reference = sales_client.execute(SALES_WORKLOAD[0])
        # 5 consecutive failures exhaust the executor's inner budget
        # (max_attempts=5) exactly once; call 6 succeeds on the service's
        # second whole-query attempt.
        flaky = _FlakyView(sales_client.backend, failures=5)
        client = MonomiClient(
            sales_client.plain_db,
            sales_client.design,
            sales_client.provider,
            flaky,
            sales_client.flags,
            sales_client.network,
            sales_client.disk,
            streaming=sales_client.streaming,
        )
        with MonomiService(client, workers=1) as service:
            outcome = service.execute(SALES_WORKLOAD[0])
            assert canonical(outcome.rows) == canonical(reference.rows)
            assert _primary(outcome.ledger) == _primary(reference.ledger)
            assert service.stats().query_retries == 1

    def test_retry_budget_exhaustion_raises_typed_error(
        self, sales_client, monkeypatch
    ):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        flaky = _FlakyView(sales_client.backend, failures=10**6)
        client = MonomiClient(
            sales_client.plain_db,
            sales_client.design,
            sales_client.provider,
            flaky,
            sales_client.flags,
            sales_client.network,
            sales_client.disk,
            streaming=sales_client.streaming,
        )
        fast = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        client.executor.retry_policy = fast
        with MonomiService(client, workers=1, retry_policy=fast) as service:
            with pytest.raises(InjectedFaultError):
                service.execute(SALES_WORKLOAD[0])

    def test_submit_timeout_covers_queue_wait(self, sales_client):
        with MonomiService(sales_client, workers=1) as service:
            future = service.submit(SALES_WORKLOAD[0], timeout=1e-6)
            with pytest.raises(DeadlineExceededError):
                future.result()

    def test_stats_expose_query_retries_field(self, sales_client):
        with MonomiService(sales_client, workers=1) as service:
            service.execute(SALES_WORKLOAD[0])
            stats = service.stats()
            assert stats.queries == 1
            assert stats.query_retries == 0


# -- the load journal ---------------------------------------------------------


class TestLoadJournal:
    def test_begin_and_resume(self, tmp_path):
        journal = LoadJournal(tmp_path / "j")
        assert journal.begin("fp1") is False
        journal.note_table_created("t")
        journal.note_batch("t", 50)
        journal.note_batch("t", 100)
        reopened = LoadJournal(tmp_path / "j")
        assert reopened.begin("fp1") is True
        assert reopened.rows_recorded("t") == 100
        assert not reopened.complete
        reopened.note_load_done()
        assert LoadJournal(tmp_path / "j").complete

    def test_fingerprint_mismatch_is_fatal(self, tmp_path):
        journal = LoadJournal(tmp_path / "j")
        journal.begin("fp1")
        with pytest.raises(LoadJournalError):
            LoadJournal(tmp_path / "j").begin("fp2")

    def test_torn_tail_is_dropped(self, tmp_path):
        journal = LoadJournal(tmp_path / "j")
        journal.begin("fp1")
        journal.note_batch("t", 64)
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write('{"event": "batch", "table": "t", "rows_d')  # torn write
        reopened = LoadJournal(tmp_path / "j")
        assert [e["event"] for e in reopened.events] == ["begin", "batch"]
        assert reopened.rows_recorded("t") == 64

    def test_corrupt_interior_line_is_fatal(self, tmp_path):
        journal = LoadJournal(tmp_path / "j")
        journal.begin("fp1")
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write("garbage not json\n")
            fh.write('{"event": "batch", "table": "t", "rows_done": 64}\n')
        with pytest.raises(LoadJournalError):
            LoadJournal(tmp_path / "j")


# -- crash-safe resumable load ------------------------------------------------


def _fresh_design(sales_client):
    """The completed design actually loaded on the server."""
    return complete_design(sales_client.design, sales_client.plain_db)


def _server_column(backend, table: str, column: str) -> list:
    result = backend.execute(parse(f"SELECT {column} FROM {table}"))
    return sorted(row[0] for row in result.rows)


class TestCrashSafeLoad:
    def _reference_backend(self, sales_client, provider, tmp_path):
        backend = make_backend(
            "sqlite", name="ref", path=str(tmp_path / "reference.db")
        )
        EncryptedLoader(sales_client.plain_db, provider).load_into(
            backend, sales_client.design
        )
        return backend

    def _assert_stores_equal(self, sales_client, reference, resumed):
        completed = _fresh_design(sales_client)
        assert reference.table_names() == resumed.table_names()
        for table in reference.table_names():
            assert reference.row_count(table) == resumed.row_count(table)
            assert reference.table_bytes(table) == resumed.table_bytes(table)
        # DET and OPE are deterministic under the (PRF-derived, hence
        # cross-process identical) keys: those columns must match bitwise.
        for entry in completed.entries:
            if entry.scheme in (Scheme.DET, Scheme.OPE):
                assert _server_column(
                    reference, entry.table, entry.column_name
                ) == _server_column(resumed, entry.table, entry.column_name)
        assert reference.total_bytes == resumed.total_bytes

    def test_journaled_load_equals_plain_load(
        self, sales_client, provider, tmp_path
    ):
        reference = self._reference_backend(sales_client, provider, tmp_path)
        backend = make_backend(
            "sqlite", name="j", path=str(tmp_path / "journaled.db")
        )
        EncryptedLoader(sales_client.plain_db, provider).load_into(
            backend,
            sales_client.design,
            journal=tmp_path / "journal",
            batch_rows=64,
        )
        self._assert_stores_equal(sales_client, reference, backend)
        assert LoadJournal(tmp_path / "journal").complete

    def test_killed_load_resumes_without_reencrypting(
        self, sales_client, sales_db, provider, tmp_path
    ):
        """A load hard-killed mid-table resumes to an identical store.

        The child process dies via ``os._exit`` after 3 committed batches
        (customer done, orders partway) — no cleanup, no flush beyond the
        journal's fsync, same file-state semantics as ``kill -9``.
        """
        design_file = tmp_path / "design.pkl"
        with open(design_file, "wb") as fh:
            pickle.dump(sales_client.design, fh)
        db_file = tmp_path / "crash.db"
        journal_dir = tmp_path / "journal"

        child = textwrap.dedent(
            """
            import os, pickle, sys
            from repro.core import CryptoProvider
            from repro.core.loader import EncryptedLoader
            from repro.server import make_backend
            from repro.testkit import MASTER_KEY, build_sales_db

            design = pickle.load(open(sys.argv[1], "rb"))
            backend = make_backend("sqlite", name="crash", path=sys.argv[2])
            committed = {"n": 0}
            real_insert = backend.insert_rows

            def dying_insert(table, rows):
                real_insert(table, rows)
                committed["n"] += 1
                if committed["n"] >= 3:
                    os._exit(137)  # hard kill: no cleanup runs

            backend.insert_rows = dying_insert
            provider = CryptoProvider(MASTER_KEY, paillier_bits=384)
            loader = EncryptedLoader(build_sales_db(), provider)
            loader.load_into(
                backend, design, journal=sys.argv[3], batch_rows=64
            )
            raise SystemExit("load finished without crashing")
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop(CHAOS_ENV, None)
        proc = subprocess.run(
            [sys.executable, "-c", child, str(design_file), str(db_file),
             str(journal_dir)],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 137, proc.stderr

        journal = LoadJournal(journal_dir)
        assert not journal.complete
        assert journal.rows_recorded("customer") == 30

        # Resume in this process: a fresh backend over the same file and
        # a fresh loader (keys re-derived from the master key, exactly as
        # a restarted load daemon would).
        resumed = make_backend("sqlite", name="crash", path=str(db_file))
        # The kill hit after the insert committed but before the journal
        # append, so the backend is one batch *ahead* of the journal —
        # resume must trust the backend's committed count, not the
        # journal's trailing watermark.
        committed_before = resumed.row_count("orders")
        assert 0 < committed_before < 240
        assert committed_before >= journal.rows_recorded("orders")
        inserts = {"n": 0}
        real_insert = resumed.insert_rows

        def counting_insert(table, rows):
            inserts["n"] += 1
            rows = list(rows)
            assert all(len(row) > 0 for row in rows)
            return real_insert(table, rows)

        resumed.insert_rows = counting_insert
        EncryptedLoader(sales_db, provider).load_into(
            resumed, sales_client.design, journal=journal_dir, batch_rows=64
        )
        # Only the uncommitted orders batches were (re-)encrypted and
        # inserted: 240 rows minus what survived the kill, in 64-row
        # batches — never the already-committed work.
        expected = -(-(240 - committed_before) // 64)
        assert inserts["n"] == expected
        assert LoadJournal(journal_dir).complete

        reference = self._reference_backend(sales_client, provider, tmp_path)
        self._assert_stores_equal(sales_client, reference, resumed)

        # The resumed store decrypts correctly end to end, with the same
        # primary ledger bytes as the fault-free in-memory client.
        client = MonomiClient(
            sales_client.plain_db,
            sales_client.design,
            provider,
            resumed,
            sales_client.flags,
            sales_client.network,
            sales_client.disk,
            streaming=sales_client.streaming,
        )
        for sql in SALES_WORKLOAD[:3]:
            expected_outcome = sales_client.execute(sql)
            outcome = client.execute(sql)
            assert canonical(outcome.rows) == canonical(expected_outcome.rows)
            assert _primary(outcome.ledger) == _primary(expected_outcome.ledger)

    def test_saved_hom_files_skip_paillier_reencryption(
        self, sales_client, sales_db, provider, tmp_path, monkeypatch
    ):
        """Packed Paillier files persisted by the journal are reused: a
        resume into an empty backend re-inserts rows but must never rerun
        the (expensive) Paillier packing."""
        completed = _fresh_design(sales_client)
        if not completed.hom_groups:
            pytest.skip("sales design carries no homomorphic groups")
        journal_dir = tmp_path / "journal"
        first = make_backend(
            "sqlite", name="a", path=str(tmp_path / "first.db")
        )
        loader = EncryptedLoader(sales_db, provider)
        loader.load_into(
            first, sales_client.design, journal=journal_dir, batch_rows=64
        )
        saved = [
            e["file"] for e in LoadJournal(journal_dir).events
            if e["event"] == "hom_saved"
        ]
        assert saved

        def no_paillier(*args, **kwargs):
            raise AssertionError("Paillier packing ran again on resume")

        monkeypatch.setattr(provider, "paillier_encrypt_batch", no_paillier)
        second = make_backend(
            "sqlite", name="b", path=str(tmp_path / "second.db")
        )
        EncryptedLoader(sales_db, provider).load_into(
            second, sales_client.design, journal=journal_dir, batch_rows=64
        )
        store = second.ciphertext_store
        for name in saved:
            assert name in store.names()

    def test_resume_with_wrong_design_is_rejected(
        self, sales_client, sales_db, provider, tmp_path
    ):
        journal_dir = tmp_path / "journal"
        backend = make_backend(
            "sqlite", name="a", path=str(tmp_path / "a.db")
        )
        loader = EncryptedLoader(sales_db, provider)
        loader.load_into(
            backend, sales_client.design, journal=journal_dir, batch_rows=64
        )
        other = sales_client.design.copy()
        other.add("orders", parse(
            "SELECT o_orderkey FROM orders").items[0].expr, Scheme.OPE)
        fresh = make_backend("sqlite", name="b", path=str(tmp_path / "b.db"))
        with pytest.raises(LoadJournalError):
            loader.load_into(fresh, other, journal=journal_dir, batch_rows=64)


class TestErrorTaxonomy:
    def test_transient_hierarchy(self):
        from repro.common.errors import (
            BackendBusyError,
            TruncatedStreamError,
        )

        for cls in (InjectedFaultError, BackendBusyError, TruncatedStreamError):
            assert issubclass(cls, TransientError)
        for cls in (DeadlineExceededError, LoadJournalError):
            assert not issubclass(cls, TransientError)
