"""Subprocess driver for the network concurrency soak test.

Not a test module (pytest collects ``test_*.py`` only): the soak test
launches N copies of this script, each a separate OS process holding its
own :class:`RemoteBackend` connections to the server under test.  Each
process opens a service with M sessions and pushes a mixed ad-hoc +
prepared workload through them concurrently, verifying every result
against the expected canonical rows pickled by the parent.  Exit status
0 means every query in every session matched; anything else fails the
soak with this process's traceback on stderr.

Usage: python soak_client.py <state.pickle> <host:port> <sessions> <repeats>
"""

from __future__ import annotations

import pickle
import sys

from repro.core.client import MonomiClient
from repro.net.client import RemoteBackend
from repro.testkit import canonical

PREPARED_TEMPLATE = (
    "SELECT o_custkey, SUM(o_price) AS rev FROM orders "
    "WHERE o_price > :p GROUP BY o_custkey"
)
PREPARED_VALUES = (400, 1500, 3000)


def main() -> int:
    state_path, address, sessions_text, repeats_text = sys.argv[1:5]
    sessions_count = int(sessions_text)
    repeats = int(repeats_text)
    with open(state_path, "rb") as handle:
        state = pickle.load(handle)

    backend = RemoteBackend(address)
    client = MonomiClient(
        state["plain_db"],
        state["design"],
        state["provider"],
        backend,
        state["flags"],
        state["network"],
        state["disk"],
        streaming=state["streaming"],
    )
    expected_adhoc: dict[str, list[str]] = state["expected_adhoc"]
    expected_prepared: dict[int, list[str]] = state["expected_prepared"]

    with client.service(workers=sessions_count) as service:
        sessions = [service.open_session() for _ in range(sessions_count)]
        statement = service.prepare(PREPARED_TEMPLATE)
        futures = []
        for _ in range(repeats):
            for session in sessions:
                for sql in expected_adhoc:
                    futures.append(("adhoc", sql, session.submit(sql)))
            for value in PREPARED_VALUES:
                futures.append(
                    (
                        "prepared",
                        value,
                        service.submit_prepared(statement, {"p": value}),
                    )
                )
        for kind, key, future in futures:
            outcome = future.result()
            want = (
                expected_adhoc[key]
                if kind == "adhoc"
                else expected_prepared[key]
            )
            if canonical(outcome.rows) != want:
                raise AssertionError(f"{kind} result mismatch for {key!r}")
    client.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
