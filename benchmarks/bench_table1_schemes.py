"""Table 1: encryption schemes, the SQL operations they enable, leakage.

Not a timing benchmark — a live verification that each scheme supports
exactly the operations the paper's Table 1 claims, executed over real
ciphertexts, plus microbenchmarks of each scheme's encrypt/decrypt.
"""

from __future__ import annotations


from conftest import write_report

from repro.core import CryptoProvider, SCHEME_TABLE


def test_table1_schemes(benchmark):
    provider = CryptoProvider(b"table1-key-0123456789abcdef", paillier_bits=384)

    def verify():
        checks = []
        # DET: equality / grouping.
        a, b = provider.det_encrypt(42), provider.det_encrypt(42)
        c = provider.det_encrypt(43)
        checks.append(("DET", "a = const, GROUP BY", a == b and a != c))
        # OPE: order.
        lo, hi = provider.ope_encrypt(10), provider.ope_encrypt(20)
        checks.append(("OPE", "a > const, ORDER BY", lo < hi))
        # HOM: addition.
        pub, priv = provider.paillier_public, provider.paillier_private
        total = priv.decrypt(pub.add(pub.encrypt(30), pub.encrypt(12)))
        checks.append(("HOM", "a + b, SUM(a)", total == 42))
        # SEARCH: LIKE.
        tags = provider.search_encrypt("quick brown fox")
        trapdoor = provider.search_trapdoor("%brown%")
        checks.append(("SEARCH", "a LIKE pattern", trapdoor in tags))
        # RND: no deterministic structure.
        r1, r2 = provider.rnd_encrypt(7), provider.rnd_encrypt(7)
        checks.append(("RND", "none (fetch-only)", r1 != r2))
        return checks

    checks = benchmark.pedantic(verify, rounds=1, iterations=1)

    lines = ["| scheme | operations verified | leakage (Table 1) | ok |", "|---|---|---|---|"]
    leakage = {s.value.upper(): info.leakage for s, info in SCHEME_TABLE.items()}
    for name, ops, ok in checks:
        lines.append(f"| {name} | {ops} | {leakage[name]} | {'yes' if ok else 'NO'} |")
    write_report("table1_schemes", "Table 1 — scheme/operation/leakage matrix", lines)
    assert all(ok for _, _, ok in checks)
