"""Batch-pipeline benchmark: before/after numbers for the columnar rewrite.

Measures the three throughput-bound stages the paper cares about (load-time
bulk encryption, server-side aggregation, client-side result decryption)
twice each:

* **before** — faithful replicas of the seed's scalar paths: row-at-a-time
  loading with per-value scheme dispatch and full-width Paillier
  randomness, the tree-walking expression interpreter
  (``Executor(use_compiled=False)``), and per-value client decryption with
  textbook (non-CRT) Paillier;
* **after** — the shipped batch pipeline: columnar loading through the
  ``*_batch`` provider APIs and the fixed-base encryption pool, compiled
  expressions, and transposed client decryption with CRT Paillier.

Writes ``BENCH_PR1.json`` (repo root by default) so the perf trajectory is
tracked from this PR onward.  Run:

    PYTHONPATH=src python benchmarks/bench_batch_pipeline.py          # full
    PYTHONPATH=src python benchmarks/bench_batch_pipeline.py --quick  # CI smoke

Quick mode shrinks keys and data so the whole script takes seconds; it
still asserts scalar/batch equivalence, but skips the speedup thresholds
(tiny keys deflate the Paillier share of the work).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.common.errors import DesignError
from repro.core import CryptoProvider, Scheme
from repro.core.design import HomGroup, PhysicalDesign
from repro.core.encdata import LRUCache
from repro.core.loader import (
    ROW_ID_COLUMN,
    EncryptedLoader,
    complete_design,
    server_column_type,
)
from repro.core.pexec import PlanExecutor
from repro.core.plan import DecryptSpec, RemoteRelation
from repro.core.typing import infer_type
from repro.crypto.packing import PackedLayout
from repro.engine.aggregates import HomAggResult
from repro.engine.catalog import Database
from repro.engine.eval import Env, EvalContext, Scope, evaluate
from repro.engine.executor import Executor, ResultSet
from repro.engine.schema import ColumnDef, TableSchema
from repro.sql import parse, parse_expression
from repro.storage.ciphertext_store import CiphertextFile
from repro.testkit import MASTER_KEY, build_sales_db, canonical

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

ENGINE_QUERIES = [
    "SELECT o_custkey, SUM(o_price * o_qty) AS rev, COUNT(*) AS n FROM orders "
    "WHERE o_price > 500 GROUP BY o_custkey ORDER BY rev DESC",
    "SELECT c_segment, SUM(o_price) AS total, COUNT(*) AS n FROM orders, customer "
    "WHERE o_custkey = c_custkey AND o_date >= DATE '1995-06-01' GROUP BY c_segment",
    "SELECT o_orderkey, o_price FROM orders WHERE o_price BETWEEN 100 AND 900 "
    "AND o_comment LIKE '%brown%' ORDER BY o_price LIMIT 50",
]


def reset_caches(provider: CryptoProvider) -> None:
    """Empty the memoization caches so scalar/batch timings start equal."""
    provider._det_cache = LRUCache(provider.cache_size)
    provider._ope_cache = LRUCache(provider.cache_size)
    provider._ope_dec_cache = LRUCache(provider.cache_size)


def build_design() -> PhysicalDesign:
    design = PhysicalDesign()
    design.add("orders", "o_price", Scheme.OPE)
    design.add("orders", "o_date", Scheme.OPE)
    design.add_hom_group(
        HomGroup(
            table="orders",
            expr_sqls=("o_price", "o_qty", "o_price * o_qty"),
            rows_per_ciphertext=16,
        )
    )
    return design


# ---------------------------------------------------------------------------
# "Before": the seed's scalar loader, replicated verbatim
# ---------------------------------------------------------------------------


def scalar_load(plain_db: Database, provider: CryptoProvider, design: PhysicalDesign) -> Database:
    """Row-at-a-time load with per-value scheme dispatch — the seed path."""
    design = complete_design(design, plain_db)
    server = Database(name=f"{plain_db.name}_enc_scalar")
    for table_name in sorted(plain_db.tables):
        plain = plain_db.table(table_name)
        schemas = {table_name: plain.schema}
        entries = [
            e for e in design.table_entries(table_name) if e.scheme is not Scheme.HOM
        ]
        hom_groups = [g for g in design.hom_groups if g.table == table_name]
        columns: list[ColumnDef] = []
        exprs = []
        for entry in entries:
            expr = parse_expression(entry.expr_sql)
            plain_type = infer_type(expr, schemas)
            columns.append(
                ColumnDef(entry.column_name, server_column_type(entry, plain_type))
            )
            exprs.append(expr)
        if hom_groups:
            columns.append(ColumnDef(ROW_ID_COLUMN, "int"))
        enc_table = server.create_table(
            TableSchema(name=table_name, columns=tuple(columns))
        )
        scope = Scope([(table_name, c) for c in plain.schema.column_names])
        ctx = EvalContext()
        for row_id, row in enumerate(plain.rows):
            env = Env(scope, row)
            values: list[object] = []
            for entry, expr in zip(entries, exprs):
                plain_value = evaluate(expr, env, ctx)
                if entry.scheme is Scheme.SEARCH:
                    values.append(provider.search_encrypt(plain_value))
                else:
                    values.append(provider.encrypt(plain_value, entry.scheme.value))
            if hom_groups:
                values.append(row_id)
            enc_table.insert(tuple(values))
        for group in hom_groups:
            _scalar_load_hom_group(server, group, plain, scope, provider)
    return server


def _scalar_load_hom_group(server, group, plain, scope, provider) -> None:
    ctx = EvalContext()
    exprs = [parse_expression(sql) for sql in group.expr_sqls]
    matrix: list[list[int]] = []
    for row in plain.rows:
        env = Env(scope, row)
        values = []
        for expr in exprs:
            value = evaluate(expr, env, ctx)
            if value is None:
                value = 0
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise DesignError(f"bad homomorphic value {value!r}")
            values.append(value)
        matrix.append(values)
    column_bits = tuple(
        max(1, max((row[i] for row in matrix), default=0).bit_length())
        for i in range(len(exprs))
    )
    pad_bits = max(4, plain.num_rows.bit_length())
    public = provider.paillier_public
    layout = PackedLayout(
        column_bits=column_bits,
        pad_bits=pad_bits,
        plaintext_bits=public.plaintext_bits,
    )
    rows_per_ct = min(group.rows_per_ciphertext, layout.rows_per_ciphertext)
    layout = PackedLayout(
        column_bits=column_bits,
        pad_bits=pad_bits,
        plaintext_bits=min(public.plaintext_bits, layout.row_bits * rows_per_ct),
    )
    file = CiphertextFile(
        name=group.file_name + "_scalar",
        public_key=public,
        layout=layout,
        column_names=group.expr_sqls,
        num_rows=plain.num_rows,
    )
    for start in range(0, len(matrix), rows_per_ct):
        chunk = matrix[start : start + rows_per_ct]
        # Seed path: fresh full-width randomness per ciphertext.
        file.ciphertexts.append(public.encrypt(layout.encode_rows(chunk)))
    server.ciphertext_store.add(file)


# ---------------------------------------------------------------------------
# "Before": the seed's per-value client decryption, replicated verbatim
# ---------------------------------------------------------------------------


def scalar_decrypt_rows(provider, specs, result: ResultSet):
    columns: list[str] = []
    for spec in specs:
        columns.extend(spec.output_names)
    rows: list[tuple] = []
    for row in result.rows:
        out: list[object] = []
        for spec, value in zip(specs, row):
            out.extend(_scalar_decrypt_value(provider, spec, value))
        rows.append(tuple(out))
    return columns, rows


def _scalar_decrypt_value(provider, spec, value):
    if spec.kind == "plain":
        return [value]
    if spec.kind in ("det", "ope", "rnd"):
        return [provider.decrypt(value, spec.kind, spec.sql_type)]
    if spec.kind == "grp":
        if value is None:
            return [[]]
        return [
            [provider.decrypt(e, spec.elem_kind, spec.sql_type) for e in value]
        ]
    if spec.kind == "hom":
        return _scalar_decrypt_hom(provider, spec, value)
    raise ValueError(f"unknown decrypt spec kind {spec.kind!r}")


def _scalar_decrypt_hom(provider, spec, value):
    width = len(spec.hom_output_names)
    if value is None:
        return [None] * width
    layout = value.layout
    totals = [0] * width
    saw_any = False
    private = provider.paillier_private
    if value.product is not None:
        # Seed decryption: the textbook (non-CRT) lambda/mu form.
        sums = layout.decode_column_sums(private.decrypt_textbook(value.product))
        totals = [t + s for t, s in zip(totals, sums)]
        saw_any = True
    for ciphertext, offsets in value.partials:
        plaintext = layout.decode_rows(
            private.decrypt_textbook(ciphertext), layout.rows_per_ciphertext
        )
        for offset in offsets:
            for c in range(width):
                totals[c] += plaintext[offset][c]
        saw_any = True
    if not saw_any:
        return [None] * width
    return list(totals)


# ---------------------------------------------------------------------------
# Benchmark sections
# ---------------------------------------------------------------------------


def bench_load(db, provider, results: dict) -> None:
    design = build_design()

    reset_caches(provider)
    start = time.perf_counter()
    scalar_server = scalar_load(db, provider, design)
    scalar_seconds = time.perf_counter() - start

    reset_caches(provider)
    start = time.perf_counter()
    batch_server = EncryptedLoader(db, provider).load(design)
    batch_seconds = time.perf_counter() - start

    # Equivalence: deterministic schemes must agree column-for-column.
    checked = 0
    for name, table in batch_server.tables.items():
        scalar_table = scalar_server.table(name)
        for i, col in enumerate(table.schema.columns):
            if col.name.endswith(("_det", "_ope")) or col.name == ROW_ID_COLUMN:
                ours = [row[i] for row in table.rows]
                theirs = [row[i] for row in scalar_table.rows]
                assert ours == theirs, f"load mismatch in {name}.{col.name}"
                checked += 1
    assert checked > 0, "no deterministic columns compared"
    # Paillier files: same plaintexts under fresh randomness.
    for file_name in batch_server.ciphertext_store.names():
        file = batch_server.ciphertext_store.get(file_name)
        twin = scalar_server.ciphertext_store.get(file_name + "_scalar")
        assert provider.paillier_decrypt_batch(file.ciphertexts) == [
            provider.paillier_private.decrypt_textbook(c) for c in twin.ciphertexts
        ], f"hom plaintext mismatch in {file_name}"

    hom_cts = sum(
        len(batch_server.ciphertext_store.get(n).ciphertexts)
        for n in batch_server.ciphertext_store.names()
    )
    results["load"] = {
        "rows": sum(t.num_rows for t in db.tables.values()),
        "hom_ciphertexts": hom_cts,
        "scalar_seconds": round(scalar_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "speedup": round(scalar_seconds / batch_seconds, 2),
    }


def bench_engine(engine_db, repeats: int, results: dict) -> None:
    queries = [parse(sql) for sql in ENGINE_QUERIES]
    interpreted = Executor(engine_db, use_compiled=False)
    compiled = Executor(engine_db, use_compiled=True)

    for query in queries:  # Warm-up + equivalence.
        assert canonical(interpreted.execute(query).rows) == canonical(
            compiled.execute(query).rows
        )

    start = time.perf_counter()
    for _ in range(repeats):
        for query in queries:
            interpreted.execute(query)
    interpreted_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(repeats):
        for query in queries:
            compiled.execute(query)
    compiled_seconds = time.perf_counter() - start

    results["server_aggregation"] = {
        "rows": sum(t.num_rows for t in engine_db.tables.values()),
        "queries": len(queries),
        "repeats": repeats,
        "interpreted_seconds": round(interpreted_seconds, 4),
        "compiled_seconds": round(compiled_seconds, 4),
        "speedup": round(interpreted_seconds / compiled_seconds, 2),
    }


def bench_client_decrypt(provider, num_rows: int, results: dict) -> None:
    import random

    rng = random.Random(7)
    public = provider.paillier_public
    layout = PackedLayout(
        column_bits=(34, 34), pad_bits=10, plaintext_bits=public.plaintext_bits
    )
    group_rows = layout.rows_per_ciphertext

    det_ints = [rng.randint(-(10 ** 6), 10 ** 6) for _ in range(num_rows)]
    det_texts = [f"Customer#{rng.randint(0, 10 ** 6):07d}" for _ in range(num_rows)]
    ope_ints = [rng.randint(0, 10 ** 6) for _ in range(num_rows)]
    rnd_vals = [rng.randint(0, 10 ** 9) for _ in range(num_rows)]
    hom_plain = [
        [[rng.randint(0, 10 ** 9), rng.randint(0, 10 ** 9)] for _ in range(group_rows)]
        for _ in range(num_rows)
    ]

    hom_column = [
        HomAggResult(
            file_name="bench_hom",
            column_names=("sum_a", "sum_b"),
            product=ct,
            partials=(),
            multiplications=group_rows - 1,
            ciphertext_bytes=public.ciphertext_bytes,
            layout=layout,
        )
        for ct in provider.paillier_encrypt_batch(
            [layout.encode_rows(rows) for rows in hom_plain]
        )
    ]
    server_rows = list(
        zip(
            provider.det_encrypt_batch(det_ints),
            provider.det_encrypt_batch(det_texts),
            provider.ope_encrypt_batch(ope_ints),
            provider.rnd_encrypt_batch(rnd_vals),
            hom_column,
        )
    )
    specs = [
        DecryptSpec("det", "c_int", "int"),
        DecryptSpec("det", "c_name", "text"),
        DecryptSpec("ope", "c_ope", "int"),
        DecryptSpec("rnd", "c_rnd", "int"),
        DecryptSpec(
            "hom",
            "",
            hom_output_names=("sum_a", "sum_b"),
            hom_expr_sqls=("a", "b"),
        ),
    ]
    result = ResultSet([spec.output_name or "hom" for spec in specs], server_rows)
    relation = RemoteRelation(alias="bench", query=None, specs=specs)

    reset_caches(provider)
    start = time.perf_counter()
    scalar_columns, scalar_rows = scalar_decrypt_rows(provider, specs, result)
    scalar_seconds = time.perf_counter() - start

    executor = PlanExecutor(Database("bench_server"), provider)
    reset_caches(provider)
    start = time.perf_counter()
    batch_columns, batch_rows = executor._decrypt_rows(relation, result)
    batch_seconds = time.perf_counter() - start

    assert batch_columns == scalar_columns
    assert batch_rows == scalar_rows
    expected_sums = [
        tuple(sum(row[c] for row in rows) for c in range(2)) for rows in hom_plain
    ]
    assert [(r[-2], r[-1]) for r in batch_rows] == expected_sums

    results["client_decrypt"] = {
        "rows": num_rows,
        "specs": [s.kind for s in specs],
        "scalar_seconds": round(scalar_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "speedup": round(scalar_seconds / batch_seconds, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke: tiny keys/data")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_PR1.json"))
    args = parser.parse_args(argv)

    if args.quick:
        paillier_bits, load_orders, engine_orders, decrypt_rows, repeats = (
            384, 150, 600, 30, 1,
        )
    else:
        paillier_bits, load_orders, engine_orders, decrypt_rows, repeats = (
            2048, 900, 4000, 100, 3,
        )

    print(f"[bench] generating data (quick={args.quick}) ...", flush=True)
    load_db = build_sales_db(num_orders=load_orders)
    engine_db = build_sales_db(num_orders=engine_orders)

    print(f"[bench] Paillier keygen at {paillier_bits} bits ...", flush=True)
    start = time.perf_counter()
    provider = CryptoProvider(MASTER_KEY, paillier_bits=paillier_bits)
    keygen_seconds = time.perf_counter() - start

    results: dict = {
        "meta": {
            "benchmark": "bench_batch_pipeline",
            "pr": 1,
            "quick": args.quick,
            "paillier_bits": paillier_bits,
            "keygen_seconds": round(keygen_seconds, 2),
            "python": sys.version.split()[0],
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        }
    }

    print("[bench] load: scalar vs columnar batch ...", flush=True)
    bench_load(load_db, provider, results)
    print(f"  -> {results['load']}", flush=True)

    print("[bench] server aggregation: interpreted vs compiled ...", flush=True)
    bench_engine(engine_db, repeats, results)
    print(f"  -> {results['server_aggregation']}", flush=True)

    print("[bench] client decrypt: scalar/textbook vs batch/CRT ...", flush=True)
    bench_client_decrypt(provider, decrypt_rows, results)
    print(f"  -> {results['client_decrypt']}", flush=True)

    if not args.quick:
        # Acceptance thresholds for this PR (ISSUE 1).
        assert results["client_decrypt"]["speedup"] >= 3.0, results["client_decrypt"]
        assert results["load"]["speedup"] >= 2.0, results["load"]

    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"[bench] wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
