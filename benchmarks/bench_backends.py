"""Backend benchmark: split plans on the in-memory engine vs real SQLite.

Loads the same encrypted design into both untrusted-server backends and
runs the sales workload (plus TPC-H-shaped extras) on each, recording:

* **load seconds** — encrypt once, then bulk-insert into each backend
  (encryption cost is shared; the delta is pure backend write path);
* **per-query wall seconds** and the ledger's three cost components
  (server / transfer / client) per backend;
* **agreement** — the harness *asserts* both backends return identical
  plaintext rows and identical ledger byte counts for every query, so a
  backend divergence fails the benchmark (and CI) loudly.

Writes ``BENCH_PR2.json`` (repo root by default).  Run:

    PYTHONPATH=src python benchmarks/bench_backends.py          # full
    PYTHONPATH=src python benchmarks/bench_backends.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.common.ledger import DiskModel, NetworkModel
from repro.core import (
    CryptoProvider,
    EncryptedLoader,
    MonomiClient,
    TechniqueFlags,
    normalize_query,
)
from repro.engine import Executor
from repro.server import BACKEND_KINDS, make_backend
from repro.sql import parse
from repro.testkit import MASTER_KEY, SALES_WORKLOAD, build_sales_db, canonical

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

EXTRA_QUERIES = [
    # Aggregate + HAVING alias (the paper's §3 example shape).
    "SELECT o_custkey, SUM(o_price) AS total FROM orders GROUP BY o_custkey "
    "HAVING total > 5000 ORDER BY total DESC",
    # Join + group (Q3 shape).
    "SELECT c_nation, COUNT(*) AS n, SUM(o_qty) FROM orders, customer "
    "WHERE o_custkey = c_custkey AND o_date < DATE '1996-06-01' "
    "GROUP BY c_nation ORDER BY n DESC, c_nation",
    # Multi-round-trip DET IN-set plan (Q18 shape).
    "SELECT o_orderkey, o_price FROM orders WHERE o_custkey IN "
    "(SELECT o_custkey FROM orders GROUP BY o_custkey HAVING SUM(o_qty) > 140) "
    "ORDER BY o_orderkey LIMIT 25",
    # SEARCH predicate.
    "SELECT o_status, COUNT(*) FROM orders WHERE o_comment LIKE '%brown%' "
    "GROUP BY o_status ORDER BY o_status",
    # MIN/MAX via OPE with grp() fallback.
    "SELECT o_custkey, MIN(o_price), MAX(o_price) FROM orders "
    "GROUP BY o_custkey ORDER BY o_custkey LIMIT 8",
]


def build_clients(num_orders: int, paillier_bits: int):
    """One shared key chain and design; one client per backend kind.

    The designer runs once and a throwaway load warms the provider's
    DET/OPE caches and Paillier pool, so the timed per-backend loads
    compare the backend *write paths* (insert_many vs executemany) rather
    than cold-cache encryption.
    """
    db = build_sales_db(num_orders=num_orders)
    provider = CryptoProvider(MASTER_KEY, paillier_bits=paillier_bits)
    warmup = MonomiClient.setup(
        db,
        SALES_WORKLOAD,
        master_key=MASTER_KEY,
        paillier_bits=paillier_bits,
        space_budget=2.5,
        provider=provider,
    )
    design = warmup.design
    flags = TechniqueFlags()
    network, disk = NetworkModel(), DiskModel()
    clients: dict[str, MonomiClient] = {}
    load_seconds: dict[str, float] = {}
    for kind in BACKEND_KINDS:
        backend = make_backend(kind, name=f"{db.name}_enc")
        start = time.perf_counter()
        EncryptedLoader(db, provider).load_into(backend, design)
        load_seconds[kind] = time.perf_counter() - start
        clients[kind] = MonomiClient(
            db, design, provider, backend, flags, network, disk
        )
    return db, clients, load_seconds


def bench_queries(db, clients, repeats: int, results: dict) -> None:
    plain = Executor(db)
    per_query: list[dict] = []
    for sql in SALES_WORKLOAD + EXTRA_QUERIES:
        query = normalize_query(parse(sql))
        expected = canonical(plain.execute(query).rows)
        entry: dict = {"sql": sql, "backends": {}}
        baseline = None
        for kind, client in clients.items():
            best = float("inf")
            outcome = None
            for _ in range(repeats):
                start = time.perf_counter()
                outcome = client.execute(query)
                best = min(best, time.perf_counter() - start)
            assert canonical(outcome.rows) == expected, (
                f"backend {kind!r} diverged from plaintext on {sql!r}"
            )
            ledger = outcome.ledger
            if baseline is None:
                baseline = (ledger.transfer_bytes, ledger.server_bytes_scanned)
            else:
                assert baseline == (
                    ledger.transfer_bytes,
                    ledger.server_bytes_scanned,
                ), f"backend {kind!r} ledger bytes diverged on {sql!r}"
            entry["backends"][kind] = {
                "wall_seconds": round(best, 6),
                "server_seconds": round(ledger.server_seconds, 6),
                "transfer_bytes": ledger.transfer_bytes,
                "client_seconds": round(ledger.client_seconds, 6),
                "rows": len(outcome.rows),
            }
        per_query.append(entry)
    results["queries"] = per_query
    for kind in clients:
        walls = [q["backends"][kind]["wall_seconds"] for q in per_query]
        results["summary"][kind]["total_query_seconds"] = round(sum(walls), 6)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke: tiny keys/data")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_PR2.json"))
    args = parser.parse_args(argv)

    num_orders = 80 if args.quick else 600
    paillier_bits = 256 if args.quick else 768
    repeats = 1 if args.quick else 3

    print(f"[bench_backends] orders={num_orders} paillier={paillier_bits} bits")
    db, clients, load_seconds = build_clients(num_orders, paillier_bits)

    results: dict = {
        "benchmark": "bench_backends",
        "mode": "quick" if args.quick else "full",
        "num_orders": num_orders,
        "paillier_bits": paillier_bits,
        "summary": {
            kind: {
                "load_seconds": round(load_seconds[kind], 6),
                "server_bytes": clients[kind].server_bytes(),
            }
            for kind in clients
        },
    }
    bench_queries(db, clients, repeats, results)

    for kind, client in clients.items():
        print(
            f"  {kind:>7}: load {load_seconds[kind]:.2f}s, "
            f"queries {results['summary'][kind]['total_query_seconds']:.3f}s, "
            f"server {client.server_bytes()} bytes"
        )
    print("  backends agree on all plaintexts and ledger byte counts")

    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"[bench_backends] wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
