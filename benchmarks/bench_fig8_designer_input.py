"""Figure 8: how many (well-chosen) designer input queries are needed.

For each k the harness picks the best k-query subset by the designer's own
cost estimate (the paper enumerates all n-choose-k subsets), materializes
that design, and measures the full 19-query workload on it.

Paper shape: k = 0 effectively times out; by k = 4 the workload matches
the full-input design; the §8.1 designer setup time (52 s in the paper) is
reported alongside.
"""

from __future__ import annotations

import time
from itertools import combinations

from conftest import PAILLIER_BITS, write_report

from repro.core import MonomiClient
from repro.core.candidates import base_design_for_plain
from repro.core.designer import Designer
from repro.core.encdata import CryptoProvider
from repro.core.normalize import normalize_query
from repro.sql import parse

UNPLANNABLE_PENALTY = 1e6
K_VALUES = (0, 1, 2, 3, 4)


def test_fig8_designer_input(tpch_env, benchmark):
    def run_figure():
        provider = CryptoProvider(b"monomi-master-key", paillier_bits=PAILLIER_BITS)
        designer = Designer(tpch_env.plain_db, provider, network=tpch_env.network)
        queries = [normalize_query(parse(sql)) for sql in tpch_env.workload]

        setup_start = time.perf_counter()
        full = designer.design_ilp(queries, space_budget=2.0)
        setup_seconds = time.perf_counter() - setup_start

        # Bitmask candidate tables for fast subset-cost evaluation.  DET
        # copies of plain columns are *free* items — the loader's fallback
        # stores them regardless of the workload — so they are granted to
        # every design.
        from repro.core.schemes import Scheme

        item_index: dict = {}
        free_mask = 0
        tables = []
        for query in queries:
            entries = []
            for candidate in designer.candidates_for(query):
                mask = 0
                for key in candidate.item_keys:
                    if key not in item_index:
                        item_index[key] = len(item_index)
                        kind, payload = key
                        if (
                            kind == "pair"
                            and payload.scheme is Scheme.DET
                            and "(" not in payload.expr_sql
                            and " " not in payload.expr_sql
                        ):
                            free_mask |= 1 << item_index[key]
                    mask |= 1 << item_index[key]
                entries.append((candidate.cost, mask, candidate))
            entries.sort(key=lambda e: e[0])
            tables.append(entries)

        def workload_cost(design_mask: int) -> float:
            design_mask |= free_mask
            total = 0.0
            for entries in tables:
                for cost, mask, _ in entries:
                    if mask & ~design_mask == 0:
                        total += cost
                        break
                else:
                    total += UNPLANNABLE_PENALTY
            return total

        best_masks = [entries[0][1] for entries in tables]  # §6.2 best per query.
        results = []
        for k in K_VALUES:
            best = None
            for combo in combinations(range(len(queries)), k):
                mask = 0
                for qi in combo:
                    mask |= best_masks[qi]
                estimate = workload_cost(mask)
                if best is None or estimate < best[0]:
                    best = (estimate, combo)
            estimate, combo = best
            measured = _measure(tpch_env, designer, [queries[qi] for qi in combo])
            results.append((k, [tpch_env.numbers[qi] for qi in combo], estimate, measured))
        full_measured = _measure_design(tpch_env, full.design)
        results.append((len(queries), "all", sum(full.per_query_cost), full_measured))
        return results, setup_seconds

    results, setup_seconds = benchmark.pedantic(run_figure, rounds=1, iterations=1)

    lines = [
        f"designer (ILP) setup over the full workload: {setup_seconds:.1f}s "
        f"(paper: 52 s at scale 10)",
        "",
        "| k | chosen queries | cost estimate | measured workload (s) |",
        "|---|---|---|---|",
    ]
    for k, chosen, estimate, measured in results:
        label = ",".join(f"Q{q}" for q in chosen) if isinstance(chosen, list) else chosen
        lines.append(f"| {k} | {label or '-'} | {estimate:.1f} | {measured:.2f} |")
    lines.append("")
    lines.append(
        "- paper shape: k = 0 is catastrophic; a well-chosen k = 4 matches "
        "the full-workload design"
    )
    write_report("fig8_designer_input", "Figure 8 — designer input sensitivity", lines)

    measured = {k: m for k, _, _, m in results}
    # Shape: a good k=4 input lands within a small factor of the full
    # design (the paper matches it exactly after hand-verifying subsets;
    # our subset choice trusts the cost estimates), while k=0 is
    # catastrophic (unplannable queries "time out").
    assert measured[4] <= measured[len(tpch_env.numbers)] * 4.0
    assert measured[0] >= measured[4] * 10


def _measure(env, designer: Designer, input_queries) -> float:
    if input_queries:
        result = designer.design_greedy(list(input_queries))
        design = result.design
    else:
        design = base_design_for_plain(env.plain_db)
    return _measure_design(env, design)


def _measure_design(env, design) -> float:
    client = MonomiClient.setup(
        env.plain_db,
        env.workload,
        paillier_bits=PAILLIER_BITS,
        network=env.network,
        disk=env.disk,
        design=design,
    )
    total = 0.0
    for number in env.numbers:
        try:
            outcome = env.encrypted_outcome(client, number)
            total += outcome.ledger.total_seconds
        except Exception:
            total += UNPLANNABLE_PENALTY / 1e3  # "times out" marker.
    return total
