"""Table 2: server space requirements.

Paper (TPC-H scale 10): plaintext 17.10 GB; CryptDB+Client 4.21x;
Execution-Greedy 1.90x; MONOMI 1.72x.
"""

from __future__ import annotations

from conftest import write_report


def test_table2_space(tpch_env, benchmark):
    def run_table():
        plaintext = sum(t.total_bytes for t in tpch_env.plain_db.tables.values())
        systems = {
            "CryptDB+Client": tpch_env.cryptdb_client(),
            "Execution-Greedy": tpch_env.execution_greedy(),
            "MONOMI": tpch_env.monomi(space_budget=2.0),
        }
        return plaintext, {label: c.server_bytes() for label, c in systems.items()}

    plaintext, sizes = benchmark.pedantic(run_table, rounds=1, iterations=1)

    paper = {"CryptDB+Client": 4.21, "Execution-Greedy": 1.90, "MONOMI": 1.72}
    lines = [
        "| system | size (bytes) | relative to plaintext | paper |",
        "|---|---|---|---|",
        f"| Plaintext | {plaintext} | — | — |",
    ]
    ratios = {}
    for label, size in sizes.items():
        ratios[label] = size / plaintext
        lines.append(
            f"| {label} | {size} | {ratios[label]:.2f}x | {paper[label]:.2f}x |"
        )
    write_report("table2_space", "Table 2 — server space requirements", lines)

    # Shape: CryptDB largest, MONOMI at most Execution-Greedy, MONOMI within budget.
    assert ratios["CryptDB+Client"] > ratios["Execution-Greedy"]
    assert ratios["MONOMI"] <= ratios["Execution-Greedy"] + 0.05
    assert ratios["MONOMI"] <= 2.1
