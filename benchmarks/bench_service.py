"""Service-layer benchmark: throughput vs session count, plan-cache speedup.

Three phases over one encrypted sales database, all equivalence-asserted
against serial execution (identical plaintext rows and ledger byte
counts at every point — the sweep measures scheduling only):

* **session_sweep** — N sessions (N = 1, 2, 4, 8) each replay the sales
  workload concurrently through ``MonomiService``; reports queries/sec
  per backend.  On a 1-core host the sweep exercises the machinery
  (worker views, plan cache, per-session ledgers) without showing
  speedup — ``cpu_count`` is recorded alongside, as in BENCH_PR4.
* **plan_cache** — cold (planner runs) vs warm (cache hit) latency per
  workload query; reports the planning seconds a hit saves and verifies
  the planner is not re-invoked on the warm pass.
* **prepared** — full ad-hoc planning vs prepared-statement re-bind
  latency for a parameterized query sweep; asserts rows match ad-hoc
  execution for every parameter value.

Writes ``BENCH_PR5.json`` (repo root by default).  Run:

    PYTHONPATH=src python benchmarks/bench_service.py          # full
    PYTHONPATH=src python benchmarks/bench_service.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

from repro.core import CryptoProvider, MonomiClient
from repro.sql import parse
from repro.testkit import MASTER_KEY, SALES_WORKLOAD, build_sales_db, canonical

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

PREPARED_TEMPLATE = (
    "SELECT o_custkey, SUM(o_price) AS rev FROM orders "
    "WHERE o_price > :p GROUP BY o_custkey"
)


def ledger_bytes(ledger) -> tuple[int, int, int]:
    return (
        ledger.transfer_bytes,
        ledger.server_bytes_scanned,
        ledger.round_trips,
    )


def build_clients(num_orders: int, paillier_bits: int) -> dict[str, MonomiClient]:
    db = build_sales_db(num_orders)
    provider = CryptoProvider(MASTER_KEY, paillier_bits=paillier_bits)
    memory = MonomiClient.setup(
        db,
        SALES_WORKLOAD,
        provider=provider,
        paillier_bits=paillier_bits,
        space_budget=2.5,
    )
    sqlite = MonomiClient.setup(
        db,
        SALES_WORKLOAD,
        provider=provider,
        paillier_bits=paillier_bits,
        space_budget=2.5,
        design=memory.design,
        backend="sqlite",
    )
    return {"memory": memory, "sqlite": sqlite}


def serial_references(client) -> dict[str, tuple]:
    return {
        sql: (canonical(outcome.rows), ledger_bytes(outcome.ledger))
        for sql, outcome in (
            (sql, client.execute(sql)) for sql in SALES_WORKLOAD
        )
    }


def bench_session_sweep(
    clients: dict[str, MonomiClient], session_counts: list[int], repeats: int
) -> list[dict]:
    points = []
    for backend, client in clients.items():
        references = serial_references(client)
        for sessions in session_counts:
            with client.service(workers=sessions) as service:
                handles = [service.open_session() for _ in range(sessions)]
                # Warm the plan cache so the sweep measures execution
                # scheduling, not first-plan latency (reported separately).
                service.execute(SALES_WORKLOAD[0])
                start = time.perf_counter()
                futures = [
                    (sql, session.submit(sql))
                    for session in handles
                    for _ in range(repeats)
                    for sql in SALES_WORKLOAD
                ]
                for sql, future in futures:
                    outcome = future.result()
                    want_rows, want_ledger = references[sql]
                    assert canonical(outcome.rows) == want_rows, (backend, sql)
                    assert ledger_bytes(outcome.ledger) == want_ledger, (
                        backend,
                        sql,
                    )
                elapsed = time.perf_counter() - start
                cache = service.stats().plan_cache
            points.append(
                {
                    "backend": backend,
                    "sessions": sessions,
                    "queries": len(futures),
                    "elapsed_seconds": elapsed,
                    "queries_per_second": len(futures) / elapsed,
                    "plan_cache_hit_rate": cache.hit_rate,
                }
            )
            print(
                f"  {backend:7s} sessions={sessions}: "
                f"{points[-1]['queries_per_second']:8.1f} q/s "
                f"({len(futures)} queries in {elapsed:.2f}s, "
                f"hit rate {cache.hit_rate:.2f})"
            )
    return points


class PlannerMeter:
    """Wraps ``planner.plan`` to count invocations and time them."""

    def __init__(self, client) -> None:
        self._client = client
        self._original = client.planner.plan
        self.calls = 0
        self.seconds = 0.0

    def __enter__(self) -> "PlannerMeter":
        def timed_plan(query):
            start = time.perf_counter()
            try:
                return self._original(query)
            finally:
                self.seconds += time.perf_counter() - start
                self.calls += 1

        self._client.planner.plan = timed_plan
        return self

    def __exit__(self, *exc_info) -> None:
        self._client.planner.plan = self._original


def bench_plan_cache(client) -> dict:
    """Cold vs warm latency, with the planner component isolated.

    End-to-end latency includes execution (identical either way), so the
    headline number is the planning seconds a cache hit removes — that
    holds on any host, however fast the executor is.
    """
    with client.service(workers=1) as service:
        with PlannerMeter(client) as meter:
            cold, warm = [], []
            outcomes = {}
            for sql in SALES_WORKLOAD:
                start = time.perf_counter()
                outcomes[sql] = service.execute(sql)
                cold.append(time.perf_counter() - start)
            calls_after_cold = meter.calls
            cold_plan_seconds = meter.seconds
            for sql in SALES_WORKLOAD:
                start = time.perf_counter()
                repeat = service.execute(sql)
                warm.append(time.perf_counter() - start)
                assert canonical(repeat.rows) == canonical(outcomes[sql].rows)
                assert ledger_bytes(repeat.ledger) == ledger_bytes(
                    outcomes[sql].ledger
                )
            assert calls_after_cold == len(SALES_WORKLOAD)
            assert meter.calls == calls_after_cold  # warm pass: zero plans
            stats = service.stats().plan_cache
    result = {
        "queries": len(SALES_WORKLOAD),
        "cold_seconds": sum(cold),
        "warm_seconds": sum(warm),
        "cold_planning_seconds": cold_plan_seconds,
        "planning_seconds_saved_per_hit": cold_plan_seconds
        / len(SALES_WORKLOAD),
        "end_to_end_speedup": sum(cold) / max(sum(warm), 1e-9),
        "hits": stats.hits,
        "misses": stats.misses,
    }
    print(
        f"  plan cache: cold {result['cold_seconds']:.3f}s (planning "
        f"{cold_plan_seconds:.3f}s) -> warm {result['warm_seconds']:.3f}s; "
        f"a hit saves {result['planning_seconds_saved_per_hit'] * 1e3:.1f} "
        f"ms of planning ({stats.hits} hits / {stats.misses} misses)"
    )
    return result


def bench_prepared(client, values: list[int]) -> dict:
    with client.service(workers=1) as service:
        with PlannerMeter(client) as meter:
            adhoc_seconds = 0.0
            adhoc = {}
            for value in values:
                start = time.perf_counter()
                adhoc[value] = client.execute(PREPARED_TEMPLATE, {"p": value})
                adhoc_seconds += time.perf_counter() - start
            adhoc_plan_seconds = meter.seconds
            adhoc_calls = meter.calls
            statement = service.prepare(PREPARED_TEMPLATE)
            service.execute_prepared(statement, {"p": values[0]})  # anchor
            calls_after_anchor = meter.calls
            prepared_seconds = 0.0
            for value in values[1:]:
                start = time.perf_counter()
                outcome = service.execute_prepared(statement, {"p": value})
                prepared_seconds += time.perf_counter() - start
                assert canonical(outcome.rows) == canonical(adhoc[value].rows)
            # Fast re-binds never invoke the full planner again.
            assert meter.calls == calls_after_anchor
            assert adhoc_calls == len(values)
            stats = service.stats()
    per_adhoc = adhoc_seconds / len(values)
    per_rebind = prepared_seconds / max(len(values) - 1, 1)
    per_adhoc_plan = adhoc_plan_seconds / len(values)
    result = {
        "values": len(values),
        "adhoc_seconds_per_query": per_adhoc,
        "adhoc_planning_seconds_per_query": per_adhoc_plan,
        "rebind_seconds_per_query": per_rebind,
        "end_to_end_speedup": per_adhoc / max(per_rebind, 1e-9),
        "planning_seconds_saved_per_rebind": per_adhoc_plan,
        "fast_rebinds": stats.prepared_fast_rebinds,
        "replans": stats.prepared_replans,
    }
    print(
        f"  prepared: ad-hoc {per_adhoc * 1e3:.1f} ms/query "
        f"(planning {per_adhoc_plan * 1e3:.1f} ms) -> re-bind "
        f"{per_rebind * 1e3:.1f} ms/query; "
        f"{stats.prepared_fast_rebinds} fast re-binds, "
        f"{stats.prepared_replans} replans"
    )
    return result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    if args.quick:
        num_orders, paillier_bits = 120, 256
        session_counts, repeats = [1, 2, 4], 1
        prepared_values = [400, 900, 2200]
    else:
        num_orders, paillier_bits = 400, 512
        session_counts, repeats = [1, 2, 4, 8], 3
        prepared_values = [200, 400, 900, 1500, 2200, 3000, 4100]

    print(
        f"service benchmark: {num_orders} orders, {paillier_bits}-bit "
        f"Paillier, cpu_count={os.cpu_count()}"
    )
    clients = build_clients(num_orders, paillier_bits)
    # Parse check: the prepared template is valid before any timing runs.
    parse(PREPARED_TEMPLATE)

    print("session sweep:")
    sweep = bench_session_sweep(clients, session_counts, repeats)
    print("plan cache (memory backend):")
    plan_cache = bench_plan_cache(clients["memory"])
    print("prepared statements (memory backend):")
    prepared = bench_prepared(clients["memory"], prepared_values)

    payload = {
        "benchmark": "service",
        "mode": "quick" if args.quick else "full",
        "cpu_count": os.cpu_count(),
        "num_orders": num_orders,
        "paillier_bits": paillier_bits,
        "session_sweep": sweep,
        "plan_cache": plan_cache,
        "prepared": prepared,
    }
    out_path = pathlib.Path(args.out) if args.out else REPO_ROOT / "BENCH_PR5.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
