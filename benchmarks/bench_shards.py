"""Shard scale-out benchmark: scatter-gather over N backend stores.

One encrypted design per dataset (sales, TPC-H, SSB), loaded behind a
:class:`~repro.server.ShardedBackend` at every shard count in the sweep,
replayed in-process and over N loopback TCP shard servers.  Every point
is equivalence-asserted against the serial reference — identical
plaintext rows and identical primary ledger byte counts (transfer bytes,
server bytes scanned, round trips) at every shard count and transport;
the sweep measures scatter-gather scheduling, never results.  N=1 runs
the same coordinator code over one shard, so the merge layer itself is
in the baseline.

Writes ``BENCH_PR9.json`` (repo root by default).  Run:

    PYTHONPATH=src python benchmarks/bench_shards.py          # full
    PYTHONPATH=src python benchmarks/bench_shards.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

from repro.common.ledger import DiskModel, NetworkModel
from repro.core import (
    CryptoProvider,
    EncryptedLoader,
    MonomiClient,
    TechniqueFlags,
    normalize_query,
)
from repro.net.sharded import serve_shards
from repro.server import make_sharded_backend
from repro.sql import parse
from repro.ssb import generate as ssb_generate, ssb_queries
from repro.testkit import MASTER_KEY, SALES_WORKLOAD, build_sales_db, canonical
from repro.tpch import generate as tpch_generate, tpch_queries

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def ledger_bytes(ledger) -> tuple[int, int, int]:
    return (
        ledger.transfer_bytes,
        ledger.server_bytes_scanned,
        ledger.round_trips,
    )


class Dataset:
    """One plain database + workload + shared design and key chain."""

    def __init__(self, name: str, db, workload: list[str], paillier_bits: int):
        self.name = name
        self.db = db
        self.workload = [normalize_query(parse(sql)) for sql in workload]
        self.provider = CryptoProvider(MASTER_KEY, paillier_bits=paillier_bits)
        reference = MonomiClient.setup(
            db,
            workload,
            master_key=MASTER_KEY,
            paillier_bits=paillier_bits,
            space_budget=2.5,
            provider=self.provider,
        )
        self.design = reference.design
        self.flags = TechniqueFlags()
        self.network, self.disk = NetworkModel(), DiskModel()
        # Serial reference outcomes: the oracle every point must match.
        self.wants = {
            index: (canonical(out.rows), ledger_bytes(out.ledger))
            for index, out in (
                (i, reference.execute(q)) for i, q in enumerate(self.workload)
            )
        }

    def sharded_client(self, shards: int) -> MonomiClient:
        backend = make_sharded_backend(
            "memory", shards, name=f"{self.db.name}_enc"
        )
        EncryptedLoader(self.db, self.provider).load_into(backend, self.design)
        return MonomiClient(
            self.db,
            self.design,
            self.provider,
            backend,
            self.flags,
            self.network,
            self.disk,
        )

    def replay_and_assert(self, client: MonomiClient, repeats: int) -> dict:
        elapsed = 0.0
        queries = 0
        for _ in range(repeats):
            for index, query in enumerate(self.workload):
                begin = time.perf_counter()
                outcome = client.execute(query)
                elapsed += time.perf_counter() - begin
                queries += 1
                want_rows, want_ledger = self.wants[index]
                assert canonical(outcome.rows) == want_rows, (
                    f"{self.name} query {index} rows diverged"
                )
                assert ledger_bytes(outcome.ledger) == want_ledger, (
                    f"{self.name} query {index} ledger diverged: "
                    f"{ledger_bytes(outcome.ledger)} != {want_ledger}"
                )
        return {
            "queries": queries,
            "elapsed_seconds": elapsed,
            "queries_per_second": queries / elapsed if elapsed else 0.0,
        }


def bench_scale_out(
    dataset: Dataset, shard_counts: list[int], repeats: int
) -> tuple[list[dict], list[dict]]:
    inproc_points: list[dict] = []
    tcp_points: list[dict] = []
    for shards in shard_counts:
        client = dataset.sharded_client(shards)
        point = {
            "label": f"{dataset.name}-inproc-shards-{shards}",
            "dataset": dataset.name,
            "shards": shards,
            "transport": "inproc",
            **dataset.replay_and_assert(client, repeats),
        }
        inproc_points.append(point)
        print(
            f"  {dataset.name:6s} inproc N={shards}: "
            f"{point['queries_per_second']:7.1f} q/s "
            f"({point['elapsed_seconds']:.3f}s / {point['queries']} queries)"
        )
        backend = client.backend
        while hasattr(backend, "_parent"):  # Unwrap chaos, if armed.
            backend = backend._parent
        with serve_shards(backend) as cluster:
            remote = MonomiClient(
                dataset.db,
                dataset.design,
                dataset.provider,
                cluster.backend,
                dataset.flags,
                dataset.network,
                dataset.disk,
            )
            point = {
                "label": f"{dataset.name}-tcp-shards-{shards}",
                "dataset": dataset.name,
                "shards": shards,
                "transport": "tcp",
                **dataset.replay_and_assert(remote, repeats),
            }
            tcp_points.append(point)
            print(
                f"  {dataset.name:6s} tcp    N={shards}: "
                f"{point['queries_per_second']:7.1f} q/s "
                f"({point['elapsed_seconds']:.3f}s)"
            )
        client.close()
    return inproc_points, tcp_points


def build_datasets(quick: bool) -> list[Dataset]:
    if quick:
        num_orders, paillier_bits = 100, 256
        tpch_scale, tpch_numbers = 0.0002, (1, 6)
        ssb_scale, ssb_numbers = 0.0002, ("1.1", "2.1")
    else:
        num_orders, paillier_bits = 240, 384
        tpch_scale, tpch_numbers = 0.0003, (1, 3, 6, 12)
        ssb_scale, ssb_numbers = 0.0002, ("1.1", "2.1", "3.1", "4.1")
    tpch = tpch_queries(tpch_scale)
    ssb = ssb_queries()
    return [
        Dataset(
            "sales", build_sales_db(num_orders), SALES_WORKLOAD, paillier_bits
        ),
        Dataset(
            "tpch",
            tpch_generate(scale=tpch_scale, seed=5),
            [tpch[n].sql for n in tpch_numbers],
            paillier_bits,
        ),
        Dataset(
            "ssb",
            ssb_generate(scale=ssb_scale, seed=13),
            [ssb[n].sql for n in ssb_numbers],
            paillier_bits,
        ),
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    if args.quick:
        shard_counts, repeats = [1, 2], 1
    else:
        shard_counts, repeats = [1, 2, 4, 8], 2

    print(
        f"shard scale-out benchmark: N ∈ {shard_counts}, "
        f"cpu_count={os.cpu_count()}"
    )
    scale_out: list[dict] = []
    tcp_scale_out: list[dict] = []
    for dataset in build_datasets(args.quick):
        print(f"{dataset.name}: {len(dataset.workload)} queries")
        inproc, tcp = bench_scale_out(dataset, shard_counts, repeats)
        scale_out.extend(inproc)
        tcp_scale_out.extend(tcp)

    payload = {
        "benchmark": "shards",
        "mode": "quick" if args.quick else "full",
        "cpu_count": os.cpu_count(),
        "shard_counts": shard_counts,
        "scale_out": scale_out,
        "tcp_scale_out": tcp_scale_out,
    }
    out_path = pathlib.Path(args.out) if args.out else REPO_ROOT / "BENCH_PR9.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
