"""Figure 9: shrinking the space budget from S = 2 to S = 1.4.

Paper: both designers drop the big lineitem homomorphic column (Q1 slows
dramatically under both); Space-Greedy additionally drops a selective OPE
column and hurts Q6 badly, while the ILP spreads the pain across Q6, Q14,
and Q18 much more gently.
"""

from __future__ import annotations

from conftest import PAILLIER_BITS, write_report

from repro.core import MonomiClient


def _client(env, space_budget: float, mode: str) -> MonomiClient:
    return MonomiClient.setup(
        env.plain_db,
        env.workload,
        space_budget=space_budget,
        designer_mode=mode,
        paillier_bits=PAILLIER_BITS,
        network=env.network,
        disk=env.disk,
    )


def test_fig9_space_budget(tpch_env, benchmark):
    def run_figure():
        systems = {
            "S=2 (ILP)": tpch_env.monomi(space_budget=2.0),
            "S=1.4 Space-Greedy": _client(tpch_env, 1.4, "space_greedy"),
            "S=1.4 MONOMI (ILP)": _client(tpch_env, 1.4, "ilp"),
        }
        table: dict[str, dict[int, float]] = {}
        for label, client in systems.items():
            times = {}
            for number in tpch_env.numbers:
                try:
                    outcome = tpch_env.encrypted_outcome(client, number)
                    times[number] = outcome.ledger.total_seconds
                except Exception:
                    times[number] = float("nan")
            table[label] = times
        spaces = {label: client.space_overhead() for label, client in systems.items()}
        estimates = {
            label: client.design_result.total_cost
            for label, client in systems.items()
            if client.design_result is not None
        }
        return table, spaces, estimates

    table, spaces, estimates = benchmark.pedantic(run_figure, rounds=1, iterations=1)

    labels = list(table)
    # Queries whose runtime changed by more than 25% under either S=1.4 design.
    affected = []
    for number in tpch_env.numbers:
        base = table[labels[0]][number]
        if base != base:
            continue
        change = max(
            abs(table[label][number] - base) / max(base, 1e-9)
            for label in labels[1:]
            if table[label][number] == table[label][number]
        )
        if change > 0.25:
            affected.append(number)

    lines = [
        "| system | space overhead | " + " | ".join(f"Q{n}" for n in affected) + " |",
        "|---|---|" + "---|" * len(affected),
    ]
    for label in labels:
        cells = [label, f"{spaces[label]:.2f}x"]
        for number in affected:
            value = table[label][number]
            cells.append("n/a" if value != value else f"{value:.3f}s")
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    total_ilp = sum(v for v in table["S=1.4 MONOMI (ILP)"].values() if v == v)
    total_greedy = sum(v for v in table["S=1.4 Space-Greedy"].values() if v == v)
    est_ilp = estimates.get("S=1.4 MONOMI (ILP)")
    est_greedy = estimates.get("S=1.4 Space-Greedy")
    lines.append(
        f"- S=1.4 measured workload totals: ILP {total_ilp:.2f}s vs "
        f"Space-Greedy {total_greedy:.2f}s"
    )
    if est_ilp is not None and est_greedy is not None:
        lines.append(
            f"- S=1.4 designer cost estimates: ILP {est_ilp:.2f} vs "
            f"Space-Greedy {est_greedy:.2f} (the ILP is optimal for its "
            f"estimates; measured gaps reflect estimation error, which at "
            f"sub-second query times is dominated by interpreter noise)"
        )
    lines.append(
        "- paper: both drop the largest lineitem homomorphic column; "
        "Space-Greedy also drops the OPE column Q6 needs"
    )
    write_report("fig9_space_budget", "Figure 9 — space budget S=2 vs S=1.4", lines)

    assert spaces["S=1.4 MONOMI (ILP)"] <= 2.0  # Budget respected (with margin).
    if est_ilp is not None and est_greedy is not None:
        # The ILP never picks a design it *estimates* worse than Space-Greedy's.
        assert est_ilp <= est_greedy * 1.001
