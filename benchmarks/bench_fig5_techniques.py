"""Figure 5: aggregate runtime as §5's techniques stack up cumulatively.

Configurations (each adds one technique to the previous):
CryptDB+Client → +Col packing → +Precomputation → +Columnar agg →
+Other (pre-filtering) → +Planner.

Paper shape: both the mean and the geometric mean fall monotonically-ish
from the CryptDB+Client level to the full MONOMI level.
"""

from __future__ import annotations

from conftest import PAILLIER_BITS, geometric_mean, write_report

from repro.core import MonomiClient, TechniqueFlags
from repro.core.encdata import CryptoProvider
from repro.core.normalize import normalize_query
from repro.sql import parse

_SHARED: dict = {}

CONFIGS = [
    ("CryptDB+Client", None),
    ("+Col packing", TechniqueFlags(True, False, False, False, False)),
    ("+Precomputation", TechniqueFlags(True, True, False, False, False)),
    ("+Columnar agg", TechniqueFlags(True, True, True, False, False)),
    ("+Other", TechniqueFlags(True, True, True, True, False)),
    ("+Planner", TechniqueFlags(True, True, True, True, True)),
]


def greedy_client(env, flags: TechniqueFlags) -> MonomiClient:
    """Greedy design (§8.3 uses greedy design/plan for the ladder)."""
    from repro.baselines import greedy_union_design

    provider = CryptoProvider(b"monomi-master-key", paillier_bits=PAILLIER_BITS)
    queries = [normalize_query(parse(sql)) for sql in env.workload]
    design = greedy_union_design(env.plain_db, provider, queries, flags, env.network)
    return MonomiClient.setup(
        env.plain_db,
        env.workload,
        flags=flags,
        paillier_bits=PAILLIER_BITS,
        network=env.network,
        disk=env.disk,
        design=design,
    )


def test_fig5_techniques(tpch_env, benchmark):
    def run_figure():
        results = []
        per_query: dict[str, dict[int, float]] = {}
        for label, flags in CONFIGS:
            if flags is None:
                client = tpch_env.cryptdb_client()
            else:
                client = greedy_client(tpch_env, flags)
            times = {}
            for number in tpch_env.numbers:
                try:
                    outcome = tpch_env.encrypted_outcome(client, number)
                    times[number] = outcome.ledger.total_seconds
                except Exception:
                    times[number] = float("nan")
            valid = [t for t in times.values() if t == t]
            results.append(
                (label, sum(valid) / len(valid), geometric_mean(valid))
            )
            per_query[label] = times
        return results, per_query

    (results, per_query) = benchmark.pedantic(run_figure, rounds=1, iterations=1)

    lines = ["| configuration | mean (s) | geometric mean (s) |", "|---|---|---|"]
    for label, mean, geomean in results:
        lines.append(f"| {label} | {mean:.3f} | {geomean:.3f} |")
    lines.append("")
    lines.append(
        "- paper shape: monotone improvement from CryptDB+Client to +Planner"
    )
    write_report("fig5_techniques", "Figure 5 — cumulative technique ladder", lines)

    # Shape: the full system beats the strawman on both aggregates.
    first_mean, last_mean = results[0][1], results[-1][1]
    first_geo, last_geo = results[0][2], results[-1][2]
    assert last_mean < first_mean
    assert last_geo < first_geo

    # Stash per-query data for Figure 6's report.
    _SHARED["per_query"] = per_query


def test_fig6_best_query(tpch_env, benchmark):
    """Figure 6: the query that benefits most from each added technique."""
    per_query = benchmark.pedantic(
        lambda: _SHARED.get("per_query"), rounds=1, iterations=1
    )
    if per_query is None:
        import pytest

        pytest.skip("fig5 must run first (same pytest session)")
    lines = ["| step | best query | before (s) | after (s) | speedup |", "|---|---|---|---|---|"]
    labels = [label for label, _ in CONFIGS]
    for prev, curr in zip(labels, labels[1:]):
        best = None
        for number in tpch_env.numbers:
            before = per_query[prev].get(number)
            after = per_query[curr].get(number)
            if before is None or after is None or before != before or after != after:
                continue
            speedup = before / max(after, 1e-9)
            if best is None or speedup > best[3]:
                best = (number, before, after, speedup)
        if best is not None:
            lines.append(
                f"| {curr} | Q{best[0]} | {best[1]:.3f} | {best[2]:.3f} | "
                f"{best[3]:.2f}x |"
            )
    lines.append("")
    lines.append(
        "- paper: Q17 gains most from +Col packing, Q1 from +Precomputation, "
        "Q5 from +Columnar agg, Q18 from +Other and +Planner"
    )
    write_report("fig6_best_query", "Figure 6 — biggest beneficiary per technique", lines)
