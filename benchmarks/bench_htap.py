"""HTAP benchmark: encrypted DML interleaved with analytics (PR 10).

A deterministic mixed workload — INSERT/UPDATE/DELETE batches alternating
with the analytic sales queries — runs on three backends (in-memory,
SQLite, and a 2-shard in-memory deployment) while a plaintext oracle is
kept in lockstep through ``testkit.apply_plain_dml``.  Everything is
equivalence-asserted, so the perf numbers are only reported if the write
path is *correct*:

* every statement's ``rows_affected`` matches the oracle;
* a freshness probe (one analytic query) matches the oracle after every
  single write — inserted rows are visible to hom aggregation at once;
* the per-operation trace (rows affected, probe rows, ledger byte
  counts) is byte-identical across all three backends;
* the incrementally maintained Paillier aggregate (MRV split counters)
  equals the scanning SUM query and survives a zero-sum re-balance.

Phases in the JSON payload:

* ``mixed``      — per-backend wall-clock split into insert / update /
                   delete / analytics buckets;
* ``maintained`` — read latency of the maintained aggregate (one
                   ``hom_read`` of the split vector) vs the scanning
                   encrypted SUM query.

Writes ``BENCH_PR10.json`` (repo root by default).  Run:

    PYTHONPATH=src python benchmarks/bench_htap.py          # full
    PYTHONPATH=src python benchmarks/bench_htap.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import random
import sys
import time

from repro.core import (
    CryptoProvider,
    HomGroup,
    MaintainedAggregates,
    MonomiClient,
    normalize_query,
)
from repro.core.schemes import Scheme
from repro.engine import Executor
from repro.sql import parse
from repro.testkit import (
    MASTER_KEY,
    SALES_WORKLOAD,
    apply_plain_dml,
    build_sales_db,
    canonical,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def ledger_bytes(ledger) -> tuple[int, int, int]:
    return (
        ledger.transfer_bytes,
        ledger.server_bytes_scanned,
        ledger.round_trips,
    )


def pinned_design(db, provider):
    """The sales design with the orders hom groups pinned.

    The designer's hom choice depends on its launch-time decryption
    profile (a timing measurement); the benchmark pins one single-column
    and one two-column packed file so every run maintains the same
    ciphertexts.
    """
    donor = MonomiClient.setup(
        db,
        SALES_WORKLOAD,
        master_key=MASTER_KEY,
        space_budget=2.5,
        provider=provider,
    )
    design = donor.design.copy()
    design.hom_groups = [g for g in design.hom_groups if g.table != "orders"]
    design.entries = {
        e
        for e in design.entries
        if not (e.table == "orders" and e.scheme is Scheme.HOM)
    }
    design.add_hom_group(HomGroup("orders", ("o_price",), rows_per_ciphertext=8))
    design.add_hom_group(
        HomGroup("orders", ("o_price * o_qty", "o_qty"), rows_per_ciphertext=4)
    )
    return design


def build_clients(num_orders: int, paillier_bits: int):
    db = build_sales_db(num_orders)
    provider = CryptoProvider(MASTER_KEY, paillier_bits=paillier_bits)
    design = pinned_design(db, provider)

    def make(backend: str, shards: int | None):
        return MonomiClient.setup(
            build_sales_db(num_orders),
            SALES_WORKLOAD,
            master_key=MASTER_KEY,
            space_budget=2.5,
            provider=provider,
            design=design,
            backend=backend,
            shards=shards,
        )

    clients = {
        "memory": make("memory", None),
        "sqlite": make("sqlite", None),
        "memory-x2": make("memory", 2),
    }
    return clients, make


class OpStream:
    """Deterministic DML statement stream with width-safe values.

    Hom layouts freeze each packed column's bit width at load time, so
    generated prices/quantities are capped to the initial data's maxima
    (prices only ever decrease in updates; products of fresh rows stay
    under the observed product maximum).
    """

    def __init__(self, oracle, seed: int) -> None:
        self.rng = random.Random(seed)
        rows = oracle.table("orders").rows
        self.next_key = max(r[0] for r in rows) + 1
        self.max_price = max(r[2] for r in rows)
        self.max_qty = max(r[3] for r in rows)
        self.max_product = max(r[2] * r[3] for r in rows)

    def insert(self) -> tuple[str, dict]:
        values = []
        for _ in range(3):
            price = self.rng.randint(10, self.max_price)
            qty = self.rng.randint(
                1, max(1, min(self.max_qty, self.max_product // price))
            )
            values.append(
                f"({self.next_key}, {self.rng.randint(1, 30)}, {price}, "
                f"{qty}, {self.rng.randint(0, 10)}, DATE '1997-01-01', "
                f"'OPEN', 'htap batch row')"
            )
            self.next_key += 1
        return "INSERT INTO orders VALUES " + ", ".join(values), {}

    def update(self) -> tuple[str, dict]:
        discount = self.rng.randint(1, 9)
        return (
            "UPDATE orders SET o_price = o_price - :d "
            "WHERE o_price >= :lo AND o_custkey = :c",
            {"d": discount, "lo": discount + 10, "c": self.rng.randint(1, 30)},
        )

    def delete(self) -> tuple[str, dict]:
        return (
            "DELETE FROM orders WHERE o_custkey = :c AND o_qty <= :q",
            {"c": self.rng.randint(1, 30), "q": self.rng.randint(1, 25)},
        )


def run_mixed(client, oracle, cycles: int, seed: int):
    """One mixed stream on one backend; returns (point, trace)."""
    stream = OpStream(oracle, seed)
    plain = Executor(oracle)
    buckets = {"insert": 0.0, "update": 0.0, "delete": 0.0, "analytics": 0.0}
    affected = {"insert": 0, "update": 0, "delete": 0}
    trace = []
    for cycle in range(cycles):
        for kind, op in (
            ("insert", stream.insert),
            ("update", stream.update),
            ("delete", stream.delete),
        ):
            sql, params = op()
            start = time.perf_counter()
            outcome = client.execute(sql, params)
            buckets[kind] += time.perf_counter() - start
            expected = apply_plain_dml(oracle, sql, params)
            assert outcome.rows == [(expected,)], (kind, sql)
            affected[kind] += expected

            probe = SALES_WORKLOAD[(cycle * 3 + len(trace)) % len(SALES_WORKLOAD)]
            start = time.perf_counter()
            probe_outcome = client.execute(probe)
            buckets["analytics"] += time.perf_counter() - start
            probe_rows = canonical(probe_outcome.rows)
            want = canonical(plain.execute(normalize_query(parse(probe))).rows)
            assert probe_rows == want, ("stale analytics after", kind, sql)
            trace.append(
                (
                    expected,
                    ledger_bytes(outcome.ledger),
                    probe_rows,
                    ledger_bytes(probe_outcome.ledger),
                )
            )
    point = {
        "cycles": cycles,
        "inserted_rows": affected["insert"],
        "updated_rows": affected["update"],
        "deleted_rows": affected["delete"],
        "insert_seconds": buckets["insert"],
        "update_seconds": buckets["update"],
        "delete_seconds": buckets["delete"],
        "analytics_seconds": buckets["analytics"],
        "total_seconds": sum(buckets.values()),
    }
    return point, trace


def bench_mixed(clients, num_orders: int, cycles: int, seed: int):
    points = []
    reference_trace = None
    final_rows = None
    for backend, client in clients.items():
        oracle = build_sales_db(num_orders)
        point, trace = run_mixed(client, oracle, cycles, seed)
        point = {"backend": backend, **point}
        if reference_trace is None:
            reference_trace = trace
            final_rows = canonical(oracle.table("orders").rows)
        else:
            assert trace == reference_trace, (
                f"{backend}: per-op trace diverged from the in-memory "
                "reference (rows_affected / probe rows / ledger bytes)"
            )
        assert canonical(client.plain_db.table("orders").rows) == final_rows
        points.append(point)
        print(
            f"  {backend:9s}: {point['total_seconds']:.3f}s total "
            f"(ins {point['insert_seconds']:.3f}s / "
            f"upd {point['update_seconds']:.3f}s / "
            f"del {point['delete_seconds']:.3f}s / "
            f"read {point['analytics_seconds']:.3f}s), "
            f"+{point['inserted_rows']}/~{point['updated_rows']}"
            f"/-{point['deleted_rows']} rows"
        )
    return points


def bench_maintained(make, num_orders: int, cycles: int, seed: int, repeats: int):
    """Maintained split-counter reads vs the scanning encrypted SUM."""
    client = make("memory", None)  # fresh: the mixed phase mutated the others
    oracle = build_sales_db(num_orders)
    run_mixed(client, oracle, cycles, seed)  # warm state drifted from load
    aggs = MaintainedAggregates(client, splits=4, seed=seed)
    aggs.register("revenue", "orders", "o_price")
    stream = OpStream(oracle, seed + 1)
    for _ in range(cycles):
        for op in (stream.insert, stream.update, stream.delete):
            sql, params = op()
            client.execute(sql, params)
            apply_plain_dml(oracle, sql, params)
    expected = sum(r[2] for r in oracle.table("orders").rows)

    incremental = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        value = aggs.value("revenue")
        incremental = min(incremental, time.perf_counter() - start)
        assert value == expected
    scan = float("inf")
    scan_sql = "SELECT SUM(o_price) FROM orders"
    for _ in range(repeats):
        start = time.perf_counter()
        outcome = client.execute(scan_sql)
        scan = min(scan, time.perf_counter() - start)
        assert outcome.rows == [(expected,)]
    aggs.balance_now("revenue")
    assert aggs.value("revenue") == expected  # zero-sum re-level
    values = aggs.split_values("revenue")
    assert max(values) - min(values) <= 1
    point = {
        "splits": aggs.splits,
        "incremental_read_seconds": incremental,
        "scan_query_seconds": scan,
        "speedup": scan / incremental if incremental > 0 else float("inf"),
    }
    print(
        f"  maintained read {incremental * 1e3:.2f}ms vs scan "
        f"{scan * 1e3:.2f}ms (x{point['speedup']:.1f}), "
        f"splits level after balance"
    )
    return point


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    # Order counts sit just past a power of two: the loader sizes the hom
    # files' overflow headroom (pad_bits) from the initial row count, and
    # the row space only grows under DML — 70 rows pads to 128, leaving
    # plenty of insert headroom, where 60 would pad to a tight 64.
    if args.quick:
        num_orders, paillier_bits, cycles, repeats = 70, 256, 4, 3
    else:
        num_orders, paillier_bits, cycles, repeats = 260, 512, 10, 5

    print(
        f"HTAP benchmark: {num_orders} orders, {paillier_bits}-bit "
        f"Paillier, {cycles} DML cycles, cpu_count={os.cpu_count()}"
    )
    clients, make = build_clients(num_orders, paillier_bits)

    print("mixed DML + analytics (freshness-asserted, trace-equal):")
    mixed = bench_mixed(clients, num_orders, cycles, seed=1010)
    print("maintained aggregate vs scanning SUM:")
    maintained = bench_maintained(
        make, num_orders, cycles, seed=2020, repeats=repeats
    )

    payload = {
        "benchmark": "htap",
        "mode": "quick" if args.quick else "full",
        "cpu_count": os.cpu_count(),
        "num_orders": num_orders,
        "paillier_bits": paillier_bits,
        "mixed": mixed,
        "maintained": maintained,
    }
    out_path = pathlib.Path(args.out) if args.out else REPO_ROOT / "BENCH_PR10.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
