"""Network-layer benchmark: loopback throughput and latency vs connections.

Two phases over one encrypted sales database served by
:class:`~repro.net.MonomiServer` on TCP loopback, all
equivalence-asserted against in-process execution (identical plaintext
rows and primary ledger byte counts at every point — the sweep measures
transport scheduling, never results):

* **connection_sweep** — N concurrent clients (N = 1, 2, 4, 8), each a
  separate :class:`RemoteBackend` with its own sockets, replay the sales
  workload; reports queries/sec plus p50/p99 per-query latency per
  connection count.
* **transport_overhead** — the same workload through one in-process
  client and one loopback client, interleaved; reports the per-query
  seconds the socket adds over the in-process call path.

Writes ``BENCH_PR7.json`` (repo root by default).  Run:

    PYTHONPATH=src python benchmarks/bench_network.py          # full
    PYTHONPATH=src python benchmarks/bench_network.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import statistics
import sys
import threading
import time

from repro.core import CryptoProvider, MonomiClient
from repro.net import MonomiServer, RemoteBackend
from repro.testkit import MASTER_KEY, SALES_WORKLOAD, build_sales_db, canonical

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def ledger_bytes(ledger) -> tuple[int, int, int]:
    return (
        ledger.transfer_bytes,
        ledger.server_bytes_scanned,
        ledger.round_trips,
    )


def percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def build_local_client(num_orders: int, paillier_bits: int) -> MonomiClient:
    db = build_sales_db(num_orders)
    provider = CryptoProvider(MASTER_KEY, paillier_bits=paillier_bits)
    return MonomiClient.setup(
        db,
        SALES_WORKLOAD,
        provider=provider,
        paillier_bits=paillier_bits,
        space_budget=2.5,
    )


def remote_twin(local: MonomiClient, server: MonomiServer) -> MonomiClient:
    return MonomiClient.connect(
        server.address,
        local.plain_db,
        design=local.design,
        provider=local.provider,
    )


def references(local: MonomiClient) -> dict[str, tuple]:
    return {
        sql: (canonical(outcome.rows), ledger_bytes(outcome.ledger))
        for sql, outcome in (
            (sql, local.execute(sql)) for sql in SALES_WORKLOAD
        )
    }


def bench_connection_sweep(
    local: MonomiClient,
    server: MonomiServer,
    connection_counts: list[int],
    repeats: int,
) -> list[dict]:
    wants = references(local)
    points = []
    for connections in connection_counts:
        clients = [remote_twin(local, server) for _ in range(connections)]
        latencies: list[float] = []
        failures: list[BaseException] = []
        lock = threading.Lock()

        def run_one(client: MonomiClient) -> None:
            try:
                mine = []
                for _ in range(repeats):
                    for sql in SALES_WORKLOAD:
                        begin = time.perf_counter()
                        outcome = client.execute(sql)
                        mine.append(time.perf_counter() - begin)
                        want_rows, want_ledger = wants[sql]
                        assert canonical(outcome.rows) == want_rows, sql
                        assert ledger_bytes(outcome.ledger) == want_ledger, sql
                with lock:
                    latencies.extend(mine)
            except BaseException as exc:  # surfaced below
                with lock:
                    failures.append(exc)

        threads = [
            threading.Thread(target=run_one, args=(client,))
            for client in clients
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        for client in clients:
            client.close()
        if failures:
            raise failures[0]
        queries = len(latencies)
        points.append(
            {
                "label": f"connections-{connections}",
                "connections": connections,
                "queries": queries,
                "elapsed_seconds": elapsed,
                "queries_per_second": queries / elapsed,
                "p50_latency_seconds": percentile(latencies, 0.50),
                "p99_latency_seconds": percentile(latencies, 0.99),
            }
        )
        print(
            f"  connections={connections}: "
            f"{points[-1]['queries_per_second']:8.1f} q/s, "
            f"p50 {points[-1]['p50_latency_seconds'] * 1e3:6.1f} ms, "
            f"p99 {points[-1]['p99_latency_seconds'] * 1e3:6.1f} ms "
            f"({queries} queries in {elapsed:.2f}s)"
        )
    return points


def bench_transport_overhead(
    local: MonomiClient, server: MonomiServer, repeats: int
) -> dict:
    remote = remote_twin(local, server)
    local_seconds = remote_seconds = 0.0
    queries = 0
    for _ in range(repeats):
        for sql in SALES_WORKLOAD:
            begin = time.perf_counter()
            want = local.execute(sql)
            local_seconds += time.perf_counter() - begin
            begin = time.perf_counter()
            got = remote.execute(sql)
            remote_seconds += time.perf_counter() - begin
            queries += 1
            assert canonical(got.rows) == canonical(want.rows), sql
            assert ledger_bytes(got.ledger) == ledger_bytes(want.ledger), sql
    remote.close()
    result = {
        "queries": queries,
        "local_seconds": local_seconds,
        "remote_seconds": remote_seconds,
        "overhead_seconds_per_query": (remote_seconds - local_seconds)
        / queries,
    }
    print(
        f"  transport overhead: in-process {local_seconds:.3f}s -> "
        f"loopback {remote_seconds:.3f}s over {queries} queries "
        f"({result['overhead_seconds_per_query'] * 1e3:+.2f} ms/query)"
    )
    return result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    if args.quick:
        num_orders, paillier_bits = 120, 256
        connection_counts, repeats = [1, 2], 1
    else:
        num_orders, paillier_bits = 240, 384
        connection_counts, repeats = [1, 2, 4, 8], 3

    print(
        f"network benchmark: {num_orders} orders, {paillier_bits}-bit "
        f"Paillier, cpu_count={os.cpu_count()}"
    )
    local = build_local_client(num_orders, paillier_bits)
    with MonomiServer(local.backend) as server:
        print(f"serving on {server.address}")
        print("connection sweep:")
        sweep = bench_connection_sweep(
            local, server, connection_counts, repeats
        )
        print("transport overhead:")
        overhead = bench_transport_overhead(local, server, repeats)
        stats = server.stats()
    assert stats["errors_sent"] == 0, stats

    payload = {
        "benchmark": "network",
        "mode": "quick" if args.quick else "full",
        "cpu_count": os.cpu_count(),
        "num_orders": num_orders,
        "paillier_bits": paillier_bits,
        "connection_sweep": sweep,
        "transport_overhead": overhead,
        "server_stats": {
            "connections_total": stats["connections_total"],
            "queries": stats["queries"],
            "blocks_sent": stats["blocks_sent"],
            "transfer_bytes": stats["transfer_bytes"],
        },
    }
    out_path = pathlib.Path(args.out) if args.out else REPO_ROOT / "BENCH_PR7.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
