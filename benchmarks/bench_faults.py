"""Resilience benchmark: fault-free overhead and recovery under chaos.

Two phases over one encrypted sales database, both equivalence-asserted
(identical plaintext rows and primary ledger byte counts everywhere —
retried work is accounted separately, never in the primary totals):

* **overhead** — the full resilience plumbing armed but idle: a rate-0
  chaos proxy wrapping each backend plus a generous per-query deadline,
  versus the bare client.  The per-query cost is one seeded RNG draw per
  request/block and a monotonic-clock check per block, so the measured
  overhead must stay **under 3%** (asserted, min-of-repeats).
* **chaos_sweep** — fault rates swept over the workload on both
  backends with a fixed seed; reports wall-clock inflation, retries, and
  retry bytes as the injected fault rate grows, asserting byte-identical
  results at every point.

Writes ``BENCH_PR6.json`` (repo root by default).  Run:

    PYTHONPATH=src python benchmarks/bench_faults.py          # full
    PYTHONPATH=src python benchmarks/bench_faults.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

from repro.core import CryptoProvider, MonomiClient
from repro.server import FaultInjectingBackend
from repro.testkit import MASTER_KEY, SALES_WORKLOAD, build_sales_db, canonical

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Far-future per-query deadline for the overhead phase: the deadline
#: machinery runs (armed, checked per block) without ever firing.
IDLE_TIMEOUT_SECONDS = 3600.0

OVERHEAD_LIMIT_PCT = 3.0


def ledger_bytes(ledger) -> tuple[int, int, int]:
    return (
        ledger.transfer_bytes,
        ledger.server_bytes_scanned,
        ledger.round_trips,
    )


def build_clients(num_orders: int, paillier_bits: int) -> dict[str, MonomiClient]:
    db = build_sales_db(num_orders)
    provider = CryptoProvider(MASTER_KEY, paillier_bits=paillier_bits)
    memory = MonomiClient.setup(
        db,
        SALES_WORKLOAD,
        provider=provider,
        paillier_bits=paillier_bits,
        space_budget=2.5,
    )
    sqlite = MonomiClient.setup(
        db,
        SALES_WORKLOAD,
        provider=provider,
        paillier_bits=paillier_bits,
        space_budget=2.5,
        design=memory.design,
        backend="sqlite",
    )
    return {"memory": memory, "sqlite": sqlite}


def chaos_client(base: MonomiClient, seed: int, rate: float) -> MonomiClient:
    """``base`` re-wrapped behind a seeded chaos proxy."""
    return MonomiClient(
        base.plain_db,
        base.design,
        base.provider,
        FaultInjectingBackend(base.backend, seed=seed, rate=rate),
        base.flags,
        base.network,
        base.disk,
        streaming=base.streaming,
    )


def serial_references(client) -> dict[str, tuple]:
    return {
        sql: (canonical(outcome.rows), ledger_bytes(outcome.ledger))
        for sql, outcome in (
            (sql, client.execute(sql)) for sql in SALES_WORKLOAD
        )
    }


def _workload_seconds(run_query, references, repeats: int) -> float:
    """Min-of-repeats total workload latency (noise-robust), with every
    execution equivalence-checked against the serial references."""
    for sql in SALES_WORKLOAD:  # warmup pass: lazy init out of the timing
        run_query(sql)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for sql in SALES_WORKLOAD:
            outcome = run_query(sql)
            want_rows, want_ledger = references[sql]
            assert canonical(outcome.rows) == want_rows, sql
            assert ledger_bytes(outcome.ledger) == want_ledger, sql
        best = min(best, time.perf_counter() - start)
    return best


def bench_overhead(clients: dict[str, MonomiClient], repeats: int) -> list[dict]:
    points = []
    for backend, client in clients.items():
        references = serial_references(client)
        bare = _workload_seconds(client.execute, references, repeats)
        armed_client = chaos_client(client, seed=0, rate=0.0)
        armed = _workload_seconds(
            lambda sql: armed_client.execute(sql, timeout=IDLE_TIMEOUT_SECONDS),
            references,
            repeats,
        )
        overhead_pct = 100.0 * (armed - bare) / bare
        stats = armed_client.backend.stats()
        assert stats["injected_errors"] == 0 and stats["truncations"] == 0
        points.append(
            {
                "backend": backend,
                "bare_seconds": bare,
                "armed_seconds": armed,
                "overhead_pct": overhead_pct,
                "chaos_draws": stats["draws"],
            }
        )
        print(
            f"  {backend:7s}: bare {bare:.3f}s -> armed {armed:.3f}s "
            f"({overhead_pct:+.2f}%, {stats['draws']} idle draws)"
        )
        assert overhead_pct < OVERHEAD_LIMIT_PCT, (
            f"{backend}: fault-free resilience overhead {overhead_pct:.2f}% "
            f"exceeds the {OVERHEAD_LIMIT_PCT}% budget"
        )
    return points


def bench_chaos_sweep(
    clients: dict[str, MonomiClient], rates: list[float], seed: int
) -> list[dict]:
    points = []
    for backend, client in clients.items():
        references = serial_references(client)
        baseline_seconds = None
        for rate in rates:
            injected = chaos_client(client, seed=seed, rate=rate)
            retries = retry_bytes = 0
            start = time.perf_counter()
            for sql in SALES_WORKLOAD:
                outcome = injected.execute(sql)
                want_rows, want_ledger = references[sql]
                assert canonical(outcome.rows) == want_rows, (backend, rate, sql)
                assert ledger_bytes(outcome.ledger) == want_ledger, (
                    backend,
                    rate,
                    sql,
                )
                retries += outcome.ledger.retries
                retry_bytes += outcome.ledger.retry_bytes
            elapsed = time.perf_counter() - start
            if rate == 0.0:
                baseline_seconds = elapsed
            stats = injected.backend.stats()
            points.append(
                {
                    "backend": backend,
                    "rate": rate,
                    "elapsed_seconds": elapsed,
                    "slowdown": elapsed / baseline_seconds
                    if baseline_seconds
                    else 1.0,
                    "retries": retries,
                    "retry_bytes": retry_bytes,
                    "injected_errors": stats["injected_errors"],
                    "truncations": stats["truncations"],
                    "latency_spikes": stats["latency_spikes"],
                }
            )
            print(
                f"  {backend:7s} rate={rate:<5}: {elapsed:.3f}s "
                f"(x{points[-1]['slowdown']:.2f}), {retries} retries, "
                f"{retry_bytes} retry bytes, "
                f"{stats['injected_errors']}+{stats['truncations']} faults"
            )
    return points


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    if args.quick:
        num_orders, paillier_bits, repeats = 120, 256, 5
        rates = [0.0, 0.1]
    else:
        num_orders, paillier_bits, repeats = 400, 512, 5
        rates = [0.0, 0.05, 0.1, 0.2]

    print(
        f"fault benchmark: {num_orders} orders, {paillier_bits}-bit "
        f"Paillier, cpu_count={os.cpu_count()}"
    )
    clients = build_clients(num_orders, paillier_bits)

    print("fault-free overhead (rate-0 chaos + armed deadline):")
    overhead = bench_overhead(clients, repeats)
    print("chaos sweep (seed 7):")
    sweep = bench_chaos_sweep(clients, rates, seed=7)

    payload = {
        "benchmark": "faults",
        "mode": "quick" if args.quick else "full",
        "cpu_count": os.cpu_count(),
        "num_orders": num_orders,
        "paillier_bits": paillier_bits,
        "overhead_limit_pct": OVERHEAD_LIMIT_PCT,
        "overhead": overhead,
        "chaos_sweep": sweep,
    }
    out_path = pathlib.Path(args.out) if args.out else REPO_ROOT / "BENCH_PR6.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
