"""Shared benchmark environment: TPC-H data, the compared systems, report
writing.

Scale is controlled by ``REPRO_BENCH_SCALE`` (default 0.001 — a few seconds
per query on a laptop; raise towards 0.01 for smoother curves).  Every
figure/table writes a markdown report into ``benchmarks/results/`` so the
numbers survive pytest's output capture.
"""

from __future__ import annotations

import os
import pathlib
import time
from dataclasses import dataclass, field

import pytest

from repro.baselines import cryptdb_client_setup, execution_greedy_setup
from repro.common.ledger import DiskModel, NetworkModel
from repro.core import MonomiClient, normalize_query
from repro.engine import Executor
from repro.sql import parse
from repro.testkit import geometric_mean
from repro.tpch import generate, supported_numbers, tpch_queries

__all__ = ["geometric_mean"]

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.001"))
PAILLIER_BITS = int(os.environ.get("REPRO_BENCH_PAILLIER", "384"))
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@dataclass
class TpchEnv:
    scale: float
    plain_db: object
    queries: dict
    workload: list[str]
    numbers: list[int]
    network: NetworkModel
    disk: DiskModel
    _clients: dict = field(default_factory=dict)

    def monomi(self, space_budget: float = 2.0, designer_mode: str = "ilp") -> MonomiClient:
        key = ("monomi", space_budget, designer_mode)
        if key not in self._clients:
            self._clients[key] = MonomiClient.setup(
                self.plain_db,
                self.workload,
                space_budget=space_budget,
                designer_mode=designer_mode,
                paillier_bits=PAILLIER_BITS,
                network=self.network,
                disk=self.disk,
            )
        return self._clients[key]

    def cryptdb_client(self) -> MonomiClient:
        if "cryptdb" not in self._clients:
            self._clients["cryptdb"] = cryptdb_client_setup(
                self.plain_db,
                self.workload,
                paillier_bits=PAILLIER_BITS,
                network=self.network,
                disk=self.disk,
            )
        return self._clients["cryptdb"]

    def execution_greedy(self) -> MonomiClient:
        if "greedy" not in self._clients:
            self._clients["greedy"] = execution_greedy_setup(
                self.plain_db,
                self.workload,
                paillier_bits=PAILLIER_BITS,
                network=self.network,
                disk=self.disk,
            )
        return self._clients["greedy"]

    # -- measurement ------------------------------------------------------------

    def plaintext_seconds(self, number: int) -> float:
        """Local plaintext baseline: engine time + modeled disk time."""
        executor = Executor(self.plain_db)
        query = normalize_query(parse(self.queries[number].sql))
        start = time.perf_counter()
        executor.execute(query)
        elapsed = time.perf_counter() - start
        return elapsed + self.disk.read_seconds(executor.last_stats.bytes_scanned)

    def encrypted_outcome(self, client: MonomiClient, number: int):
        return client.execute(self.queries[number].sql)


@pytest.fixture(scope="session")
def tpch_env() -> TpchEnv:
    plain_db = generate(scale=BENCH_SCALE)
    queries = tpch_queries(BENCH_SCALE)
    numbers = supported_numbers()
    # Link latency is scaled down with the data: the paper's 20 ms RTT is
    # invisible against 10-300 s queries at scale 10, but would dominate
    # our sub-second queries and distort every ratio.
    network = NetworkModel(latency_seconds=0.002)
    return TpchEnv(
        scale=BENCH_SCALE,
        plain_db=plain_db,
        queries=queries,
        workload=[queries[n].sql for n in numbers],
        numbers=numbers,
        network=network,
        disk=DiskModel(),
    )


def write_report(name: str, title: str, lines: list[str]) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.md"
    body = [f"# {title}", "", f"scale factor: {BENCH_SCALE}, Paillier bits: {PAILLIER_BITS}", ""]
    body.extend(lines)
    path.write_text("\n".join(body) + "\n")
    print(f"\n[{name}] -> {path}")
    for line in lines:
        print(line)
    return path
