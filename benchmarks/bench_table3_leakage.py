"""Table 3: per-table count of columns by the weakest scheme used.

Paper: OPE is rare (mostly lineitem dates/amounts), DET common, and many
columns stay at RND/HOM/SEARCH strength; precomputed expressions are
counted after a plus sign.
"""

from __future__ import annotations

from conftest import write_report

from repro.core import Scheme, weakest
from repro.core.loader import complete_design


def test_table3_leakage(tpch_env, benchmark):
    def run_table():
        client = tpch_env.monomi(space_budget=2.0)
        # Classify by what the *workload* demands: a column whose only copy
        # is the loader's fetch fallback never reveals anything the
        # strongest schemes would not (the paper's Table 3 counts those as
        # RND-class), so we look at the designer's output, pre-completion.
        design = client.design
        completed = complete_design(design, tpch_env.plain_db)
        per_table = {}
        for table_name, table in tpch_env.plain_db.tables.items():
            buckets = {"strong": [0, 0], "det": [0, 0], "ope": [0, 0]}
            values = {}
            for entry in completed.table_entries(table_name):
                values.setdefault(entry.expr_sql, set()).add(entry.scheme)
            demanded = {
                (e.expr_sql, e.scheme)
                for e in design.table_entries(table_name)
            }
            base_count = 0
            precomp_count = 0
            for expr_sql, schemes in values.items():
                is_precomp = not any(
                    expr_sql == c.name for c in table.schema.columns
                )
                weakest_scheme = weakest(schemes)
                if weakest_scheme is Scheme.OPE:
                    bucket = "ope"
                elif weakest_scheme is Scheme.DET and (
                    (expr_sql, Scheme.DET) in demanded or is_precomp
                ):
                    bucket = "det"
                else:
                    bucket = "strong"
                buckets[bucket][1 if is_precomp else 0] += 1
                if is_precomp:
                    precomp_count += 1
                else:
                    base_count += 1
            per_table[table_name] = (base_count, precomp_count, buckets)
        return per_table

    per_table = benchmark.pedantic(run_table, rounds=1, iterations=1)

    lines = [
        "| table | total columns | RND/HOM/SEARCH | DET | OPE |",
        "|---|---|---|---|---|",
    ]
    total_ope = 0
    total_cols = 0
    for table_name in sorted(per_table):
        base, precomp, buckets = per_table[table_name]
        def fmt(bucket):
            plain, pre = buckets[bucket]
            return f"{plain}+{pre}" if pre else str(plain)
        lines.append(
            f"| {table_name} | {base}+{precomp} | {fmt('strong')} | "
            f"{fmt('det')} | {fmt('ope')} |"
        )
        total_ope += sum(buckets["ope"])
        total_cols += base + precomp
    lines.append("")
    lines.append(
        f"- OPE (the weakest scheme) covers {total_ope}/{total_cols} "
        f"columns; the paper likewise finds OPE used 'relatively "
        f"infrequently' and never reveals plaintext"
    )
    write_report("table3_leakage", "Table 3 — weakest scheme per column", lines)

    assert total_ope <= total_cols // 3  # OPE stays the minority.
