"""Figure 4: per-query runtime normalized to plaintext Postgres.

Paper result (TPC-H scale 10, 10 Mbit/s link): MONOMI median 1.24x
(1.03x-2.33x); CryptDB+Client median ~3.16x worse than MONOMI with
outliers to 55.9x; Execution-Greedy between the two, never better than
MONOMI.  The reproduction reports the same three bars per query.
"""

from __future__ import annotations

import statistics

from conftest import geometric_mean, write_report


def test_fig4_overall(tpch_env, benchmark):
    def run_figure():
        monomi = tpch_env.monomi(space_budget=2.0)
        greedy = tpch_env.execution_greedy()
        cryptdb = tpch_env.cryptdb_client()
        rows = []
        for number in tpch_env.numbers:
            plain = tpch_env.plaintext_seconds(number)
            entry = {"query": number, "plain": plain}
            for label, client in (
                ("cryptdb", cryptdb),
                ("greedy", greedy),
                ("monomi", monomi),
            ):
                try:
                    outcome = tpch_env.encrypted_outcome(client, number)
                    entry[label] = outcome.ledger.total_seconds
                except Exception as exc:  # Mirrors the paper's timeouts.
                    entry[label] = None
                    entry[f"{label}_err"] = type(exc).__name__
            rows.append(entry)
        return rows

    rows = benchmark.pedantic(run_figure, rounds=1, iterations=1)

    lines = [
        "| query | plaintext (s) | CryptDB+Client | Exec-Greedy | MONOMI |",
        "|---|---|---|---|---|",
    ]
    ratios = {"cryptdb": [], "greedy": [], "monomi": []}
    for entry in rows:
        cells = [f"Q{entry['query']}", f"{entry['plain']:.3f}"]
        for label in ("cryptdb", "greedy", "monomi"):
            seconds = entry[label]
            if seconds is None:
                cells.append(entry.get(f"{label}_err", "n/a"))
            else:
                ratio = seconds / max(entry["plain"], 1e-9)
                ratios[label].append(ratio)
                cells.append(f"{ratio:.2f}x")
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    for label, name in (
        ("cryptdb", "CryptDB+Client"),
        ("greedy", "Execution-Greedy"),
        ("monomi", "MONOMI"),
    ):
        if ratios[label]:
            lines.append(
                f"- {name}: median {statistics.median(ratios[label]):.2f}x, "
                f"geomean {geometric_mean(ratios[label]):.2f}x, "
                f"max {max(ratios[label]):.2f}x"
            )
    monomi_med = statistics.median(ratios["monomi"])
    cryptdb_med = statistics.median(ratios["cryptdb"])
    lines.append("")
    lines.append(
        f"- paper: MONOMI median 1.24x; CryptDB+Client ~3.16x worse than "
        f"MONOMI in the median; measured MONOMI median {monomi_med:.2f}x, "
        f"CryptDB/MONOMI median gap "
        f"{cryptdb_med / max(monomi_med, 1e-9):.2f}x"
    )
    write_report("fig4_overall", "Figure 4 — per-query slowdown vs plaintext", lines)

    # Shape assertions: MONOMI never worse than Execution-Greedy overall,
    # and CryptDB+Client clearly behind MONOMI.
    assert statistics.median(ratios["monomi"]) <= statistics.median(ratios["greedy"]) * 1.25
    assert statistics.median(ratios["cryptdb"]) > statistics.median(ratios["monomi"])
