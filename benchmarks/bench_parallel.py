"""Multicore benchmark: worker-pool crypto and partition-parallel scans.

Sweeps the worker count over the two phases the paper's client is
throughput-bound on (§8, Fig. 7) and the scan phase the server is bound
on, asserting at every point that parallel execution is **equivalent** to
serial — identical plaintext rows, identical ledger byte counts,
identical encrypted heap sizes — so the sweep measures wall-clock only:

* **bulk_load** — ``EncryptedLoader.load_into`` with
  ``CryptoProvider(workers=N)``: every column batch shards across the
  process pool;
* **client_decrypt** — DET/OPE/RND and CRT-Paillier ``*_decrypt_batch``
  over result-sized ciphertext columns;
* **end_to_end** — full encrypted queries through ``MonomiClient``,
  serial vs pooled provider, rows and ledgers compared;
* **partition_scan** — ``execute_stream(partitions=N)`` on both
  backends, output order compared to the serial stream.

Speedups are relative to ``workers=1`` on the same host; the recorded
``cpu_count`` says how many cores were actually available (a 1-core CI
runner exercises the machinery but cannot show speedup — the ≥2x figures
in BENCH_PR4.json are meaningful on >=4 cores).

Writes ``BENCH_PR4.json`` (repo root by default).  Run:

    PYTHONPATH=src python benchmarks/bench_parallel.py          # full
    PYTHONPATH=src python benchmarks/bench_parallel.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

from repro.core import CryptoProvider, EncryptedLoader, MonomiClient, normalize_query
from repro.engine import schema
from repro.server import BACKEND_KINDS, make_backend
from repro.sql import parse
from repro.testkit import MASTER_KEY, build_sales_db, canonical

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

WORKLOAD = [
    "SELECT o_custkey, SUM(o_price * o_qty) AS rev FROM orders "
    "WHERE o_price > 500 GROUP BY o_custkey ORDER BY rev DESC",
    "SELECT o_orderkey, o_price, o_qty FROM orders WHERE o_price > 1500",
    "SELECT COUNT(*) FROM orders WHERE o_comment LIKE '%brown%'",
]


def ledger_bytes(ledger) -> tuple:
    return (ledger.transfer_bytes, ledger.server_bytes_scanned, ledger.round_trips)


def make_provider(workers: int, paillier_bits: int, min_batch: int) -> CryptoProvider:
    provider = CryptoProvider(
        MASTER_KEY, paillier_bits=paillier_bits, workers=workers
    )
    provider.parallel_min_batch = min_batch
    return provider


def bench_bulk_load(db, design, providers) -> list[dict]:
    """Encrypt + load the whole database once per worker count."""
    points = []
    reference_sizes = None
    for workers, provider in providers.items():
        backend = make_backend("memory")
        start = time.perf_counter()
        EncryptedLoader(db, provider).load_into(backend, design)
        elapsed = time.perf_counter() - start
        sizes = {n: backend.table_bytes(n) for n in backend.table_names()}
        if reference_sizes is None:
            reference_sizes = sizes
        else:
            assert sizes == reference_sizes, "parallel load changed heap sizes"
        points.append({"workers": workers, "load_seconds": round(elapsed, 6)})
    base = points[0]["load_seconds"]
    for point in points:
        point["speedup"] = round(base / max(point["load_seconds"], 1e-9), 2)
    return points


def bench_client_decrypt(providers, num_values: int, hom_values: int) -> list[dict]:
    """Batch decryption sweeps: DET/OPE/RND columns + CRT Paillier."""
    serial = providers[1]
    ints = [i * 7919 % 1_000_003 for i in range(num_values)]
    texts = [f"customer-{i % 4096:05d}" for i in range(num_values)]
    det_int_cts = serial.det_encrypt_batch(ints)
    det_text_cts = serial.det_encrypt_batch(texts)
    ope_cts = serial.ope_encrypt_batch(ints)
    rnd_cts = serial.rnd_encrypt_batch(ints)
    hom_msgs = [i * 31 + 1 for i in range(hom_values)]
    hom_cts = serial.paillier_encrypt_batch(hom_msgs)

    expected = {
        "det_int": ints,
        "det_text": texts,
        "ope": ints,
        "rnd": ints,
        "paillier": hom_msgs,
    }
    points = []
    for workers, provider in providers.items():
        timings = {}
        outputs = {}
        start = time.perf_counter()
        outputs["det_int"] = provider.det_decrypt_batch(det_int_cts, "int")
        timings["det_int_seconds"] = time.perf_counter() - start
        start = time.perf_counter()
        outputs["det_text"] = provider.det_decrypt_batch(det_text_cts, "text")
        timings["det_text_seconds"] = time.perf_counter() - start
        start = time.perf_counter()
        outputs["ope"] = provider.ope_decrypt_batch(ope_cts, "int")
        timings["ope_seconds"] = time.perf_counter() - start
        start = time.perf_counter()
        outputs["rnd"] = provider.rnd_decrypt_batch(rnd_cts)
        timings["rnd_seconds"] = time.perf_counter() - start
        start = time.perf_counter()
        outputs["paillier"] = provider.paillier_decrypt_batch(hom_cts)
        timings["paillier_seconds"] = time.perf_counter() - start
        for name, plain in expected.items():
            assert outputs[name] == plain, f"{name} diverged at workers={workers}"
        timings["total_decrypt_seconds"] = sum(timings.values())
        points.append(
            {"workers": workers}
            | {k: round(v, 6) for k, v in timings.items()}
        )
    base = points[0]["total_decrypt_seconds"]
    for point in points:
        point["speedup"] = round(
            base / max(point["total_decrypt_seconds"], 1e-9), 2
        )
    return points


def bench_end_to_end(db, design, providers, paillier_bits: int) -> list[dict]:
    """Full encrypted queries: pooled providers vs the serial reference."""
    reference: dict[str, tuple] = {}
    points = []
    for workers, provider in providers.items():
        client = MonomiClient.setup(
            db,
            WORKLOAD,
            master_key=MASTER_KEY,
            paillier_bits=paillier_bits,
            space_budget=2.5,
            provider=provider,
            design=design,
        )
        start = time.perf_counter()
        for sql in WORKLOAD:
            outcome = client.execute(sql)
            key = (canonical(outcome.rows), ledger_bytes(outcome.ledger))
            if workers == 1:
                reference[sql] = key
            else:
                assert key == reference[sql], (
                    f"workers={workers} diverged on {sql!r}"
                )
        elapsed = time.perf_counter() - start
        points.append({"workers": workers, "query_seconds": round(elapsed, 6)})
    base = points[0]["query_seconds"]
    for point in points:
        point["speedup"] = round(base / max(point["query_seconds"], 1e-9), 2)
    return points


def bench_partition_scan(num_rows: int, partition_counts: list[int]) -> list[dict]:
    """Partitioned streamable scans on both backends, order-checked."""
    points = []
    for kind in BACKEND_KINDS:
        backend = make_backend(kind)
        backend.create_table(
            schema("big", ("a", "int"), ("b", "int"), ("c", "int"))
        )
        backend.insert_rows(
            "big", [(i, i * 7 % 1013, i % 97) for i in range(num_rows)]
        )
        query = normalize_query(parse("SELECT a, b FROM big WHERE c < 80"))
        reference = None
        for partitions in partition_counts:
            start = time.perf_counter()
            rows = backend.execute_stream(
                query, partitions=partitions
            ).drain_rows()
            elapsed = time.perf_counter() - start
            if reference is None:
                reference = rows
            else:
                assert rows == reference, (
                    f"{kind} partitions={partitions} reordered the scan"
                )
            points.append(
                {
                    "backend": kind,
                    "partitions": partitions,
                    "scan_seconds": round(elapsed, 6),
                }
            )
        if hasattr(backend, "close"):
            backend.close()
    for kind in BACKEND_KINDS:
        base = next(
            p["scan_seconds"] for p in points if p["backend"] == kind
        )
        for point in points:
            if point["backend"] == kind:
                point["speedup"] = round(
                    base / max(point["scan_seconds"], 1e-9), 2
                )
    return points


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke: tiny keys/data")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_PR4.json"))
    args = parser.parse_args(argv)

    worker_counts = [1, 2] if args.quick else [1, 2, 4]
    num_orders = 300 if args.quick else 1500
    paillier_bits = 256 if args.quick else 768
    num_values = 4_000 if args.quick else 24_000
    hom_values = 64 if args.quick else 512
    scan_rows = 20_000 if args.quick else 80_000
    min_batch = 64

    print(
        f"[bench_parallel] workers={worker_counts} orders={num_orders} "
        f"paillier={paillier_bits} bits cpus={os.cpu_count()}"
    )
    db = build_sales_db(num_orders=num_orders)
    design_client = MonomiClient.setup(
        db,
        WORKLOAD,
        master_key=MASTER_KEY,
        paillier_bits=paillier_bits,
        space_budget=2.5,
        provider=make_provider(1, paillier_bits, min_batch),
    )
    design = design_client.design
    # Fresh providers for every sweep point — including workers=1 — so no
    # point starts with LRU caches warmed by the design/load above.
    providers = {
        workers: make_provider(workers, paillier_bits, min_batch)
        for workers in worker_counts
    }

    results: dict = {
        "benchmark": "bench_parallel",
        "mode": "quick" if args.quick else "full",
        "cpu_count": os.cpu_count(),
        "worker_counts": worker_counts,
        "num_orders": num_orders,
        "paillier_bits": paillier_bits,
        "bulk_load": bench_bulk_load(db, design, providers),
        "client_decrypt": bench_client_decrypt(providers, num_values, hom_values),
        "end_to_end": bench_end_to_end(db, design, providers, paillier_bits),
        "partition_scan": bench_partition_scan(scan_rows, worker_counts),
    }
    for phase in ("bulk_load", "client_decrypt", "end_to_end"):
        for point in results[phase]:
            print(f"  {phase:>16} workers={point['workers']}: {point}")
    for point in results["partition_scan"]:
        print(f"    partition_scan {point}")
    print("  all parallel modes agree with serial (rows, ledgers, heap sizes)")

    for provider in providers.values():
        provider.close()
    design_client.provider.close()
    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"[bench_parallel] wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
