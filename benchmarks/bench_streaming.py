"""Streaming benchmark: RowBlock pipeline vs materializing execution.

Measures what the streaming refactor buys on both untrusted-server
backends:

* **time-to-first-row** — wall seconds until the first decrypted RowBlock
  arrives at the client (`execute_iter`), vs the materializing path which
  cannot return anything before the whole pipeline finishes;
* **peak client memory** — tracemalloc peak while consuming the result,
  which is O(block) for stream-shaped plans vs O(result) materialized;
* **bounded-memory sweep** — server-scan streaming peaks across growing
  table sizes (flat) against materialized peaks (linear in rows);
* **agreement** — the harness *asserts* both modes return identical rows
  and identical ledger byte counts, so a divergence fails CI loudly.

Writes ``BENCH_PR3.json`` (repo root by default).  Run:

    PYTHONPATH=src python benchmarks/bench_streaming.py          # full
    PYTHONPATH=src python benchmarks/bench_streaming.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
import tracemalloc

from repro.core import CryptoProvider, MonomiClient, PlanExecutor, normalize_query
from repro.engine import schema
from repro.server import BACKEND_KINDS, make_backend
from repro.sql import parse
from repro.testkit import MASTER_KEY, build_sales_db

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: (label, SQL) — the first three are stream-shaped end-to-end; the last is
#: a blocking plan included to show the fallback costs nothing extra.
QUERIES = [
    (
        "full_scan_projection",
        "SELECT o_orderkey, o_price, o_qty FROM orders",
    ),
    (
        "pushed_ope_filter",
        "SELECT o_orderkey, o_price FROM orders WHERE o_price > 2500",
    ),
    (
        "client_residual_filter",
        "SELECT o_orderkey FROM orders WHERE o_price * o_qty > 40000",
    ),
    (
        "blocking_group_by",
        "SELECT o_custkey, SUM(o_price) FROM orders GROUP BY o_custkey",
    ),
]

WORKLOAD = [sql for _, sql in QUERIES]


def ledger_bytes(ledger) -> tuple:
    return (ledger.transfer_bytes, ledger.server_bytes_scanned, ledger.round_trips)


def build_clients(num_orders: int, paillier_bits: int) -> dict[str, MonomiClient]:
    db = build_sales_db(num_orders=num_orders)
    provider = CryptoProvider(MASTER_KEY, paillier_bits=paillier_bits)
    memory = MonomiClient.setup(
        db, WORKLOAD, master_key=MASTER_KEY, paillier_bits=paillier_bits,
        space_budget=2.5, provider=provider,
    )
    sqlite = MonomiClient.setup(
        db, WORKLOAD, master_key=MASTER_KEY, paillier_bits=paillier_bits,
        space_budget=2.5, provider=provider, design=memory.design,
        backend="sqlite",
    )
    return {"memory": memory, "sqlite": sqlite}


def bench_query(client: MonomiClient, sql: str, block_rows: int) -> dict:
    query = normalize_query(parse(sql))
    planned = client.planner.plan(query)
    streaming = PlanExecutor(
        client.backend, client.provider, client.network, client.disk,
        streaming=True, block_rows=block_rows,
    )
    materializing = PlanExecutor(
        client.backend, client.provider, client.network, client.disk,
        streaming=False,
    )

    tracemalloc.start()
    start = time.perf_counter()
    stream = streaming.execute_iter(planned.plan)
    blocks = iter(stream)
    first = next(blocks, None)
    ttfr = time.perf_counter() - start
    stream_rows = [] if first is None else first.rows()
    for block in blocks:
        stream_rows.extend(block.rows())
    stream_total = time.perf_counter() - start
    _, stream_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    tracemalloc.start()
    start = time.perf_counter()
    result, mat_ledger = materializing.execute(planned.plan)
    mat_total = time.perf_counter() - start
    _, mat_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert stream_rows == result.rows, f"streaming diverged on {sql!r}"
    assert ledger_bytes(stream.ledger) == ledger_bytes(mat_ledger), (
        f"ledger bytes diverged on {sql!r}"
    )
    return {
        "rows": len(result.rows),
        "streams": streaming._plan_streams(planned.plan),
        "time_to_first_row_seconds": round(ttfr, 6),
        "streaming_total_seconds": round(stream_total, 6),
        "materializing_total_seconds": round(mat_total, 6),
        "ttfr_speedup": round(mat_total / max(ttfr, 1e-9), 2),
        "streaming_peak_bytes": stream_peak,
        "materializing_peak_bytes": mat_peak,
    }


def bench_memory_sweep(sizes: list[int], block_rows: int) -> list[dict]:
    """Server-scan peaks across table sizes: streaming must stay flat."""
    sweep = []
    for num_rows in sizes:
        backend = make_backend("memory")
        backend.create_table(schema("big", ("a", "int"), ("b", "int"), ("c", "int")))
        backend.insert_rows("big", [(i, i * 7, i % 97) for i in range(num_rows)])
        query = normalize_query(parse("SELECT a, b FROM big WHERE c < 80"))

        tracemalloc.start()
        count = 0
        for block in backend.execute_stream(query, block_rows=block_rows):
            count += len(block)
        _, stream_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        tracemalloc.start()
        result = backend.execute(query)
        _, mat_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert count == len(result.rows)
        sweep.append(
            {
                "table_rows": num_rows,
                "result_rows": count,
                "streaming_peak_bytes": stream_peak,
                "materializing_peak_bytes": mat_peak,
            }
        )
    return sweep


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke: tiny keys/data")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_PR3.json"))
    args = parser.parse_args(argv)

    num_orders = 200 if args.quick else 1200
    paillier_bits = 256 if args.quick else 768
    block_rows = 64 if args.quick else 256
    sweep_sizes = [5_000, 10_000] if args.quick else [20_000, 40_000, 80_000]

    print(f"[bench_streaming] orders={num_orders} paillier={paillier_bits} bits")
    clients = build_clients(num_orders, paillier_bits)

    results: dict = {
        "benchmark": "bench_streaming",
        "mode": "quick" if args.quick else "full",
        "num_orders": num_orders,
        "paillier_bits": paillier_bits,
        "block_rows": block_rows,
        "queries": [],
    }
    for label, sql in QUERIES:
        entry: dict = {"label": label, "sql": sql, "backends": {}}
        for kind in BACKEND_KINDS:
            entry["backends"][kind] = bench_query(clients[kind], sql, block_rows)
        results["queries"].append(entry)
        mem = entry["backends"]["memory"]
        print(
            f"  {label:>24}: ttfr {mem['time_to_first_row_seconds']:.4f}s vs "
            f"materialized {mem['materializing_total_seconds']:.4f}s "
            f"({mem['ttfr_speedup']}x), peak "
            f"{mem['streaming_peak_bytes'] / 1024:.0f}K vs "
            f"{mem['materializing_peak_bytes'] / 1024:.0f}K"
        )

    results["memory_sweep"] = bench_memory_sweep(sweep_sizes, 512)
    for point in results["memory_sweep"]:
        print(
            f"  sweep {point['table_rows']:>7} rows: streaming peak "
            f"{point['streaming_peak_bytes'] / 1024:.0f}K, materializing "
            f"{point['materializing_peak_bytes'] / 1024:.0f}K"
        )
    print("  streaming and materializing agree on all rows and ledger bytes")

    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"[bench_streaming] wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
