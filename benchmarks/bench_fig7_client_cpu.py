"""Figure 7: client CPU with MONOMI vs running the query locally.

Paper: the ratio is below 1 for most queries (outsourcing saves client
CPU), above 1 where decryption dominates (paper: Q9, Q10, Q11, Q18).
"""

from __future__ import annotations

import time

from conftest import write_report

from repro.core import normalize_query
from repro.engine import Executor
from repro.sql import parse


def test_fig7_client_cpu(tpch_env, benchmark):
    def run_figure():
        monomi = tpch_env.monomi(space_budget=2.0)
        rows = []
        for number in tpch_env.numbers:
            outcome = tpch_env.encrypted_outcome(monomi, number)
            executor = Executor(tpch_env.plain_db)
            query = normalize_query(parse(tpch_env.queries[number].sql))
            start = time.perf_counter()
            executor.execute(query)
            local = time.perf_counter() - start
            rows.append((number, outcome.ledger.client_seconds, local))
        return rows

    rows = benchmark.pedantic(run_figure, rounds=1, iterations=1)

    lines = [
        "| query | MONOMI client CPU (s) | local plaintext CPU (s) | ratio |",
        "|---|---|---|---|",
    ]
    below_one = 0
    for number, client_cpu, local_cpu in rows:
        ratio = client_cpu / max(local_cpu, 1e-9)
        below_one += ratio < 1.0
        lines.append(
            f"| Q{number} | {client_cpu:.4f} | {local_cpu:.4f} | {ratio:.3f} |"
        )
    lines.append("")
    lines.append(
        f"- {below_one}/{len(rows)} queries need less client CPU under "
        f"MONOMI than running locally (paper: most, except Q9/Q10/Q11/Q18)"
    )
    write_report("fig7_client_cpu", "Figure 7 — client CPU ratio", lines)

    # Shape: outsourcing pays off for most of the workload.
    assert below_one >= len(rows) // 2
