"""Benchmark regression tripwire: smoke outputs vs checked-in baselines.

CI runs every benchmark in ``--quick`` mode and hands the smoke JSON plus
the committed ``BENCH_PR*.json`` baseline to this script.  It walks both
trees in parallel and compares every ``*_seconds`` number present at the
same place in both; a smoke phase slower than **3x** its baseline fails
the build.  Quick mode runs smaller keys and data than the full-mode
baselines, so a healthy smoke number sits far *below* its baseline — the
3x threshold (plus a 50 ms absolute floor that keeps micro-phase jitter
out) only trips on pathological regressions: an accidentally serialized
hot path, a dropped cache, a quadratic slip.

Tree alignment: dicts recurse over shared keys; lists of dicts pair
elements by their discriminator fields (``label``, ``workers``,
``backend``/``partitions``, ``table_rows``) when present, falling back to
index order.  Paths only in one file are ignored — benchmarks may grow
phases without breaking older baselines.

Usage:

    python benchmarks/compare_baselines.py smoke.json=BENCH_PR4.json ...
    python benchmarks/compare_baselines.py --auto

``--auto`` discovers every ``bench_*_smoke.json`` in the working
directory and pairs it with its checked-in baseline via ``BASELINES``
(keyed by benchmark script stem).  A smoke file whose stem is not
registered fails the run — adding a benchmark means registering its
baseline here, so the tripwire can never silently skip one.
"""

from __future__ import annotations

import json
import pathlib
import sys

FACTOR = 3.0
ABSOLUTE_FLOOR_SECONDS = 0.05

_IDENTITY_KEYS = ("label", "workers", "backend", "partitions", "table_rows", "rate")

#: Benchmark script stem -> checked-in full-mode baseline (repo root).
BASELINES = {
    "bench_batch_pipeline": "BENCH_PR1.json",
    "bench_backends": "BENCH_PR2.json",
    "bench_streaming": "BENCH_PR3.json",
    "bench_parallel": "BENCH_PR4.json",
    "bench_service": "BENCH_PR5.json",
    "bench_faults": "BENCH_PR6.json",
    "bench_network": "BENCH_PR7.json",
    "bench_ope": "BENCH_PR8.json",
    "bench_shards": "BENCH_PR9.json",
    "bench_htap": "BENCH_PR10.json",
}

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def discover_pairs() -> list[str] | None:
    """smoke=baseline pairs for every bench_*_smoke.json in the cwd."""
    pairs: list[str] = []
    for smoke_path in sorted(pathlib.Path.cwd().glob("bench_*_smoke.json")):
        stem = smoke_path.name[: -len("_smoke.json")]
        baseline = BASELINES.get(stem)
        if baseline is None:
            print(
                f"unregistered smoke output {smoke_path.name}: add "
                f"{stem!r} to BASELINES in compare_baselines.py"
            )
            return None
        pairs.append(f"{smoke_path.name}={_REPO_ROOT / baseline}")
    if not pairs:
        print("no bench_*_smoke.json files found — did the benchmarks run?")
        return None
    return pairs


def _identity(entry: object) -> tuple | None:
    if not isinstance(entry, dict):
        return None
    found = tuple(
        (key, entry[key]) for key in _IDENTITY_KEYS if key in entry
    )
    return found or None


def _pair_lists(smoke: list, baseline: list) -> list[tuple[object, object, str]]:
    by_identity = {}
    for entry in baseline:
        identity = _identity(entry)
        if identity is not None:
            by_identity[identity] = entry
    pairs = []
    for index, entry in enumerate(smoke):
        identity = _identity(entry)
        if identity is not None and identity in by_identity:
            pairs.append((entry, by_identity[identity], f"[{identity}]"))
        elif identity is None and index < len(baseline):
            pairs.append((entry, baseline[index], f"[{index}]"))
    return pairs


def compare(smoke: object, baseline: object, path: str, failures: list[str]) -> None:
    if isinstance(smoke, dict) and isinstance(baseline, dict):
        for key in smoke.keys() & baseline.keys():
            sub_smoke, sub_base = smoke[key], baseline[key]
            sub_path = f"{path}.{key}" if path else key
            if (
                key.endswith("_seconds")
                and isinstance(sub_smoke, (int, float))
                and isinstance(sub_base, (int, float))
            ):
                limit = max(FACTOR * sub_base, sub_base + ABSOLUTE_FLOOR_SECONDS)
                if sub_smoke > limit:
                    failures.append(
                        f"{sub_path}: smoke {sub_smoke:.4f}s > "
                        f"limit {limit:.4f}s (baseline {sub_base:.4f}s)"
                    )
            else:
                compare(sub_smoke, sub_base, sub_path, failures)
    elif isinstance(smoke, list) and isinstance(baseline, list):
        for sub_smoke, sub_base, suffix in _pair_lists(smoke, baseline):
            compare(sub_smoke, sub_base, path + suffix, failures)


def main(argv: list[str]) -> int:
    if argv == ["--auto"]:
        discovered = discover_pairs()
        if discovered is None:
            return 2
        argv = discovered
    if not argv:
        print("usage: compare_baselines.py [--auto] smoke.json=baseline.json ...")
        return 2
    failures: list[str] = []
    compared = 0
    for pair in argv:
        smoke_name, _, baseline_name = pair.partition("=")
        if not baseline_name:
            print(f"malformed pair {pair!r} (expected smoke.json=baseline.json)")
            return 2
        smoke_path = pathlib.Path(smoke_name)
        baseline_path = pathlib.Path(baseline_name)
        if not smoke_path.exists():
            print(f"missing smoke output {smoke_path} — did the benchmark run?")
            return 2
        if not baseline_path.exists():
            print(f"no baseline {baseline_path}; skipping {smoke_path}")
            continue
        before = len(failures)
        compare(
            json.loads(smoke_path.read_text()),
            json.loads(baseline_path.read_text()),
            smoke_path.name,
            failures,
        )
        compared += 1
        status = "OK" if len(failures) == before else "REGRESSED"
        print(f"{smoke_path.name} vs {baseline_path.name}: {status}")
    for failure in failures:
        print(f"  FAIL {failure}")
    if failures:
        print(f"{len(failures)} phase(s) regressed beyond {FACTOR}x baseline")
        return 1
    print(f"compared {compared} file pair(s); no phase beyond {FACTOR}x baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
