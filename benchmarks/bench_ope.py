"""OPE/DET hot-path benchmark: scalar loops vs column-batch crypto.

BENCH_PR4 showed client decryption throughput-bound on OPE: 24 000
values took ~9 s to decrypt one ciphertext at a time, each walking the
full BCLO descent tree alone.  PR 8 added shared-tree batch descent,
cross-query pivot memoization and HMAC pad-state templates; this
benchmark measures all three against the scalar path on the *same*
workload BENCH_PR4 recorded (``client_decrypt``, 24 000 ints of ~1M
cardinality, texts of 4 096 cardinality), then sweeps rows x
cardinality to show where the amortization comes from.

Every timed point is equivalence-asserted: batch output must be
element-wise identical to the scalar loop on a fresh provider, cold and
warm caches alike.  The speedup is therefore pure wall-clock — no
semantic drift.

Writes ``BENCH_PR8.json`` (repo root by default).  Run:

    PYTHONPATH=src python benchmarks/bench_ope.py          # full
    PYTHONPATH=src python benchmarks/bench_ope.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time

from repro.core import CryptoProvider
from repro.testkit import MASTER_KEY

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

PAILLIER_BITS = 256  # Paillier is untouched here; keep setup cheap.


def fresh_provider() -> CryptoProvider:
    return CryptoProvider(MASTER_KEY, paillier_bits=PAILLIER_BITS, workers=1)


def pr4_workload(num_values: int) -> tuple[list[int], list[str]]:
    """The exact column recipes BENCH_PR4's client_decrypt phase used."""
    ints = [i * 7919 % 1_000_003 for i in range(num_values)]
    texts = [f"customer-{i % 4096:05d}" for i in range(num_values)]
    return ints, texts


def bench_client_decrypt(num_values: int) -> list[dict]:
    """Scalar-vs-batch on the BENCH_PR4 client_decrypt workload.

    The scalar point decrypts one value at a time (per-value tree walks,
    no batch dedup) on a fresh provider; the batch point uses the column
    APIs on another fresh provider whose pivot cache was warmed only by
    the encryption pass — the load-then-query shape a real client sees.
    """
    ints, texts = pr4_workload(num_values)
    points = []

    scalar = fresh_provider()
    ope_cts = scalar.ope_encrypt_batch(ints)
    det_text_cts = scalar.det_encrypt_batch(texts)
    scalar.reset_crypto_caches()
    start = time.perf_counter()
    scalar_ope = [scalar.ope_decrypt(c, "int") for c in ope_cts]
    scalar_ope_s = time.perf_counter() - start
    start = time.perf_counter()
    scalar_text = [scalar.det_decrypt(c, "text") for c in det_text_cts]
    scalar_text_s = time.perf_counter() - start
    assert scalar_ope == ints and scalar_text == texts
    points.append(
        {
            "label": "scalar",
            "ope_seconds": round(scalar_ope_s, 6),
            "det_text_seconds": round(scalar_text_s, 6),
        }
    )

    batch = fresh_provider()
    batch_ope_cts = batch.ope_encrypt_batch(ints)
    batch_text_cts = batch.det_encrypt_batch(texts)
    assert batch_ope_cts == ope_cts and batch_text_cts == det_text_cts
    batch._ope_dec_cache.clear()
    batch._det_cache.clear()
    start = time.perf_counter()
    batch_ope = batch.ope_decrypt_batch(batch_ope_cts, "int")
    batch_ope_s = time.perf_counter() - start
    start = time.perf_counter()
    batch_text = batch.det_decrypt_batch(batch_text_cts, "text")
    batch_text_s = time.perf_counter() - start
    assert batch_ope == scalar_ope and batch_text == scalar_text
    points.append(
        {
            "label": "batch",
            "ope_seconds": round(batch_ope_s, 6),
            "det_text_seconds": round(batch_text_s, 6),
            "ope_speedup": round(scalar_ope_s / max(batch_ope_s, 1e-9), 2),
            "det_text_speedup": round(
                scalar_text_s / max(batch_text_s, 1e-9), 2
            ),
        }
    )
    return points


def bench_sweep(row_counts: list[int], cardinalities: list[int | None]) -> list[dict]:
    """Batch encrypt+decrypt across rows x cardinality.

    Cardinality ``None`` means all-distinct; smaller cardinalities show
    the per-batch dedup, all-distinct shows the shared-tree descent
    alone.  A fresh provider per point; a scalar spot-check on a prefix
    of each column guards equivalence without re-paying full scalar cost.
    """
    points = []
    for rows in row_counts:
        for card in cardinalities:
            if card is None:
                values = [i * 7919 % 1_000_003 for i in range(rows)]
            else:
                values = [(i * 7919 % card) * 251 for i in range(rows)]
            provider = fresh_provider()
            start = time.perf_counter()
            cts = provider.ope_encrypt_batch(values)
            encrypt_s = time.perf_counter() - start
            provider.reset_crypto_caches()
            start = time.perf_counter()
            plains = provider.ope_decrypt_batch(cts, "int")
            decrypt_s = time.perf_counter() - start
            assert plains == values, "batch decrypt diverged from input"
            checker = fresh_provider()
            prefix = min(rows, 200)
            assert cts[:prefix] == [
                checker.ope_encrypt(v) for v in values[:prefix]
            ], "batch encrypt diverged from scalar"
            pivots = provider.cache_stats()["ope_pivots_int"]
            points.append(
                {
                    "label": f"rows{rows}-card{card or 'distinct'}",
                    "rows": rows,
                    "cardinality": card or len(set(values)),
                    "encrypt_seconds": round(encrypt_s, 6),
                    "decrypt_seconds": round(decrypt_s, 6),
                    "pivot_hits": pivots.hits,
                    "pivot_misses": pivots.misses,
                    "pivot_evictions": pivots.evictions,
                }
            )
    return points


def bench_warm_cache(num_values: int) -> list[dict]:
    """Cross-query pivot memoization: repeat decrypts on one provider."""
    ints, _ = pr4_workload(num_values)
    provider = fresh_provider()
    cts = provider.ope_encrypt_batch(ints)
    reference = None
    points = []
    for run in range(3):
        provider._ope_dec_cache.clear()  # Value cache off; pivot cache kept.
        start = time.perf_counter()
        plains = provider.ope_decrypt_batch(cts, "int")
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = plains
        assert plains == reference == ints, "warm run diverged"
        points.append({"label": f"run{run}", "ope_seconds": round(elapsed, 6)})
    return points


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke: tiny columns")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_PR8.json"))
    args = parser.parse_args(argv)

    num_values = 2_000 if args.quick else 24_000
    row_counts = [1_000] if args.quick else [2_000, 8_000, 24_000]
    cardinalities = [64, None] if args.quick else [64, 4_096, None]

    print(f"[bench_ope] num_values={num_values} cpus={os.cpu_count()}")
    results: dict = {
        "benchmark": "bench_ope",
        "mode": "quick" if args.quick else "full",
        "cpu_count": os.cpu_count(),
        "num_values": num_values,
        "client_decrypt": bench_client_decrypt(num_values),
        "sweep": bench_sweep(row_counts, cardinalities),
        "warm_cache": bench_warm_cache(num_values),
    }
    pr4_path = REPO_ROOT / "BENCH_PR4.json"
    if not args.quick and pr4_path.exists():
        # The headline numbers: this workload is byte-for-byte the one
        # BENCH_PR4's client_decrypt phase recorded at workers=1.
        pr4 = json.loads(pr4_path.read_text())
        base = next(p for p in pr4["client_decrypt"] if p.get("workers") == 1)
        batch_point = next(
            p for p in results["client_decrypt"] if p["label"] == "batch"
        )
        results["vs_bench_pr4"] = {
            "pr4_ope_seconds": base["ope_seconds"],
            "pr4_det_text_seconds": base["det_text_seconds"],
            "ope_speedup": round(
                base["ope_seconds"] / max(batch_point["ope_seconds"], 1e-9), 2
            ),
            "det_text_speedup": round(
                base["det_text_seconds"]
                / max(batch_point["det_text_seconds"], 1e-9),
                2,
            ),
        }
        print(f"  vs BENCH_PR4: {results['vs_bench_pr4']}")
    for phase in ("client_decrypt", "sweep", "warm_cache"):
        for point in results[phase]:
            print(f"  {phase:>14} {point}")
    print("  all batch outputs identical to scalar loops")

    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"[bench_ope] wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
