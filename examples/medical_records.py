"""Outsourcing a medical-records warehouse: scheme ceilings in practice.

The paper (§3, §9) notes an administrator can forbid weak schemes for
especially sensitive columns.  This example builds a patient-encounter
warehouse, designs a layout, and shows (a) the leakage profile per column,
and (b) how analytics still run when the sensitive columns only ever get
strong encryption.

Run:  python examples/medical_records.py
"""

from __future__ import annotations

import datetime
import random

from repro.core import MonomiClient, Scheme, weakest
from repro.core.loader import complete_design
from repro.engine import Database, schema

DIAGNOSES = ["J45", "E11", "I10", "M54", "F32", "K21"]
WARDS = ["cardiology", "endocrinology", "pulmonology", "orthopedics", "psychiatry"]


def build_database() -> Database:
    rng = random.Random(7)
    db = Database("hospital")
    encounters = db.create_table(
        schema(
            "encounters",
            ("encounter_id", "int"),
            ("patient_id", "int"),  # sensitive: stable pseudonymous key
            ("ssn_last4", "int"),  # sensitive!
            ("ward", "text"),
            ("diagnosis", "text"),
            ("cost", "int"),  # cents
            ("admitted", "date"),
            ("stay_days", "int"),
            ("notes", "text"),
        )
    )
    for i in range(1, 601):
        encounters.insert(
            (
                i,
                rng.randint(1, 120),
                rng.randint(0, 9999),
                rng.choice(WARDS),
                rng.choice(DIAGNOSES),
                rng.randint(20_000, 900_000),
                datetime.date(2012, 1, 1) + datetime.timedelta(days=rng.randint(0, 365)),
                rng.randint(1, 21),
                rng.choice(
                    [
                        "responded well to treatment",
                        "follow up required soon",
                        "transferred from emergency intake",
                        "discharged against advice",
                    ]
                ),
            )
        )
    return db


def main() -> None:
    db = build_database()
    workload = [
        # Ward-level cost roll-up (DET group + Paillier sums).
        "SELECT ward, SUM(cost) AS total_cost, COUNT(*) AS visits "
        "FROM encounters GROUP BY ward ORDER BY total_cost DESC",
        # Seasonal admissions (OPE range on dates).
        "SELECT diagnosis, COUNT(*) FROM encounters "
        "WHERE admitted BETWEEN DATE '2012-06-01' AND DATE '2012-08-31' "
        "GROUP BY diagnosis ORDER BY diagnosis",
        # Long stays above a spend threshold (client-side HAVING).
        "SELECT patient_id, SUM(cost) AS spend FROM encounters "
        "GROUP BY patient_id HAVING SUM(cost) > 2000000 ORDER BY spend DESC",
        # Note search (SEARCH tags).
        "SELECT ward, COUNT(*) FROM encounters WHERE notes LIKE '%transferred%' "
        "GROUP BY ward ORDER BY ward",
    ]
    client = MonomiClient.setup(db, workload, space_budget=2.0, paillier_bits=512)

    # Leakage audit: weakest scheme stored per column (the paper's Table 3
    # methodology).  Note ssn_last4 never needs anything weaker than the
    # DET fetch copy, and no column is ever plaintext.
    print("column leakage profile (weakest stored scheme):")
    design = complete_design(client.design, db)
    by_column: dict[str, set] = {}
    for entry in design.table_entries("encounters"):
        by_column.setdefault(entry.expr_sql, set()).add(entry.scheme)
    for column, schemes in sorted(by_column.items()):
        print(f"  {column:30s} {weakest(schemes).value.upper()}")

    print("\nanalytics over ciphertext:")
    for sql in workload:
        outcome = client.execute(sql)
        print(f"  {sql.split(' FROM ')[0]} ... -> {len(outcome.rows)} rows, "
              f"{outcome.ledger.total_seconds:.3f}s")
        for row in outcome.rows[:3]:
            print(f"    {row}")


if __name__ == "__main__":
    main()
