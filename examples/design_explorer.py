"""Design explorer: watch the designer trade space for speed.

Sweeps the space budget S and prints, for each design, the encrypted
columns chosen, projected server size, and the designer's workload cost
estimate — the §8.6 experiment as an interactive tool.

Run:  python examples/design_explorer.py
"""

from __future__ import annotations

import random
import datetime

from repro.core import CryptoProvider, Scheme, normalize_query
from repro.core.designer import Designer
from repro.core.sizer import DesignSizer
from repro.engine import Database, schema
from repro.sql import parse


def build_database() -> Database:
    rng = random.Random(99)
    db = Database("telemetry")
    events = db.create_table(
        schema(
            "events",
            ("event_id", "int"),
            ("device_id", "int"),
            ("reading", "int"),
            ("battery", "int"),
            ("seen_at", "date"),
            ("kind", "text"),
        )
    )
    for i in range(1, 501):
        events.insert(
            (
                i,
                rng.randint(1, 25),
                rng.randint(0, 10_000),
                rng.randint(0, 100),
                datetime.date(2013, 1, 1) + datetime.timedelta(days=rng.randint(0, 200)),
                rng.choice(["heartbeat", "alert", "reboot"]),
            )
        )
    return db


WORKLOAD = [
    "SELECT device_id, SUM(reading) AS total FROM events GROUP BY device_id ORDER BY total DESC",
    "SELECT COUNT(*) FROM events WHERE battery < 20 AND seen_at >= DATE '2013-05-01'",
    "SELECT kind, MAX(reading) FROM events GROUP BY kind",
]


def main() -> None:
    db = build_database()
    provider = CryptoProvider(b"design-explorer-master-key!!", paillier_bits=384)
    designer = Designer(db, provider)
    sizer = DesignSizer(db, provider)
    plaintext = sizer.plaintext_bytes()
    queries = [normalize_query(parse(sql)) for sql in WORKLOAD]

    print(f"plaintext size: {plaintext:,.0f} bytes")
    print(f"{'S':>5} | {'size':>8} | {'est. cost':>9} | extra encrypted columns")
    print("-" * 78)
    for budget in (1.0, 1.2, 1.5, 2.0, 3.0):
        try:
            result = designer.design_ilp(queries, space_budget=budget)
        except Exception as exc:
            print(f"{budget:5.1f} | infeasible ({exc})")
            continue
        extras = sorted(
            f"{e.expr_sql}:{e.scheme.value}"
            for e in result.design.entries
            if e.scheme in (Scheme.OPE, Scheme.SEARCH)
            or (e.scheme is Scheme.DET and e.is_precomputed)
        )
        groups = [
            f"hom[{','.join(g.expr_sqls)}]x{g.rows_per_ciphertext}"
            for g in result.design.hom_groups
        ]
        size = sizer.design_bytes(result.design)
        print(
            f"{budget:5.1f} | {size / plaintext:7.2f}x | {result.total_cost:9.4f} | "
            + "; ".join(extras + groups)
        )

    print("\nReading the table: as S grows the designer buys OPE columns for")
    print("the range filters, then Paillier groups for the SUMs — the same")
    print("progression as the paper's Figure 9, in reverse.")


if __name__ == "__main__":
    main()
