"""Quickstart: encrypt a database, run SQL, never show the server plaintext.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import datetime
import random

from repro.core import MonomiClient
from repro.engine import Database, schema


def build_database() -> Database:
    """A tiny sales database (plaintext, lives on the trusted client)."""
    rng = random.Random(42)
    db = Database("shop")
    orders = db.create_table(
        schema(
            "orders",
            ("order_id", "int"),
            ("customer_id", "int"),
            ("amount", "int"),  # cents
            ("placed_on", "date"),
            ("status", "text"),
            ("note", "text"),
        )
    )
    for i in range(1, 401):
        orders.insert(
            (
                i,
                rng.randint(1, 40),
                rng.randint(500, 90_000),
                datetime.date(2012, 1, 1) + datetime.timedelta(days=rng.randint(0, 600)),
                rng.choice(["open", "shipped", "returned"]),
                rng.choice(
                    ["gift wrap please", "expedite this order", "fragile contents", "no rush"]
                ),
            )
        )
    return db


def main() -> None:
    db = build_database()

    # A representative workload tells the designer which encrypted columns
    # to materialize (DET for grouping, OPE for ranges, Paillier for sums,
    # SEARCH for LIKE) within a 2x space budget.
    workload = [
        "SELECT customer_id, SUM(amount) AS total FROM orders "
        "GROUP BY customer_id ORDER BY total DESC LIMIT 5",
        "SELECT COUNT(*) FROM orders WHERE placed_on >= DATE '2013-01-01'",
        "SELECT status, SUM(amount) FROM orders WHERE note LIKE '%expedite%' GROUP BY status",
    ]
    client = MonomiClient.setup(db, workload, space_budget=2.0, paillier_bits=512)

    print(f"server stores {client.server_bytes():,} bytes "
          f"({client.space_overhead():.2f}x plaintext), all ciphertext\n")

    for sql in workload:
        outcome = client.execute(sql)
        print(f"SQL: {sql}")
        print(f"  -> {outcome.rows}")
        print(f"  cost: {outcome.ledger.summary()}\n")

    # Peek at what the untrusted server actually saw.
    print("What the server executed (no plaintext anywhere):")
    print(client.explain(workload[0]))


if __name__ == "__main__":
    main()
