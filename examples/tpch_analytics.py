"""TPC-H over encrypted data: the paper's headline scenario end to end.

Generates a small TPC-H database, designs an encrypted layout for the
19-query workload the paper supports, and runs a few signature queries,
comparing answers and cost against local plaintext execution.

Run:  python examples/tpch_analytics.py  [scale]
"""

from __future__ import annotations

import sys
import time

from repro.core import MonomiClient, normalize_query
from repro.engine import Executor
from repro.sql import parse
from repro.tpch import generate, supported_numbers, tpch_queries

SHOWCASE = [1, 6, 11, 18]  # Aggregation, selective scan, HAVING-subquery, IN-subquery.


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.0005
    print(f"generating TPC-H at scale {scale} ...")
    db = generate(scale=scale)
    queries = tpch_queries(scale)
    workload = [queries[n].sql for n in supported_numbers()]

    print("running the MONOMI designer (ILP, S = 2.0) ...")
    start = time.perf_counter()
    client = MonomiClient.setup(db, workload, space_budget=2.0, paillier_bits=384)
    print(
        f"setup took {time.perf_counter() - start:.1f}s; server space "
        f"{client.space_overhead():.2f}x plaintext\n"
    )

    plain = Executor(db)
    for number in SHOWCASE:
        query = normalize_query(parse(queries[number].sql))
        outcome = client.execute(query)
        start = time.perf_counter()
        expected = plain.execute(query)
        plain_seconds = time.perf_counter() - start
        match = sorted(map(str, outcome.rows)) == sorted(map(str, expected.rows))
        print(f"Q{number} ({queries[number].name})")
        print(f"  encrypted: {outcome.ledger.summary()}")
        print(f"  plaintext: {plain_seconds:.4f}s; answers match: {match}")
        print(f"  first row: {outcome.rows[0] if outcome.rows else '—'}\n")

    print("split plan for Q18 (the paper's pre-filtering example):")
    print(client.explain(queries[18].sql))


if __name__ == "__main__":
    main()
