"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package installs in offline environments that lack the ``wheel`` package
(``pip install -e . --no-build-isolation`` falls back to the legacy
develop path through it).
"""

from setuptools import setup

setup()
