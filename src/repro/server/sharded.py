"""Sharded scatter-gather execution: N backends behind one seam (PR 9).

One backend store is the scale ceiling of the split architecture: every
query drains a single :class:`~repro.server.backend.ServerBackend`.  The
paper's encryption schemes make scatter-gather natural — DET equality,
OPE order, and Paillier addition all survive partitioning, so partial
results combine commutatively above N independent stores (the same
observation that lets MRV split one logical value over many physical
records: the combine op commutes).

:class:`ShardedBackend` implements the existing ``ServerBackend`` seam
over N inner backends plus a local *coordinator*
(:class:`~repro.engine.catalog.Database`) that holds replicated tables,
the packed-Paillier ciphertext store, and the merge engine.  Because it
is just another backend, it composes for free with streaming, chaos
wrapping, the service layer's worker views, and
:class:`~repro.net.client.RemoteBackend` shards (N TCP servers).

Row routing happens at load time: ``insert_rows`` assigns each row a
global ordinal (a hidden ``__shard_ord`` column appended to every shard
table) and routes it by the hash of its DET shard key — or by ordinal
when the schema has no DET column.  The ordinal is the merge fence:
every gather path re-establishes the exact serial row order by merging
on it, so plaintext rows, block boundaries, and ledger byte counts are
**shard-count-invariant** (N=1 is byte-identical to the serial
reference).

Query execution classifies the server query into four gather modes:

* **scan** — streamable scan: fan out with per-shard LIMIT, k-way merge
  on ordinal (`heapq.merge`), trim the global LIMIT;
* **ordered** — ORDER BY (OPE keys): per-shard top-k with the ordinal as
  final tiebreak, k-way sorted merge with the engine's exact NULL
  ordering per direction;
* **partial aggregation** — GROUP BY / aggregates: shards compute
  partial states (counts, OPE min/max, ``grp`` value lists, ``hom_agg``
  row-id lists), the coordinator merges groups by DET key in global
  first-encounter order and re-aggregates — Paillier partial sums
  recombine by ciphertext multiplication inside
  :class:`~repro.engine.aggregates.HomAgg` over the merged row ids;
* **general** — joins, DISTINCT, subqueries: gather the referenced
  partitioned tables (ordinal-merged, so relation order is serial) into
  the coordinator and run the unmodified engine there.

Scan-byte accounting is computed by the coordinator from the logical
(pre-ordinal) table sizes — one heap read per table occurrence plus the
ciphertext-store read window, exactly the serial engine's static
accounting — so the ledger never sees the shard topology.

Faults on one shard retry per the PR 6 taxonomy without disturbing the
others: materialized fan-out retries each shard's request independently
(:func:`~repro.common.retry.retry_call`), and the streaming fan-out
re-opens only the faulted shard's stream, fast-forwarding past rows it
already delivered.
"""

from __future__ import annotations

import hashlib
import heapq
import os
import queue
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.common.errors import ConfigError, TransientError
from repro.common.retry import Deadline, RetryPolicy, retry_call
from repro.engine.aggregates import HomAgg
from repro.engine.catalog import Database
from repro.engine.executor import ExecStats, Executor, ResultSet
from repro.engine.rowblock import (
    DEFAULT_BLOCK_ROWS,
    BlockStream,
    blocks_from_rows,
    rechunk_rows,
)
from repro.engine.schema import ColumnDef, TableSchema
from repro.server.backend import (
    ServerBackend,
    supports_deadline,
    supports_partitions,
)
from repro.sql import ast
from repro.storage.rowcodec import encode_value, row_bytes

#: Environment variable: shard count applied by ``MonomiClient.setup``.
SHARDS_ENV = "MONOMI_SHARDS"

#: Hidden per-row global ordinal appended to every shard table: the merge
#: fence that re-establishes serial row order above the shards.
ORDINAL_COLUMN = "__shard_ord"

#: Scratch table name the partial-aggregation finalizer materializes
#: merged groups into (lives in a throwaway scratch Database).
_GROUPS_TABLE = "__sharded_groups"

#: Per-shard bounded prefetch queue depth for the streaming fan-out.
_STREAM_QUEUE_BLOCKS = 4


def shards_from_env() -> int:
    """The ``MONOMI_SHARDS`` count (>= 1), or 1 when unset."""
    raw = os.environ.get(SHARDS_ENV)
    if raw is None or raw == "":
        return 1
    try:
        count = int(raw)
    except ValueError:
        raise ConfigError(f"{SHARDS_ENV} must be an integer, got {raw!r}") from None
    if count < 1:
        raise ConfigError(f"{SHARDS_ENV} must be >= 1, got {count}")
    return count


def resolve_shards(shards: int | None) -> int:
    """Explicit count wins; otherwise ``MONOMI_SHARDS``; otherwise 1."""
    if shards is None:
        return shards_from_env()
    if shards < 1:
        raise ConfigError(f"shards must be >= 1, got {shards}")
    return shards


def route_hash(value: object) -> int:
    """Deterministic shard-routing hash of one (ciphertext) cell value.

    Python's built-in ``hash`` is per-process salted; routing must be
    stable across processes (a TCP redeploy must find its rows), so the
    hash is SHA-256 over the rowcodec's canonical value encoding.
    """
    digest = hashlib.sha256(encode_value(value)).digest()
    return int.from_bytes(digest[:8], "big")


# ---------------------------------------------------------------------------
# Ordered-merge key: the engine's exact sort semantics, per direction
# ---------------------------------------------------------------------------


class DirectedKey:
    """One ORDER BY key value under the engine's comparison semantics.

    The serial engine sorts with repeated stable passes of
    ``_SortKey`` (NULLs last) and ``reverse=not ascending`` — equivalent
    to one lexicographic comparison where each key compares ascending
    with NULLs last, or descending with NULLs first.  This wrapper is
    that per-key comparison, so ``heapq.merge`` over per-shard sorted
    streams reproduces the serial order exactly (ties fall through to
    the ordinal tiebreak the caller appends).
    """

    __slots__ = ("value", "ascending")

    def __init__(self, value: object, ascending: bool) -> None:
        self.value = value
        self.ascending = ascending

    def __lt__(self, other: "DirectedKey") -> bool:
        a, b = self.value, other.value
        if a is None or b is None:
            if a is None and b is None:
                return False
            # Ascending: NULLs last (a None is never less).  Descending
            # inverts the serial pass, putting NULLs first.
            return (a is None) != self.ascending
        return a < b if self.ascending else b < a

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DirectedKey) and self.value == other.value

    def __hash__(self) -> int:  # pragma: no cover - keys are never hashed
        return hash((self.value, self.ascending))


def merge_sorted_rows(
    shard_rows: Sequence[Iterable[tuple]],
    key_slots: Sequence[tuple[int, bool]],
    ordinal_slot: int,
    limit: int | None = None,
) -> Iterator[tuple]:
    """K-way merge of per-shard sorted rows into the serial total order.

    ``key_slots`` is ``[(column_index, ascending), ...]``; the ordinal at
    ``ordinal_slot`` breaks every remaining tie (it is globally unique),
    which makes the merge exact, not merely stable.  Each input must
    already be sorted by the same composite — true by construction, the
    shard query ends with an ascending ordinal ORDER BY key.
    """

    def sort_key(row: tuple) -> tuple:
        directed = tuple(
            DirectedKey(row[slot], ascending) for slot, ascending in key_slots
        )
        return directed + (row[ordinal_slot],)

    merged = heapq.merge(*shard_rows, key=sort_key)
    if limit is None:
        yield from merged
        return
    for count, row in enumerate(merged):
        if count >= limit:
            return
        yield row


def merge_scan_rows(
    shard_rows: Sequence[Iterable[tuple]],
    ordinal_slot: int,
    limit: int | None = None,
) -> Iterator[tuple]:
    """Ordinal-only merge: the serial scan order of a partitioned table."""
    return merge_sorted_rows(shard_rows, (), ordinal_slot, limit)


# ---------------------------------------------------------------------------
# Partial-aggregation plan (mode 3)
# ---------------------------------------------------------------------------


@dataclass
class _AggSpec:
    """How one aggregate call is partialized and merged.

    ``kind`` selects the merge rule; ``slots`` maps the shard query's
    partial columns (by alias) feeding this aggregate.
    """

    call: ast.FuncCall
    kind: str  # count | sum | min | max | avg | grp | hom | distinct
    slots: dict[str, str] = field(default_factory=dict)


@dataclass
class _PartialPlan:
    """A mode-3 execution recipe: shard query + merge + finalize query."""

    shard_query: ast.Select
    key_count: int
    specs: list[_AggSpec]
    final_query: ast.Select
    needs_pairs: bool  # Any spec consuming the shared grp(ordinal) column.


class _Unsupported(Exception):
    """Internal: this query shape has no partial-aggregation recipe."""


def _subqueries_anywhere(query: ast.Select) -> bool:
    exprs: list[ast.Expr] = [item.expr for item in query.items]
    exprs.extend(query.group_by)
    exprs.extend(o.expr for o in query.order_by)
    if query.where is not None:
        exprs.append(query.where)
    if query.having is not None:
        exprs.append(query.having)
    if any(ast.find_subqueries(e) for e in exprs):
        return True
    return any(
        not isinstance(ref, ast.TableName) for ref in query.from_items
    )


def _resolve_aliases(query: ast.Select, expr: ast.Expr) -> ast.Expr:
    """Replace bare output-alias references with the aliased expression
    (HAVING / ORDER BY may name an item alias; partializing needs the
    underlying expression)."""
    aliases = {
        item.alias: item.expr for item in query.items if item.alias is not None
    }

    def sub(node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.Column) and node.table is None:
            replacement = aliases.get(node.name)
            if replacement is not None:
                return replacement
        return node

    return ast.transform(expr, sub)


class ShardedBackend(ServerBackend):
    """N independent ``ServerBackend`` shards behind the single-server seam."""

    kind = "sharded"

    #: Bucket commits are per shard, not a prefix of the request order:
    #: a partially applied insert cannot be resumed by slicing the batch
    #: (see the idempotent-insert helper in ``core.loader``).
    supports_prefix_resume = False

    def __init__(
        self,
        shards: Sequence[ServerBackend],
        name: str = "server",
        shard_keys: dict[str, str | None] | None = None,
        retry_policy: RetryPolicy | None = None,
        _shared: "ShardedBackend | None" = None,
    ) -> None:
        if not shards:
            raise ConfigError("ShardedBackend needs at least one shard")
        self.shards = list(shards)
        self.last_stats = ExecStats()
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        if _shared is not None:
            # A re-pointed topology (e.g. the same loaded data served by
            # RemoteBackend shards): share every piece of coordinator
            # state so introspection, routing, and planning are
            # unchanged — only where queries are sent differs.
            self._db = _shared._db
            self._tables = _shared._tables
            self._shard_keys = _shared._shard_keys
            self._gather_lock = _shared._gather_lock
        else:
            self._db = Database(f"{name}_coordinator")
            self._tables: dict[str, _ShardedTable] = {}
            self._shard_keys = dict(shard_keys or {})
            self._gather_lock = threading.Lock()
        self._executor = Executor(self._db)
        self._shard_deadline = [supports_deadline(s) for s in self.shards]
        self._shard_partitions = [supports_partitions(s) for s in self.shards]

    # -- topology ------------------------------------------------------------

    def with_shards(self, shards: Sequence[ServerBackend]) -> "ShardedBackend":
        """The same loaded coordinator state over a different shard set.

        The TCP deployment path: load in-process, serve each shard with
        its own :class:`~repro.net.MonomiServer`, then re-point the
        coordinator at N :class:`RemoteBackend` connections.  The shard
        count and per-table routing must match the loaded topology.
        """
        if len(shards) != len(self.shards):
            raise ConfigError(
                f"shard topology mismatch: loaded {len(self.shards)} "
                f"shards, got {len(shards)}"
            )
        return ShardedBackend(
            shards, retry_policy=self.retry_policy, _shared=self
        )

    @property
    def ciphertext_store(self):
        # Packed-Paillier files live on the coordinator only: the grp()
        # rewrite ships row-id lists, never ciphertexts, so shards hold
        # table heaps and nothing else.
        return self._db.ciphertext_store

    def _retry_rng(self) -> random.Random:
        # Fixed-seed jitter, same discipline as the plan executor: fault
        # schedules replay with identical retry timing.
        return random.Random(0x5EED)

    # -- loading -------------------------------------------------------------

    def _route_column(self, schema: TableSchema) -> int | None:
        """Schema position of the DET shard key, or None (ordinal routing).

        The designer chooses by name: an explicit ``shard_keys`` entry
        wins; otherwise the first DET column in schema order (its
        deterministic ciphertexts make equal plaintexts co-resident, the
        leakage already in the DET budget).
        """
        choice = self._shard_keys.get(schema.name, "")
        if choice is None:
            raise ConfigError(
                f"table {schema.name!r} is marked replicated; it has no "
                "shard route"
            )
        if choice:
            try:
                return schema.column_index(choice)
            except Exception:
                raise ConfigError(
                    f"shard key {choice!r} is not a column of "
                    f"{schema.name!r}"
                ) from None
        for index, column in enumerate(schema.columns):
            if column.name.endswith("_det"):
                return index
        return None

    def _is_replicated(self, table_name: str) -> bool:
        return (
            table_name in self._shard_keys
            and self._shard_keys[table_name] is None
        )

    def create_table(self, schema: TableSchema) -> None:
        if self._is_replicated(schema.name):
            self._db.create_table(schema)
            return
        shard_schema = TableSchema(
            name=schema.name,
            columns=tuple(schema.columns) + (ColumnDef(ORDINAL_COLUMN, "int"),),
        )
        for shard in self.shards:
            shard.create_table(shard_schema)
        self._tables[schema.name] = _ShardedTable(
            schema=schema,
            shard_schema=shard_schema,
            route_index=self._route_column(schema),
        )

    def insert_rows(self, table_name: str, rows: Iterable[tuple]) -> None:
        meta = self._tables.get(table_name)
        if meta is None:
            self._db.table(table_name).insert_many(rows)
            return
        count = len(self.shards)
        buckets: list[list[tuple]] = [[] for _ in range(count)]
        bucket_bytes = [0] * count
        ordinal = meta.next_ordinal
        for row in rows:
            if meta.route_index is None:
                target = ordinal % count
            else:
                target = route_hash(row[meta.route_index]) % count
            bucket_bytes[target] += row_bytes(row)
            buckets[target].append(tuple(row) + (ordinal,))
            ordinal += 1
        # Per-shard inserts retry independently so a transient fault on
        # one shard never leaves the batch half-routed: by the time this
        # method returns (or raises a fatal error on first attempt), no
        # sibling shard holds rows a caller-level retry would duplicate.
        # The ordinal watermark and byte accounting advance per committed
        # bucket — not once at the end — so a failure on a later bucket
        # cannot leave `next_ordinal` below ordinals an earlier bucket
        # already committed (a caller-level retry would then mint
        # duplicate `__shard_ord` values for the surviving rows).
        for index, bucket in enumerate(buckets):
            if not bucket:
                continue
            shard = self.shards[index]
            retry_call(
                lambda shard=shard, bucket=bucket: shard.insert_rows(
                    table_name, bucket
                ),
                self.retry_policy,
                rng=self._retry_rng(),
            )
            meta.next_ordinal = max(meta.next_ordinal, bucket[-1][-1] + 1)
            meta.logical_bytes += bucket_bytes[index]

    # -- encrypted DML (PR 10) -----------------------------------------------
    #
    # DML requests address rows by their *logical* encrypted tuples
    # (without the hidden ordinal — callers never see it).  The
    # coordinator gathers each shard's stored rows, matches requests in
    # global ordinal order (deterministic under any shard interleaving),
    # and forwards full shard rows — ordinal included, so each forwarded
    # tuple is globally unique and a shard-side exact match can never
    # touch a sibling duplicate.  Replaced rows keep their ordinal and
    # shard: DET-key co-residency may drift after updates, but routing
    # is a locality optimization — merges are key-exact regardless.

    def _gathered_rows(
        self, table_name: str, meta: "_ShardedTable"
    ) -> list[tuple[int, tuple]]:
        """Every stored ``(shard_index, full_row)``, ordinal-sorted."""
        scan = ast.Select(
            items=tuple(
                ast.SelectItem(ast.Column(c.name))
                for c in meta.shard_schema.columns
            ),
            from_items=(ast.TableName(table_name),),
        )
        pairs: list[tuple[int, tuple]] = []
        for index, shard in enumerate(self.shards):
            for row in shard.execute(scan).rows:
                pairs.append((index, tuple(row)))
        pairs.sort(key=lambda pair: pair[1][-1])
        return pairs

    def delete_rows(self, table_name: str, rows: Iterable[tuple]) -> int:
        meta = self._tables.get(table_name)
        if meta is None:
            return self._db.table(table_name).delete_exact(rows)
        wanted: dict[tuple, int] = {}
        for row in rows:
            key = tuple(row)
            wanted[key] = wanted.get(key, 0) + 1
        if not wanted:
            return 0
        batches: list[list[tuple]] = [[] for _ in self.shards]
        for index, full in self._gathered_rows(table_name, meta):
            logical = full[:-1]
            count = wanted.get(logical, 0)
            if count:
                wanted[logical] = count - 1
                batches[index].append(full)
        removed = 0
        # Per-shard accounting, same discipline as insert: a later
        # shard's fatal failure must not un-account an earlier shard's
        # committed deletes.
        for index, batch in enumerate(batches):
            if not batch:
                continue
            shard = self.shards[index]
            retry_call(
                lambda shard=shard, batch=batch: shard.delete_rows(
                    table_name, batch
                ),
                self.retry_policy,
                rng=self._retry_rng(),
            )
            # The matched rows are gone once the shard call converges —
            # a faulted-then-retried attempt may report a smaller count
            # for rows the first attempt already removed, so accounting
            # follows the match set, not the last attempt's return.
            removed += len(batch)
            meta.logical_bytes -= sum(row_bytes(r[:-1]) for r in batch)
        return removed

    def replace_rows(
        self, table_name: str, pairs: Iterable[tuple[tuple, tuple]]
    ) -> int:
        meta = self._tables.get(table_name)
        if meta is None:
            return self._db.table(table_name).replace_exact(pairs)
        pending: dict[tuple, list[tuple]] = {}
        total = 0
        for old, new in pairs:
            pending.setdefault(tuple(old), []).append(tuple(new))
            total += 1
        if not total:
            return 0
        batches: list[list[tuple[tuple, tuple]]] = [[] for _ in self.shards]
        deltas = [0] * len(self.shards)
        for index, full in self._gathered_rows(table_name, meta):
            logical = full[:-1]
            queue = pending.get(logical)
            if queue:
                new = queue.pop(0)
                new_full = tuple(new) + (full[-1],)
                batches[index].append((full, new_full))
                deltas[index] += row_bytes(tuple(new)) - row_bytes(logical)
        replaced = 0
        for index, batch in enumerate(batches):
            if not batch:
                continue
            shard = self.shards[index]
            retry_call(
                lambda shard=shard, batch=batch: shard.replace_rows(
                    table_name, batch
                ),
                self.retry_policy,
                rng=self._retry_rng(),
            )
            replaced += len(batch)
            meta.logical_bytes += deltas[index]
        return replaced

    # -- introspection -------------------------------------------------------

    def table_names(self) -> list[str]:
        return sorted(set(self._tables) | set(self._db.tables))

    def table_bytes(self, table_name: str) -> int:
        meta = self._tables.get(table_name)
        if meta is not None:
            return meta.logical_bytes
        return self._db.table(table_name).total_bytes

    def has_table(self, table_name: str) -> bool:
        return table_name in self._tables or self._db.has_table(table_name)

    def row_count(self, table_name: str) -> int:
        meta = self._tables.get(table_name)
        if meta is None:
            return len(self._db.table(table_name).rows)
        return sum(shard.row_count(table_name) for shard in self.shards)

    def adopt_table(self, schema: TableSchema) -> None:
        """Resume support: re-register a partitioned table against shard
        data a previous load committed, recovering the logical byte count
        and the ordinal watermark by scanning the shards once."""
        if self._is_replicated(schema.name):
            self._db.table(schema.name)
            return
        if schema.name in self._tables:
            return
        shard_schema = TableSchema(
            name=schema.name,
            columns=tuple(schema.columns) + (ColumnDef(ORDINAL_COLUMN, "int"),),
        )
        meta = _ShardedTable(
            schema=schema,
            shard_schema=shard_schema,
            route_index=self._route_column(schema),
        )
        for shard in self.shards:
            shard.adopt_table(shard_schema)
            if shard.row_count(schema.name) == 0:
                continue
            scan = ast.Select(
                items=tuple(
                    ast.SelectItem(ast.Column(c.name))
                    for c in shard_schema.columns
                ),
                from_items=(ast.TableName(schema.name),),
            )
            for row in shard.execute(scan).rows:
                meta.logical_bytes += row_bytes(row[:-1])
                meta.next_ordinal = max(meta.next_ordinal, row[-1] + 1)
        self._tables[schema.name] = meta

    # -- query execution -----------------------------------------------------

    def _partitioned_in(self, query: ast.Select) -> list[str]:
        seen: list[str] = []
        for name in ast.table_occurrences(query):
            if name in self._tables and name not in seen:
                seen.append(name)
        return seen

    def _classify(
        self, query: ast.Select
    ) -> tuple[str, _PartialPlan | None]:
        """Pick the gather mode for one server query."""
        partitioned = self._partitioned_in(query)
        if not partitioned:
            return "local", None
        simple = (
            len(query.from_items) == 1
            and isinstance(query.from_items[0], ast.TableName)
            and query.from_items[0].name in self._tables
            and not _subqueries_anywhere(query)
        )
        if not simple:
            return "general", None
        has_aggregates = query.group_by or any(
            ast.contains_aggregate(item.expr) for item in query.items
        )
        if has_aggregates:
            try:
                return "partial", self._plan_partial(query)
            except _Unsupported:
                return "general", None
        if query.distinct or query.having is not None:
            return "general", None
        if query.order_by:
            return "ordered", None
        return "scan", None

    def execute(
        self,
        query: ast.Select,
        params: dict[str, object] | None = None,
        deadline: Deadline | None = None,
    ) -> ResultSet:
        mode, plan = self._classify(query)
        if mode == "local":
            result = self._executor.execute(query, params=params)
            self.last_stats = self._executor.last_stats
            return result
        stats = ExecStats()
        columns = [item.output_name(i) for i, item in enumerate(query.items)]
        store = self._db.ciphertext_store
        store_start = store.bytes_read
        if mode == "general":
            result = self._execute_general(query, params, deadline)
            self.last_stats = self._executor.last_stats
            return result
        # Static scan accounting, identical to the serial engine: one
        # logical heap read per table occurrence, charged up front, plus
        # whatever the merge reads from the ciphertext store.
        for name in ast.table_occurrences(query):
            if self.has_table(name):
                stats.bytes_scanned += self.table_bytes(name)
        if mode == "partial":
            rows = self._execute_partial(plan, params, deadline)
        elif mode == "ordered":
            rows = self._execute_ordered(query, params, deadline)
        else:
            rows = self._execute_scan(query, params, deadline)
        stats.bytes_scanned += store.bytes_read - store_start
        stats.rows_output = len(rows)
        self.last_stats = stats
        return ResultSet(columns, rows)

    # -- fan-out primitives --------------------------------------------------

    def _shard_execute(
        self,
        index: int,
        query: ast.Select,
        params: dict[str, object] | None,
        deadline: Deadline | None,
    ) -> ResultSet:
        shard = self.shards[index]

        def attempt() -> ResultSet:
            if deadline is not None and self._shard_deadline[index]:
                return shard.execute(query, params=params, deadline=deadline)
            return shard.execute(query, params=params)

        return retry_call(
            attempt, self.retry_policy, deadline=deadline, rng=self._retry_rng()
        )

    def _fan_execute(
        self,
        query: ast.Select,
        params: dict[str, object] | None,
        deadline: Deadline | None,
    ) -> list[ResultSet]:
        """Run one query on every shard concurrently; per-shard retries."""
        count = len(self.shards)
        if count == 1:
            return [self._shard_execute(0, query, params, deadline)]
        results: list[ResultSet | None] = [None] * count
        errors: list[BaseException] = []
        lock = threading.Lock()

        def run(index: int) -> None:
            try:
                results[index] = self._shard_execute(
                    index, query, params, deadline
                )
            except BaseException as exc:
                with lock:
                    errors.append(exc)

        threads = [
            threading.Thread(
                target=run, args=(i,), name=f"shard-exec-{i}", daemon=True
            )
            for i in range(count)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return results  # type: ignore[return-value]

    # -- mode: scan ----------------------------------------------------------

    def _scan_query(self, query: ast.Select) -> ast.Select:
        items = tuple(query.items) + (
            ast.SelectItem(ast.Column(ORDINAL_COLUMN), ORDINAL_COLUMN),
        )
        return ast.Select(
            items=items,
            from_items=query.from_items,
            where=query.where,
            limit=query.limit,
        )

    def _execute_scan(
        self,
        query: ast.Select,
        params: dict[str, object] | None,
        deadline: Deadline | None,
    ) -> list[tuple]:
        shard_query = self._scan_query(query)
        results = self._fan_execute(shard_query, params, deadline)
        merged = merge_scan_rows(
            [r.rows for r in results], len(query.items), query.limit
        )
        return [row[:-1] for row in merged]

    # -- mode: ordered -------------------------------------------------------

    def _ordered_query(
        self, query: ast.Select
    ) -> tuple[ast.Select, list[tuple[int, bool]]]:
        """Shard query for an ORDER BY scan plus merge-key column slots.

        ORDER BY keys that already are items (by structural equality or
        output alias) reuse the item's column; anything else rides along
        as an extra projected item.  The shard-side ORDER BY appends the
        ordinal ascending, making each shard's output a total order the
        k-way merge can consume exactly.
        """
        items = list(query.items)
        key_slots: list[tuple[int, bool]] = []
        extra = 0
        for order in query.order_by:
            slot = None
            for index, item in enumerate(query.items):
                alias_match = (
                    isinstance(order.expr, ast.Column)
                    and order.expr.table is None
                    and item.alias == order.expr.name
                )
                if item.expr == order.expr or alias_match:
                    slot = index
                    break
            if slot is None:
                slot = len(items)
                items.append(ast.SelectItem(order.expr, f"__okey{extra}"))
                extra += 1
            key_slots.append((slot, order.ascending))
        ordinal_slot = len(items)
        items.append(ast.SelectItem(ast.Column(ORDINAL_COLUMN), ORDINAL_COLUMN))
        shard_query = ast.Select(
            items=tuple(items),
            from_items=query.from_items,
            where=query.where,
            order_by=tuple(query.order_by)
            + (ast.OrderItem(ast.Column(ORDINAL_COLUMN)),),
            limit=query.limit,
        )
        return shard_query, key_slots

    def _execute_ordered(
        self,
        query: ast.Select,
        params: dict[str, object] | None,
        deadline: Deadline | None,
    ) -> list[tuple]:
        shard_query, key_slots = self._ordered_query(query)
        results = self._fan_execute(shard_query, params, deadline)
        width = len(query.items)
        merged = merge_sorted_rows(
            [r.rows for r in results],
            key_slots,
            len(shard_query.items) - 1,
            query.limit,
        )
        return [row[:width] for row in merged]

    # -- mode: partial aggregation ------------------------------------------

    def _plan_partial(self, query: ast.Select) -> _PartialPlan:
        """Build the shard partial query + merge plan, or raise
        :class:`_Unsupported` (the general gather handles anything)."""
        key_exprs = list(query.group_by)
        key_index = {expr: j for j, expr in enumerate(key_exprs)}
        having = (
            _resolve_aliases(query, query.having)
            if query.having is not None
            else None
        )
        order_by = tuple(
            ast.OrderItem(_resolve_aliases(query, o.expr), o.ascending)
            for o in query.order_by
        )

        aggregates: list[ast.FuncCall] = []
        agg_index: dict[ast.FuncCall, int] = {}
        sources: list[ast.Expr] = [item.expr for item in query.items]
        if having is not None:
            sources.append(having)
        sources.extend(o.expr for o in order_by)
        for expr in sources:
            for call in ast.find_aggregates(expr):
                if call not in agg_index:
                    agg_index[call] = len(aggregates)
                    aggregates.append(call)

        shard_items: list[ast.SelectItem] = [
            ast.SelectItem(expr, f"__k{j}") for j, expr in enumerate(key_exprs)
        ]
        specs: list[_AggSpec] = []
        needs_pairs = False

        def add_item(expr: ast.Expr, alias: str) -> str:
            shard_items.append(ast.SelectItem(expr, alias))
            return alias

        for position, call in enumerate(aggregates):
            label = f"__a{position}"
            arg = call.args[0] if call.args else None
            if call.name in ("hom_agg", "paillier_sum"):
                if call.distinct or len(call.args) != 2:
                    raise _Unsupported()
                file_expr = call.args[0]
                if not isinstance(file_expr, ast.Literal):
                    raise _Unsupported()
                spec = _AggSpec(call, "hom")
                spec.slots["ids"] = add_item(
                    ast.FuncCall("grp", (call.args[1],)), label
                )
            elif call.name == "count":
                if call.distinct:
                    if call.star or arg is None:
                        raise _Unsupported()
                    spec = _AggSpec(call, "count_distinct")
                    spec.slots["values"] = add_item(
                        ast.FuncCall("grp", (arg,)), label
                    )
                else:
                    spec = _AggSpec(call, "count")
                    spec.slots["partial"] = add_item(call, label)
            elif call.name in ("min", "max"):
                spec = _AggSpec(call, call.name)
                spec.slots["partial"] = add_item(
                    ast.FuncCall(call.name, call.args), label
                )
            elif call.name in ("sum", "avg") and call.distinct:
                # Exact distinct-order semantics: dedupe over the merged
                # (ordinal, value) pairs in global first-encounter order,
                # then feed the serial aggregate.
                if arg is None:
                    raise _Unsupported()
                spec = _AggSpec(call, "distinct")
                spec.slots["values"] = add_item(
                    ast.FuncCall("grp", (arg,)), label
                )
                needs_pairs = True
            elif call.name == "sum":
                spec = _AggSpec(call, "sum")
                spec.slots["partial"] = add_item(call, label)
            elif call.name == "avg":
                if arg is None:
                    raise _Unsupported()
                spec = _AggSpec(call, "avg")
                spec.slots["sum"] = add_item(
                    ast.FuncCall("sum", (arg,)), f"{label}s"
                )
                spec.slots["count"] = add_item(
                    ast.FuncCall("count", (arg,)), f"{label}c"
                )
            elif call.name == "grp":
                if call.distinct or arg is None:
                    raise _Unsupported()
                spec = _AggSpec(call, "grp")
                spec.slots["values"] = add_item(
                    ast.FuncCall("grp", (arg,)), label
                )
                needs_pairs = True
            else:  # pragma: no cover - AGGREGATE_FUNCTIONS is closed
                raise _Unsupported()
            specs.append(spec)

        gmin_alias = add_item(
            ast.FuncCall("min", (ast.Column(ORDINAL_COLUMN),)), "__gmin"
        )
        del gmin_alias
        if needs_pairs:
            add_item(ast.FuncCall("grp", (ast.Column(ORDINAL_COLUMN),)), "__gord")

        shard_query = ast.Select(
            items=tuple(shard_items),
            from_items=query.from_items,
            where=query.where,
            group_by=tuple(key_exprs),
        )

        # Finalize query over the merged-groups scratch table: replace
        # aggregate calls with their merged columns and group-key
        # expressions with their key columns; any other column reference
        # means the value is not derivable from partials -> unsupported.
        def rewrite(expr: ast.Expr) -> ast.Expr:
            if expr in key_index:
                return ast.Column(f"__k{key_index[expr]}")
            if ast.is_aggregate_call(expr) and expr in agg_index:
                return ast.Column(f"__a{agg_index[expr]}")
            if isinstance(
                expr, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)
            ):
                raise _Unsupported()
            if isinstance(expr, ast.Column):
                raise _Unsupported()
            return ast._rebuild_children(expr, rewrite)

        final_query = ast.Select(
            items=tuple(
                ast.SelectItem(rewrite(item.expr), item.output_name(i))
                for i, item in enumerate(query.items)
            ),
            from_items=(ast.TableName(_GROUPS_TABLE),),
            where=rewrite(having) if having is not None else None,
            order_by=tuple(
                ast.OrderItem(rewrite(o.expr), o.ascending) for o in order_by
            ),
            limit=query.limit,
        )
        return _PartialPlan(
            shard_query=shard_query,
            key_count=len(key_exprs),
            specs=specs,
            final_query=final_query,
            needs_pairs=needs_pairs,
        )

    def _execute_partial(
        self,
        plan: _PartialPlan,
        params: dict[str, object] | None,
        deadline: Deadline | None,
    ) -> list[tuple]:
        results = self._fan_execute(plan.shard_query, params, deadline)
        key_count = plan.key_count
        groups: dict[tuple, list[list[tuple]]] = {}
        order: list[tuple] = []
        for result in results:
            for row in result.rows:
                marker = tuple(
                    tuple(v) if isinstance(v, list) else v
                    for v in row[:key_count]
                )
                partials = groups.get(marker)
                if partials is None:
                    partials = []
                    groups[marker] = partials
                    order.append(marker)
                partials.append(row)

        # Global first-encounter order == ascending min-ordinal.  The
        # min(ordinal) column sits right after the per-aggregate slots;
        # it is None only for the empty-input identity row (at most one
        # group exists then, so the sort is vacuous).
        gmin_slot = key_count + sum(len(s.slots) for s in plan.specs)
        pairs_slot = gmin_slot + 1

        def group_min(marker: tuple) -> int:
            values = [
                row[gmin_slot]
                for row in groups[marker]
                if row[gmin_slot] is not None
            ]
            return min(values) if values else -1

        order.sort(key=group_min)

        # Slot layout of one shard partial row mirrors add_item order.
        slot_of: dict[tuple[int, str], int] = {}
        cursor = key_count
        for position, spec in enumerate(plan.specs):
            for slot_name in spec.slots:
                slot_of[(position, slot_name)] = cursor
                cursor += 1

        merged_rows: list[tuple] = []
        store = self._db.ciphertext_store
        for marker in order:
            partials = groups[marker]
            values: list[object] = list(partials[0][:key_count])
            for position, spec in enumerate(plan.specs):
                values.append(
                    self._merge_aggregate(
                        spec, position, partials, slot_of, pairs_slot, store
                    )
                )
            gmin = group_min(marker)
            merged_rows.append(tuple(values) + (gmin,))

        scratch = Database("sharded_merge")
        columns = [
            ColumnDef(f"__k{j}", "any") for j in range(key_count)
        ] + [ColumnDef(f"__a{i}", "any") for i in range(len(plan.specs))]
        columns.append(ColumnDef("__gmin", "any"))
        table = scratch.create_table(
            TableSchema(name=_GROUPS_TABLE, columns=tuple(columns))
        )
        table.rows = merged_rows  # Bypass sizing: scratch is never charged.
        final = Executor(scratch).execute(plan.final_query, params=params)
        return final.rows

    def _merge_aggregate(
        self,
        spec: _AggSpec,
        position: int,
        partials: list[tuple],
        slot_of: dict[tuple[int, str], int],
        pairs_slot: int,
        store,
    ) -> object:
        def column(slot_name: str) -> list[object]:
            slot = slot_of[(position, slot_name)]
            return [row[slot] for row in partials]

        kind = spec.kind
        if kind == "count":
            return sum(v for v in column("partial") if v is not None)
        if kind == "sum":
            values = [v for v in column("partial") if v is not None]
            return sum(values) if values else None
        if kind in ("min", "max"):
            values = [v for v in column("partial") if v is not None]
            if not values:
                return None
            return min(values) if kind == "min" else max(values)
        if kind == "avg":
            sums = [v for v in column("sum") if v is not None]
            count = sum(v for v in column("count") if v is not None)
            if not count:
                return None
            return sum(sums) / count
        if kind == "count_distinct":
            seen: set = set()
            for values in column("values"):
                seen.update(v for v in values if v is not None)
            return len(seen)
        if kind == "hom":
            agg = HomAgg(store)
            file_name = spec.call.args[0].value
            for ids in column("ids"):
                for row_id in ids:
                    agg.update([file_name, row_id])
            return agg.finalize()
        # Order-sensitive merges: interleave per-shard grp() lists by the
        # shared grp(ordinal) column back into the serial scan order.
        ordered = self._ordered_values(
            spec, position, partials, slot_of, pairs_slot
        )
        if kind == "grp":
            return tuple(ordered)
        if kind == "distinct":
            unique: dict = {}
            for value in ordered:
                key = tuple(value) if isinstance(value, list) else value
                if key not in unique:
                    unique[key] = value
            values = [v for v in unique.values() if v is not None]
            if spec.call.name == "sum":
                return sum(values) if values else None
            if not values:
                return None
            return sum(values) / len(values)
        raise ConfigError(f"unknown merge kind {kind!r}")  # pragma: no cover

    def _ordered_values(
        self,
        spec: _AggSpec,
        position: int,
        partials: list[tuple],
        slot_of: dict[tuple[int, str], int],
        pairs_slot: int,
    ) -> list[object]:
        slot = slot_of[(position, "values")]
        pairs: list[tuple[int, object]] = []
        for row in partials:
            ordinals = row[pairs_slot]
            values = row[slot]
            pairs.extend(zip(ordinals, values))
        pairs.sort(key=lambda pair: pair[0])
        return [value for _, value in pairs]

    # -- mode: general gather ------------------------------------------------

    def _gather_rows(
        self,
        table_name: str,
        deadline: Deadline | None,
    ) -> list[tuple]:
        """All rows of one partitioned table, in serial (ordinal) order,
        ordinal stripped."""
        meta = self._tables[table_name]
        scan = ast.Select(
            items=tuple(
                ast.SelectItem(ast.Column(c.name))
                for c in meta.shard_schema.columns
            ),
            from_items=(ast.TableName(table_name),),
        )
        results = self._fan_execute(scan, None, deadline)
        merged = merge_scan_rows(
            [r.rows for r in results], len(meta.shard_schema.columns) - 1
        )
        return [row[:-1] for row in merged]

    def _execute_general(
        self,
        query: ast.Select,
        params: dict[str, object] | None,
        deadline: Deadline | None,
    ) -> ResultSet:
        """Gather referenced partitioned tables into the coordinator and
        run the unmodified engine there — exact for every query shape,
        at full-gather cost (joins, DISTINCT, subqueries are rare in
        server halves; the planner pushes selective work down first)."""
        names = self._partitioned_in(query)
        with self._gather_lock:
            created: list[str] = []
            try:
                for name in names:
                    rows = self._gather_rows(name, deadline)
                    table = self._db.create_table(self._tables[name].schema)
                    created.append(name)
                    table.rows = rows
                    table.total_bytes = self._tables[name].logical_bytes
                result = self._executor.execute(query, params=params)
                return result
            finally:
                for name in created:
                    self._db.drop_table(name)

    # -- streaming -----------------------------------------------------------

    def execute_stream(
        self,
        query: ast.Select,
        params: dict[str, object] | None = None,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        partitions: int = 1,
        deadline: Deadline | None = None,
    ) -> BlockStream:
        mode, plan = self._classify(query)
        if mode in ("scan", "ordered"):
            return self._stream_merged(
                query, params, block_rows, partitions, deadline, mode
            )
        # Blocking gathers materialize and re-block — the native-backend
        # fallback contract: partition requests degrade to serial on
        # shapes that cannot stream, they never error.
        result = self.execute(query, params=params, deadline=deadline)
        blocks = blocks_from_rows(result.rows, len(result.columns), block_rows)
        return BlockStream(result.columns, blocks, self.last_stats)

    def _stream_merged(
        self,
        query: ast.Select,
        params: dict[str, object] | None,
        block_rows: int,
        partitions: int,
        deadline: Deadline | None,
        mode: str,
    ) -> BlockStream:
        """True scatter-gather streaming: one bounded-queue prefetch
        producer per shard, k-way merge in the consumer, serial block
        boundaries via :func:`rechunk_rows`."""
        if mode == "ordered":
            shard_query, key_slots = self._ordered_query(query)
        else:
            shard_query, key_slots = self._scan_query(query), []
        width = len(query.items)
        ordinal_slot = len(shard_query.items) - 1
        stats = ExecStats()
        self.last_stats = stats
        for name in ast.table_occurrences(query):
            if self.has_table(name):
                stats.bytes_scanned += self.table_bytes(name)
        columns = [item.output_name(i) for i, item in enumerate(query.items)]
        stop = threading.Event()

        def producer(index: int, out: queue.Queue) -> None:
            try:
                for chunk in self._resilient_shard_rows(
                    index, shard_query, params, block_rows, partitions,
                    deadline, stop,
                ):
                    if not queue_put(out, ("rows", chunk), stop):
                        return
                queue_put(out, ("end", None), stop)
            except BaseException as exc:
                queue_put(out, ("error", exc), stop)

        queues: list[queue.Queue] = []
        threads: list[threading.Thread] = []
        for index in range(len(self.shards)):
            out: queue.Queue = queue.Queue(maxsize=_STREAM_QUEUE_BLOCKS)
            thread = threading.Thread(
                target=producer,
                args=(index, out),
                name=f"shard-stream-{index}",
                daemon=True,
            )
            queues.append(out)
            threads.append(thread)

        def queue_rows(out: queue.Queue) -> Iterator[tuple]:
            while True:
                kind, payload = out.get()
                if kind == "end":
                    return
                if kind == "error":
                    raise payload
                yield from payload

        def merged_chunks() -> Iterator[list[tuple]]:
            try:
                for thread in threads:
                    thread.start()
                merged = merge_sorted_rows(
                    [queue_rows(out) for out in queues],
                    key_slots,
                    ordinal_slot,
                    query.limit,
                )
                chunk: list[tuple] = []
                for row in merged:
                    chunk.append(row[:width])
                    if len(chunk) >= block_rows:
                        if deadline is not None:
                            deadline.check("sharded stream")
                        yield chunk
                        chunk = []
                if chunk:
                    yield chunk
            finally:
                stop.set()
                for out in queues:  # Unblock producers stuck on put().
                    while True:
                        try:
                            out.get_nowait()
                        except queue.Empty:
                            break

        blocks = rechunk_rows(merged_chunks(), width, block_rows, stats)
        return BlockStream(columns, blocks, stats)

    def _resilient_shard_rows(
        self,
        index: int,
        shard_query: ast.Select,
        params: dict[str, object] | None,
        block_rows: int,
        partitions: int,
        deadline: Deadline | None,
        stop: threading.Event,
    ) -> Iterator[list[tuple]]:
        """One shard's rows as chunks, resuming through transient faults.

        Mirrors the plan executor's stream-resume discipline: a fault
        re-opens this shard's stream (the others are untouched), skips
        the rows already delivered downstream, and the attempt budget
        counts only consecutive faults with zero blocks received.
        """
        shard = self.shards[index]
        policy = self.retry_policy
        rng = self._retry_rng()
        delivered = 0
        failures = 0
        while True:
            got_block = False
            try:
                stream = self._open_shard_stream(
                    index, shard_query, params, block_rows, partitions,
                    deadline,
                )
                try:
                    skip = delivered
                    for block in stream:
                        got_block = True
                        rows = block.rows()
                        if skip:
                            if skip >= len(rows):
                                skip -= len(rows)
                                continue
                            rows = rows[skip:]
                            skip = 0
                        delivered += len(rows)
                        yield rows
                        if stop.is_set():
                            return
                finally:
                    stream.close()
                return
            except TransientError:
                failures = 0 if got_block else failures + 1
                if failures >= policy.max_attempts:
                    raise
                pause = policy.delay(failures, rng)
                if deadline is not None:
                    deadline.check(f"shard {index} stream retry")
                    pause = min(pause, max(0.0, deadline.remaining()))
                if pause > 0:
                    time.sleep(pause)

    def _open_shard_stream(
        self,
        index: int,
        shard_query: ast.Select,
        params: dict[str, object] | None,
        block_rows: int,
        partitions: int,
        deadline: Deadline | None,
    ) -> BlockStream:
        shard = self.shards[index]
        kwargs: dict[str, object] = {}
        if deadline is not None and self._shard_deadline[index]:
            kwargs["deadline"] = deadline
        if partitions > 1 and self._shard_partitions[index]:
            return shard.execute_stream(
                shard_query,
                params=params,
                block_rows=block_rows,
                partitions=partitions,
                **kwargs,
            )
        return shard.execute_stream(
            shard_query, params=params, block_rows=block_rows, **kwargs
        )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release shard resources (pools, sockets) when shards have any."""
        for shard in self.shards:
            close = getattr(shard, "close", None)
            if close is not None:
                close()


@dataclass
class _ShardedTable:
    """Coordinator-side metadata for one partitioned table."""

    schema: TableSchema
    shard_schema: TableSchema
    route_index: int | None
    logical_bytes: int = 0
    next_ordinal: int = 0


def queue_put(out: queue.Queue, item: object, stop: threading.Event) -> bool:
    """Bounded put that gives up when the consumer stopped (PR 4 shape)."""
    from repro.common.parallel import queue_put_bounded

    return queue_put_bounded(out, item, stop)


def make_sharded_backend(
    kind: str,
    shards: int,
    name: str = "server",
    shard_keys: dict[str, str | None] | None = None,
    **options,
) -> ShardedBackend:
    """N fresh single-kind shards behind one :class:`ShardedBackend`."""
    from repro.server import make_backend

    if shards < 1:
        raise ConfigError(f"shards must be >= 1, got {shards}")
    backends = [
        make_backend(kind, name=f"{name}_shard{i}", **options)
        for i in range(shards)
    ]
    return ShardedBackend(backends, name=name, shard_keys=shard_keys)


__all__ = [
    "ORDINAL_COLUMN",
    "SHARDS_ENV",
    "DirectedKey",
    "ShardedBackend",
    "make_sharded_backend",
    "merge_scan_rows",
    "merge_sorted_rows",
    "resolve_shards",
    "route_hash",
    "shards_from_env",
]
