"""Fault injection: a chaos proxy over any :class:`ServerBackend`.

:class:`FaultInjectingBackend` wraps a real backend and injects the
failures a networked MONOMI deployment would actually see — transient
request errors, result streams cut off mid-flight, latency spikes — at
the seam where the client library talks to the untrusted server.  The
rest of the stack is untouched: the resilience layer (retries in
:mod:`repro.common.retry`, stream resume in the plan executor, deadline
propagation) is exercised by the *same* query paths the production
configuration runs, which is the point.

Determinism: every injection decision comes from one seeded
``random.Random`` shared (under a lock) by the wrapper and all of its
worker views, so a single-threaded run with a given ``(seed, rate)``
replays the exact same fault schedule.  Concurrent service runs
interleave draws nondeterministically — there the guarantee under test
is the *invariant*, not the schedule: whatever faults land, a query
either returns byte-identical results to a fault-free run or raises a
typed error.

Enable it globally with ``MONOMI_CHAOS=seed:rate`` (e.g. ``7:0.05``):
:class:`~repro.core.client.MonomiClient` wraps its backend after
loading, which turns the whole equivalence suite into a chaos suite.

Failure-probability design note: injection is a Bernoulli draw per
*point* (one per request, one per streamed block), so long streams see
more faults than short ones — realistic, and safe because the
executor's stream resume resets its retry budget whenever an attempt
receives any block at all (a resume replays already-delivered rows
through fresh fault draws, so a budget keyed on *new* rows would
compound with stream depth).  A query fails permanently only after
``max_attempts`` faults with zero blocks received in between,
probability ``rate ** max_attempts`` per point — negligible at the
rates CI runs.
"""

from __future__ import annotations

import os
import random
import threading
import time
from typing import Iterable, Iterator

from repro.common.errors import (
    ConfigError,
    InjectedFaultError,
    TruncatedStreamError,
)
from repro.engine.executor import ResultSet
from repro.engine.rowblock import DEFAULT_BLOCK_ROWS, BlockStream, RowBlock
from repro.server.backend import (
    DelegatingView,
    ServerBackend,
    supports_partitions,
)
from repro.sql import ast

#: Environment variable that arms chaos globally: ``"seed:rate"``.
CHAOS_ENV = "MONOMI_CHAOS"

#: Upper bound on one injected latency spike (seconds) — large enough to
#: perturb scheduling, small enough that chaos CI stays fast.
_MAX_LATENCY_SPIKE = 0.005


def parse_chaos(spec: str) -> tuple[int, float]:
    """Parse a ``"seed:rate"`` chaos spec into ``(seed, rate)``."""
    seed_text, sep, rate_text = spec.partition(":")
    if not sep:
        raise ConfigError(
            f"{CHAOS_ENV} must look like 'seed:rate' (e.g. '7:0.05'), "
            f"got {spec!r}"
        )
    try:
        seed = int(seed_text)
        rate = float(rate_text)
    except ValueError:
        raise ConfigError(
            f"{CHAOS_ENV} must be 'int:float', got {spec!r}"
        ) from None
    if not 0.0 <= rate <= 1.0:
        raise ConfigError(f"{CHAOS_ENV} rate must be in [0, 1], got {rate}")
    return seed, rate


def chaos_from_env() -> tuple[int, float] | None:
    """The ``MONOMI_CHAOS`` spec, parsed, or None when chaos is off."""
    raw = os.environ.get(CHAOS_ENV)
    if raw is None or raw == "":
        return None
    return parse_chaos(raw)


class _ChaosCore:
    """The shared heart of one chaos configuration: RNG, lock, counters.

    One core is shared by a :class:`FaultInjectingBackend` and every
    worker view it hands out, so the whole service sees one fault
    schedule and one set of counters.
    """

    def __init__(self, seed: int, rate: float) -> None:
        self.seed = seed
        self.rate = rate
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.draws = 0
        self.injected_errors = 0
        self.truncations = 0
        self.latency_spikes = 0

    def rng_copy(self) -> random.Random:
        """An independently seeded RNG for retry jitter (not the fault RNG:
        backoff draws must not shift the fault schedule)."""
        return random.Random(self.seed ^ 0x5EED)

    def decide_call(self, what: str) -> None:
        """One injection point before a request: maybe raise, else return."""
        with self._lock:
            self.draws += 1
            if self.rate <= 0.0 or self._rng.random() >= self.rate:
                return
            self.injected_errors += 1
        raise InjectedFaultError(f"injected fault before {what}")

    def decide_after(self, what: str) -> None:
        """One injection point *after* a write applied: the lost-ack
        fault.  The server committed; the client sees a transient error
        and will retry — exactly the case the write path's idempotency
        discipline (watermarks, exact-tuple matching, apply tokens)
        exists to survive."""
        with self._lock:
            self.draws += 1
            if self.rate <= 0.0 or self._rng.random() >= self.rate:
                return
            self.injected_errors += 1
        raise InjectedFaultError(
            f"injected fault after {what}: apply committed, ack lost"
        )

    def decide_stream_point(self) -> tuple[str, float] | None:
        """One injection point per streamed block.

        Returns ``None`` (no fault), ``("latency", seconds)`` or a
        ``("error" | "truncate", 0.0)`` verdict the caller turns into the
        matching exception.  The sleep itself happens outside the lock.
        """
        with self._lock:
            self.draws += 1
            if self.rate <= 0.0 or self._rng.random() >= self.rate:
                return None
            kind_draw = self._rng.random()
            if kind_draw < 0.4:
                self.injected_errors += 1
                return ("error", 0.0)
            if kind_draw < 0.7:
                self.truncations += 1
                return ("truncate", 0.0)
            self.latency_spikes += 1
            return ("latency", self._rng.uniform(0.0005, _MAX_LATENCY_SPIKE))

    def stats(self) -> dict[str, int | float]:
        with self._lock:
            return {
                "seed": self.seed,
                "rate": self.rate,
                "draws": self.draws,
                "injected_errors": self.injected_errors,
                "truncations": self.truncations,
                "latency_spikes": self.latency_spikes,
            }


class FaultInjectingBackend(DelegatingView):
    """A chaos proxy: delegates to a real backend, injecting faults.

    Injection points (each a Bernoulli draw at the configured rate):

    * **before** ``execute`` / ``execute_stream`` and every write
      (``insert_rows`` / ``delete_rows`` / ``replace_rows`` /
      ``hom_apply``) — a transient :class:`InjectedFaultError`, as if
      the request never reached the server (no server work is wasted,
      matching a connection failure);
    * **after** every write — the lost-ack fault: the server applied
      the change, the client sees a transient error and retries.  Only
      the write path's idempotency discipline (insert watermarks,
      exact-tuple delete/replace matching, hom apply tokens) keeps a
      retried request from double-applying;
    * **per block** of a streamed result —
      :class:`InjectedFaultError` (connection dropped),
      :class:`TruncatedStreamError` (result cut off mid-flight), or a
      latency spike (the block arrives late but intact).

    Loads through ``create_table`` / ``add_ciphertext_file`` and all
    introspection pass through untouched — chaos targets the query and
    write paths the resilience layer defends.
    """

    def __init__(
        self,
        parent: ServerBackend,
        seed: int = 0,
        rate: float = 0.0,
        core: _ChaosCore | None = None,
    ) -> None:
        super().__init__(parent)
        self._core = core if core is not None else _ChaosCore(seed, rate)

    @property
    def kind(self) -> str:  # type: ignore[override]
        return f"chaos({self._parent.kind})"

    @property
    def chaos_rng(self) -> random.Random:
        """Seeded jitter RNG for the retry layer (deterministic runs)."""
        return self._core.rng_copy()

    def stats(self) -> dict[str, int | float]:
        """Injection counters so tests can assert chaos actually fired."""
        return self._core.stats()

    def worker_view(self) -> ServerBackend:
        """Wrap the parent's worker view; all views share one fault RNG."""
        return FaultInjectingBackend(self._parent.worker_view(), core=self._core)

    def close(self) -> None:
        """Release the wrapped view/backend's resources, when it has any.

        Without this delegation, closing a service whose worker views are
        chaos-wrapped would silently leak the underlying views' SQLite
        connections (and a remote backend's sockets): the service looks
        for ``close`` on the view it was handed, which is the wrapper.
        """
        close = getattr(self._parent, "close", None)
        if close is not None:
            close()

    # -- faulted paths -------------------------------------------------------

    def insert_rows(self, table_name: str, rows: Iterable[tuple]) -> None:
        # Materialize first: a retried call must re-send identical rows
        # even when the caller handed us a one-shot iterable.
        rows = list(rows)
        self._core.decide_call(f"insert_rows({table_name!r})")
        self._parent.insert_rows(table_name, rows)
        self._core.decide_after(f"insert_rows({table_name!r})")

    def delete_rows(self, table_name: str, rows: Iterable[tuple]) -> int:
        rows = list(rows)
        self._core.decide_call(f"delete_rows({table_name!r})")
        count = self._parent.delete_rows(table_name, rows)
        self._core.decide_after(f"delete_rows({table_name!r})")
        return count

    def replace_rows(
        self, table_name: str, pairs: Iterable[tuple[tuple, tuple]]
    ) -> int:
        pairs = list(pairs)
        self._core.decide_call(f"replace_rows({table_name!r})")
        count = self._parent.replace_rows(table_name, pairs)
        self._core.decide_after(f"replace_rows({table_name!r})")
        return count

    def hom_apply(
        self,
        file_name: str,
        updates: Iterable[tuple[int, int]] = (),
        appended: Iterable[int] = (),
        num_rows: int | None = None,
        token: str | None = None,
    ) -> None:
        updates = list(updates)
        appended = list(appended)
        self._core.decide_call(f"hom_apply({file_name!r})")
        self._parent.hom_apply(
            file_name,
            updates=updates,
            appended=appended,
            num_rows=num_rows,
            token=token,
        )
        self._core.decide_after(f"hom_apply({file_name!r})")

    def execute(
        self, query: ast.Select, params: dict[str, object] | None = None
    ) -> ResultSet:
        self._core.decide_call("execute")
        result = self._parent.execute(query, params=params)
        self.last_stats = self._parent.last_stats
        return result

    def execute_stream(
        self,
        query: ast.Select,
        params: dict[str, object] | None = None,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        partitions: int = 1,
    ) -> BlockStream:
        self._core.decide_call("execute_stream")
        if supports_partitions(self._parent):
            parent_stream = self._parent.execute_stream(
                query,
                params=params,
                block_rows=block_rows,
                partitions=partitions,
            )
        else:
            if partitions > 1:
                raise ConfigError(
                    f"backend {self._parent.kind!r} does not accept "
                    f"partitions; cannot run partitions={partitions}"
                )
            parent_stream = self._parent.execute_stream(
                query, params=params, block_rows=block_rows
            )
        blocks = self._faulted_blocks(parent_stream)
        return BlockStream(parent_stream.columns, blocks, parent_stream.stats)

    def _faulted_blocks(self, parent_stream: BlockStream) -> Iterator[RowBlock]:
        try:
            for block in parent_stream:
                verdict = self._core.decide_stream_point()
                if verdict is not None:
                    kind, sleep_for = verdict
                    if kind == "latency":
                        time.sleep(sleep_for)
                    elif kind == "error":
                        raise InjectedFaultError(
                            "injected fault while streaming result blocks"
                        )
                    else:
                        raise TruncatedStreamError(
                            "injected truncation: stream cut off mid-result"
                        )
                yield block
        finally:
            parent_stream.close()


def maybe_wrap_chaos(backend: ServerBackend) -> ServerBackend:
    """Wrap ``backend`` per ``MONOMI_CHAOS`` (idempotent; no-op when unset)."""
    spec = chaos_from_env()
    if spec is None or isinstance(backend, FaultInjectingBackend):
        return backend
    seed, rate = spec
    return FaultInjectingBackend(backend, seed=seed, rate=rate)
