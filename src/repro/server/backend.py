"""The untrusted-server seam: anything that can store ciphertexts and run SQL.

MONOMI's central architectural claim (§1, §7) is that the untrusted server
is an *unmodified relational engine* extended only with a handful of UDFs
(packed homomorphic aggregation, searchable-encryption matching).  A
:class:`ServerBackend` is that seam made explicit: the client library —
loader, plan executor, cost model — talks to the server exclusively through
this interface, so the same split plans run against

* :class:`~repro.server.inmemory.InMemoryBackend` — the in-process
  relational engine (`engine.Executor` over list-of-tuples), the default
  and the reference for equivalence testing;
* :class:`~repro.server.sqlite.SQLiteBackend` — a real SQLite database
  with `hom_agg` / `grp` / `searchswp` registered as Python UDFs, proving
  the "unmodified DBMS" claim on an actual engine.

Every backend reports the two quantities the cost ledger needs: bytes
scanned per query (fed to the disk model) and the per-table heap sizes
(fed to the planner's scan-cost estimates).  Byte accounting is *logical*
— `storage.rowcodec.row_bytes` over the values a row carries — so the two
backends charge identical scan bytes for identical data, keeping ledger
output backend-independent.
"""

from __future__ import annotations

import inspect
import threading
from abc import ABC, abstractmethod
from typing import Iterable

from repro.common.errors import ConfigError
from repro.engine.executor import ExecStats, ResultSet, is_streamable
from repro.engine.rowblock import DEFAULT_BLOCK_ROWS, BlockStream, blocks_from_rows
from repro.engine.schema import TableSchema
from repro.sql import ast
from repro.storage.ciphertext_store import CiphertextFile, CiphertextStore


class ServerBackend(ABC):
    """Abstract untrusted server: encrypted tables + ciphertext files + SQL."""

    #: Short backend identifier ("memory", "sqlite", ...) used by reports.
    kind: str = "abstract"

    # -- state the client library reads ------------------------------------

    ciphertext_store: CiphertextStore
    last_stats: ExecStats

    # -- loading ------------------------------------------------------------

    @abstractmethod
    def create_table(self, schema: TableSchema) -> None:
        """Create an (empty) encrypted table."""

    @abstractmethod
    def insert_rows(self, table_name: str, rows: Iterable[tuple]) -> None:
        """Bulk-insert encrypted rows (the loader's one write path)."""

    #: Whether a partially applied ``insert_rows`` batch is always a
    #: *prefix* of the requested rows.  True for single-store backends
    #: (their batch insert is transactional, so the committed count is 0
    #: or everything); the sharded backend commits per routed bucket and
    #: sets this False, telling the idempotent-retry helper that a
    #: row-count delta cannot be resumed by slicing the batch.
    supports_prefix_resume: bool = True

    def add_ciphertext_file(self, file: CiphertextFile) -> None:
        """Install a packed-Paillier file for the ``hom_agg`` UDF."""
        self.ciphertext_store.add(file)

    # -- encrypted DML (PR 10) ----------------------------------------------
    #
    # The write surface the client-side DML executor drives.  Rows are
    # addressed by their *stored* encrypted tuples (the exact values a
    # prior fetch returned — RND ciphertexts are not reproducible, so
    # re-encryption can never be used as a match key).  Both operations
    # consume at most one stored match per requested tuple and are
    # state-idempotent: re-applying the same request after a partial
    # apply converges on the same final state (already-deleted tuples
    # match nothing; already-replaced tuples match nothing) — the
    # property the fault-model's retry discipline relies on.

    def delete_rows(self, table_name: str, rows: Iterable[tuple]) -> int:
        """Delete one stored match per encrypted tuple; return the count
        actually removed."""
        raise ConfigError(
            f"backend {self.kind!r} does not support encrypted DML "
            "(delete_rows is not implemented)"
        )

    def replace_rows(
        self, table_name: str, pairs: Iterable[tuple[tuple, tuple]]
    ) -> int:
        """For each ``(old, new)`` pair replace one stored match of
        ``old`` with ``new`` in place; return the count replaced."""
        raise ConfigError(
            f"backend {self.kind!r} does not support encrypted DML "
            "(replace_rows is not implemented)"
        )

    # -- incremental hom maintenance (PR 10) --------------------------------
    #
    # Packed-Paillier files are maintained *in place* by ciphertext
    # multiplication: the client ships E(delta << slot_offset) factors
    # and the server multiplies them into the stored ciphertexts (it
    # only ever needs the public key).  ``token`` deduplicates retries:
    # hom multiplication is not idempotent, so the server remembers the
    # last applied token per file and silently skips a re-send — the
    # lost-ack-after-commit fault the chaos harness injects.

    def hom_apply(
        self,
        file_name: str,
        updates: Iterable[tuple[int, int]] = (),
        appended: Iterable[int] = (),
        num_rows: int | None = None,
        token: str | None = None,
    ) -> None:
        """Multiply ``updates`` ``(ciphertext_index, factor)`` pairs into
        the file, append whole new ciphertexts, and advance the logical
        row count.  Applied atomically with respect to readers of the
        store's file object (list mutation under the GIL)."""
        applied = getattr(self, "_hom_applied_tokens", None)
        if applied is None:
            applied = {}
            self._hom_applied_tokens = applied
        if token is not None and applied.get(file_name) == token:
            return
        file = self.ciphertext_store.get(file_name)
        public = file.public_key
        for index, factor in updates:
            if not 0 <= index < len(file.ciphertexts):
                raise ConfigError(
                    f"hom_apply index {index} outside file {file_name!r}"
                )
            file.ciphertexts[index] = public.add(
                file.ciphertexts[index], factor
            )
        appended = list(appended)
        if appended:
            file.ciphertexts.extend(appended)
        if num_rows is not None:
            file.num_rows = num_rows
        if token is not None:
            applied[file_name] = token

    def hom_file_info(self, file_name: str) -> dict:
        """Public packing metadata of one ciphertext file (widths and
        counts, never contents): what the DML executor needs to compute
        slot offsets and append positions client-side."""
        file = self.ciphertext_store.get(file_name)
        layout = file.layout
        return {
            "num_rows": file.num_rows,
            "num_ciphertexts": len(file.ciphertexts),
            "column_bits": tuple(layout.column_bits),
            "pad_bits": layout.pad_bits,
            "plaintext_bits": layout.plaintext_bits,
            "column_names": tuple(file.column_names),
        }

    def hom_read(self, file_name: str, indices: Iterable[int]) -> list[int]:
        """Read individual stored ciphertexts (charged to the scan
        ledger like any ``hom_agg`` read); the maintained-aggregate
        reader decrypts them client-side."""
        file = self.ciphertext_store.get(file_name)
        return [file.read(i) for i in indices]

    # -- introspection -------------------------------------------------------

    @abstractmethod
    def table_names(self) -> list[str]:
        """Names of the encrypted tables, sorted."""

    @abstractmethod
    def table_bytes(self, table_name: str) -> int:
        """Logical heap size of one table (rowcodec accounting)."""

    @property
    def total_bytes(self) -> int:
        """Total server-side footprint: table heaps + ciphertext files."""
        tables = sum(self.table_bytes(n) for n in self.table_names())
        return tables + self.ciphertext_store.total_bytes

    def has_table(self, table_name: str) -> bool:
        """True when the table already exists on this server."""
        return table_name in self.table_names()

    # -- resumable load support ----------------------------------------------
    #
    # The crash-safe loader (journal-driven resume) needs two extra
    # capabilities: counting the rows a half-finished load already
    # committed, and re-registering a table's schema against data that
    # survived a crash.  They are optional — backends that do not
    # implement them simply cannot resume (the loader falls back to a
    # fresh load), so third-party backends written against the older
    # contract keep working.

    def row_count(self, table_name: str) -> int:
        """Rows currently stored in one table."""
        raise ConfigError(
            f"backend {self.kind!r} does not support resumable loads "
            "(row_count is not implemented)"
        )

    def adopt_table(self, schema: TableSchema) -> None:
        """Re-register ``schema`` for a table whose data already exists.

        Used when resuming a crashed bulk load against durable storage:
        a fresh backend object must recover the schema registration and
        logical byte accounting for rows a previous process committed.
        """
        raise ConfigError(
            f"backend {self.kind!r} does not support resumable loads "
            "(adopt_table is not implemented)"
        )

    # -- query execution ------------------------------------------------------

    @abstractmethod
    def execute(
        self, query: ast.Select, params: dict[str, object] | None = None
    ) -> ResultSet:
        """Run one server-side query; update :attr:`last_stats`.

        ``params`` carries DET-encrypted IN sets for the multi-round-trip
        plans (consumed by ``in_set``).  The returned :class:`ResultSet`
        holds *logical* values — big OPE/DET integers as Python ints,
        ``grp()`` results as tuples, ``hom_agg`` results as
        :class:`~repro.engine.aggregates.HomAggResult` — regardless of how
        the backend represents them at rest.
        """

    def execute_stream(
        self,
        query: ast.Select,
        params: dict[str, object] | None = None,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        partitions: int = 1,
    ) -> BlockStream:
        """Run one server query, yielding column-major RowBlocks.

        Same logical values and accounting as :meth:`execute`: the
        stream's ``stats`` carries the scan bytes (final once the stream
        is exhausted or closed), and the sum of block payloads plus the
        result header equals the materialized ``ResultSet.byte_size()``.
        This base implementation materializes and re-blocks — correct for
        any backend; engines with incremental cursors override it to keep
        peak memory bounded by the block size.

        ``partitions`` requests a partition-parallel scan: the native
        backends split a streamable scan into contiguous partitions, run
        each on a worker, and re-merge in partition order.  This base
        implementation cannot parallelize anything: it accepts the
        request for a streamable query (running it serially, documented
        here rather than hidden) but **raises**
        :class:`~repro.common.errors.ConfigError` when the root operator
        blocks (grouping/ordering/joins) — a backend without native
        streaming cannot honor that combination at all, and a silent
        serial fallback would misreport the execution mode the caller
        asked for.

        Contract: ciphertext-file reads (``hom_agg``) accrue on a
        backend-global counter windowed per stream, so streams of
        hom-reading queries must be consumed one at a time for exact
        scan-byte accounting; interleaving plain scans is fine.
        """
        if partitions > 1 and not is_streamable(query):
            raise ConfigError(
                f"backend {self.kind!r} has no native streaming: "
                f"partition-parallel execution was requested "
                f"(partitions={partitions}) but the query's root operator "
                "blocks (grouping/ordering/joins/aggregation); run with "
                "partitions=1 or use a streaming-capable backend"
            )
        result = self.execute(query, params=params)
        blocks = blocks_from_rows(result.rows, len(result.columns), block_rows)
        return BlockStream(result.columns, blocks, self.last_stats)

    # -- concurrent service access -------------------------------------------

    def worker_view(self) -> "ServerBackend":
        """A view of this backend one service worker thread may own.

        The service layer (:mod:`repro.service`) runs N sessions'
        queries on a thread pool over one shared backend; per-query state
        (``last_stats``, cursors) must not be shared between workers.
        This base implementation returns a :class:`LockScopedView`: every
        query runs under one backend-wide lock, so execution over the
        shared engine is serialized while each view keeps its own stats —
        correct for *any* backend, at the price of no server-side
        overlap.  Backends with per-connection isolation (SQLite over a
        shared-cache database) override this to return views that execute
        genuinely concurrently.

        Views share the parent's storage: tables loaded through any view
        or through the parent are visible to all.
        """
        with _VIEW_LOCK_GUARD:
            lock = getattr(self, "_worker_view_lock", None)
            if lock is None:
                lock = threading.Lock()
                self._worker_view_lock = lock
        return LockScopedView(self, lock)


#: Guards lazy creation of a backend's shared worker-view lock (the lock
#: attribute itself must not be racily created twice).
_VIEW_LOCK_GUARD = threading.Lock()


class DelegatingView(ServerBackend):
    """Shared worker-view plumbing: everything but execution delegates.

    Loading and introspection pass through to the parent backend (views
    share its storage; the loader runs before the service serves), and
    each view owns its ``last_stats``.  Subclasses define how queries
    execute — that is the only thing worker views differ in.
    """

    def __init__(self, parent: ServerBackend) -> None:
        self._parent = parent
        self.last_stats = ExecStats()

    @property
    def kind(self) -> str:  # type: ignore[override]
        return self._parent.kind

    @property
    def ciphertext_store(self) -> CiphertextStore:  # type: ignore[override]
        return self._parent.ciphertext_store

    def worker_view(self) -> ServerBackend:
        return self._parent.worker_view()

    def create_table(self, schema: TableSchema) -> None:
        self._parent.create_table(schema)

    def insert_rows(self, table_name: str, rows: Iterable[tuple]) -> None:
        self._parent.insert_rows(table_name, rows)

    def add_ciphertext_file(self, file: CiphertextFile) -> None:
        self._parent.add_ciphertext_file(file)

    @property
    def supports_prefix_resume(self) -> bool:  # type: ignore[override]
        return self._parent.supports_prefix_resume

    def delete_rows(self, table_name: str, rows: Iterable[tuple]) -> int:
        return self._parent.delete_rows(table_name, rows)

    def replace_rows(
        self, table_name: str, pairs: Iterable[tuple[tuple, tuple]]
    ) -> int:
        return self._parent.replace_rows(table_name, pairs)

    def hom_apply(
        self,
        file_name: str,
        updates: Iterable[tuple[int, int]] = (),
        appended: Iterable[int] = (),
        num_rows: int | None = None,
        token: str | None = None,
    ) -> None:
        self._parent.hom_apply(
            file_name,
            updates=updates,
            appended=appended,
            num_rows=num_rows,
            token=token,
        )

    def hom_file_info(self, file_name: str) -> dict:
        return self._parent.hom_file_info(file_name)

    def hom_read(self, file_name: str, indices: Iterable[int]) -> list[int]:
        return self._parent.hom_read(file_name, indices)

    def table_names(self) -> list[str]:
        return self._parent.table_names()

    def table_bytes(self, table_name: str) -> int:
        return self._parent.table_bytes(table_name)

    def has_table(self, table_name: str) -> bool:
        return self._parent.has_table(table_name)

    def row_count(self, table_name: str) -> int:
        return self._parent.row_count(table_name)

    def adopt_table(self, schema: TableSchema) -> None:
        self._parent.adopt_table(schema)


class LockScopedView(DelegatingView):
    """Serializing worker view: one lock scopes every query on the parent.

    Each view carries its own ``last_stats`` (the parent's per-query
    mutable state is captured under the lock before another worker can
    overwrite it), so concurrent sessions read back exactly the stats of
    their own queries.  Streamed queries materialize under the lock and
    re-block — holding the backend lock for as long as a consumer cares
    to keep a cursor open would let one slow session starve every other.
    """

    def __init__(self, parent: ServerBackend, lock: threading.Lock) -> None:
        super().__init__(parent)
        self._lock = lock

    # Writes lock too: the in-memory engine mutates shared row lists, so
    # a load overlapping an in-flight view query must serialize.

    def create_table(self, schema: TableSchema) -> None:
        with self._lock:
            self._parent.create_table(schema)

    def insert_rows(self, table_name: str, rows: Iterable[tuple]) -> None:
        with self._lock:
            self._parent.insert_rows(table_name, rows)

    def add_ciphertext_file(self, file: CiphertextFile) -> None:
        with self._lock:
            self._parent.add_ciphertext_file(file)

    def delete_rows(self, table_name: str, rows: Iterable[tuple]) -> int:
        with self._lock:
            return self._parent.delete_rows(table_name, rows)

    def replace_rows(
        self, table_name: str, pairs: Iterable[tuple[tuple, tuple]]
    ) -> int:
        with self._lock:
            return self._parent.replace_rows(table_name, pairs)

    def hom_apply(
        self,
        file_name: str,
        updates: Iterable[tuple[int, int]] = (),
        appended: Iterable[int] = (),
        num_rows: int | None = None,
        token: str | None = None,
    ) -> None:
        with self._lock:
            self._parent.hom_apply(
                file_name,
                updates=updates,
                appended=appended,
                num_rows=num_rows,
                token=token,
            )

    def execute(
        self, query: ast.Select, params: dict[str, object] | None = None
    ) -> ResultSet:
        with self._lock:
            result = self._parent.execute(query, params=params)
            self.last_stats = self._parent.last_stats
        return result

    def execute_stream(
        self,
        query: ast.Select,
        params: dict[str, object] | None = None,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        partitions: int = 1,
    ) -> BlockStream:
        if partitions > 1 and not is_streamable(query):
            raise ConfigError(
                f"worker views of backend {self._parent.kind!r} serialize "
                f"execution and cannot partition a blocking query "
                f"(partitions={partitions}); run with partitions=1 or "
                "execute on the parent backend directly"
            )
        result = self.execute(query, params=params)
        blocks = blocks_from_rows(result.rows, len(result.columns), block_rows)
        return BlockStream(result.columns, blocks, self.last_stats)


def supports_partitions(backend: ServerBackend) -> bool:
    """True when the backend's ``execute_stream`` accepts ``partitions``.

    Third-party overrides written against the pre-partition contract
    (``query, params, block_rows``) must keep working: callers check here
    and simply run such backends unpartitioned instead of handing them an
    unexpected keyword.
    """
    signature = inspect.signature(type(backend).execute_stream)
    if "partitions" in signature.parameters:
        return True
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD
        for p in signature.parameters.values()
    )


def supports_deadline(backend: ServerBackend) -> bool:
    """True when both ``execute`` and ``execute_stream`` accept a
    ``deadline`` kwarg.

    Deadline-capable backends (the network client) enforce the expiry
    inside the request itself — socket-timeout capping, server-side
    block-boundary checks — instead of only between blocks on the caller
    side.  The executor checks here and passes the deadline through when
    it can; backends without the parameter keep the caller-side checks
    only, same as before.
    """
    for method_name in ("execute", "execute_stream"):
        signature = inspect.signature(getattr(type(backend), method_name))
        if "deadline" in signature.parameters:
            continue
        if not any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in signature.parameters.values()
        ):
            return False
    return True


def as_backend(server: object) -> ServerBackend:
    """Adapt a raw :class:`~repro.engine.catalog.Database` (the pre-backend
    calling convention) or pass a backend through unchanged."""
    from repro.engine.catalog import Database
    from repro.server.inmemory import InMemoryBackend

    if isinstance(server, ServerBackend):
        return server
    if isinstance(server, Database):
        return InMemoryBackend(server)
    raise TypeError(f"cannot use {type(server).__name__} as a server backend")
