"""The default backend: the in-process relational engine over Python rows.

Wraps one :class:`~repro.engine.catalog.Database` plus an
:class:`~repro.engine.executor.Executor` behind the
:class:`~repro.server.backend.ServerBackend` interface.  Behavior is
identical to the pre-backend code path — same executor, same scan
accounting — which makes this backend the reference side of the
cross-backend equivalence harness.
"""

from __future__ import annotations

from typing import Iterable

from repro.engine.catalog import Database
from repro.engine.executor import ExecStats, Executor, ResultSet
from repro.engine.rowblock import DEFAULT_BLOCK_ROWS, BlockStream
from repro.engine.schema import TableSchema
from repro.server.backend import ServerBackend
from repro.sql import ast


class InMemoryBackend(ServerBackend):
    """`engine.Executor` over list-of-tuples tables, as a backend."""

    kind = "memory"

    def __init__(self, database: Database | None = None, name: str = "server") -> None:
        self.database = database if database is not None else Database(name)
        self.executor = Executor(self.database)
        self.last_stats = ExecStats()

    # -- loading ------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        self.database.create_table(schema)

    def insert_rows(self, table_name: str, rows: Iterable[tuple]) -> None:
        self.database.table(table_name).insert_many(rows)

    # -- introspection -------------------------------------------------------

    @property
    def ciphertext_store(self):
        return self.database.ciphertext_store

    def table_names(self) -> list[str]:
        return sorted(self.database.tables)

    def table_bytes(self, table_name: str) -> int:
        return self.database.table(table_name).total_bytes

    # -- query execution ------------------------------------------------------

    def execute(
        self, query: ast.Select, params: dict[str, object] | None = None
    ) -> ResultSet:
        result = self.executor.execute(query, params=params)
        self.last_stats = self.executor.last_stats
        return result

    def execute_stream(
        self,
        query: ast.Select,
        params: dict[str, object] | None = None,
        block_rows: int = DEFAULT_BLOCK_ROWS,
    ) -> BlockStream:
        stream = self.executor.execute_stream(
            query, params=params, block_rows=block_rows
        )
        self.last_stats = stream.stats
        return stream
