"""The default backend: the in-process relational engine over Python rows.

Wraps one :class:`~repro.engine.catalog.Database` plus an
:class:`~repro.engine.executor.Executor` behind the
:class:`~repro.server.backend.ServerBackend` interface.  Behavior is
identical to the pre-backend code path — same executor, same scan
accounting — which makes this backend the reference side of the
cross-backend equivalence harness.

Partition-parallel scans
------------------------
``execute_stream(..., partitions=N)`` splits a streamable scan into N
contiguous range partitions of the table's rows, runs each slice on a
process-pool worker (:func:`~repro.server.partition.scan_partition`), and
re-merges the slice results in partition order — so output order, block
boundaries, and scan-byte accounting are all identical to the serial
stream.  Blocking root operators (grouping/ordering/joins) and scans with
a pushed LIMIT fall back to the serial streaming path: this backend *has*
native streaming, so the fallback changes parallelism, never semantics.
Partition mode trades the serial stream's O(block) memory bound for
multicore throughput (slice results stage in the parent as they merge).
"""

from __future__ import annotations

from typing import Iterable

from repro.common.parallel import WorkerPool, shard_spans
from repro.engine.catalog import Database
from repro.engine.executor import ExecStats, Executor, ResultSet, is_streamable
from repro.engine.rowblock import DEFAULT_BLOCK_ROWS, BlockStream, rechunk_rows
from repro.engine.schema import TableSchema
from repro.server.backend import ServerBackend
from repro.server.partition import scan_partition
from repro.sql import ast


class InMemoryBackend(ServerBackend):
    """`engine.Executor` over list-of-tuples tables, as a backend."""

    kind = "memory"

    def __init__(self, database: Database | None = None, name: str = "server") -> None:
        self.database = database if database is not None else Database(name)
        self.executor = Executor(self.database)
        self.last_stats = ExecStats()
        self._partition_pool: WorkerPool | None = None

    # -- loading ------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        self.database.create_table(schema)

    def insert_rows(self, table_name: str, rows: Iterable[tuple]) -> None:
        self.database.table(table_name).insert_many(rows)

    def delete_rows(self, table_name: str, rows: Iterable[tuple]) -> int:
        return self.database.table(table_name).delete_exact(rows)

    def replace_rows(
        self, table_name: str, pairs: Iterable[tuple[tuple, tuple]]
    ) -> int:
        return self.database.table(table_name).replace_exact(pairs)

    # -- introspection -------------------------------------------------------

    @property
    def ciphertext_store(self):
        return self.database.ciphertext_store

    def table_names(self) -> list[str]:
        return sorted(self.database.tables)

    def table_bytes(self, table_name: str) -> int:
        return self.database.table(table_name).total_bytes

    # -- resumable load support ----------------------------------------------
    #
    # In-memory tables die with the process, so cross-process resume never
    # finds data here; these exist for *same-process* resume (a load that
    # failed transiently partway and is re-driven over the same backend
    # object), where the catalog still holds everything.

    def row_count(self, table_name: str) -> int:
        return len(self.database.table(table_name).rows)

    def adopt_table(self, schema: TableSchema) -> None:
        # The catalog registration *is* the table: nothing to rebuild.
        self.database.table(schema.name)

    # -- query execution ------------------------------------------------------

    def execute(
        self, query: ast.Select, params: dict[str, object] | None = None
    ) -> ResultSet:
        result = self.executor.execute(query, params=params)
        self.last_stats = self.executor.last_stats
        return result

    def execute_stream(
        self,
        query: ast.Select,
        params: dict[str, object] | None = None,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        partitions: int = 1,
    ) -> BlockStream:
        if partitions > 1 and self._can_partition(query):
            return self._execute_stream_partitioned(
                query, params, block_rows, partitions
            )
        stream = self.executor.execute_stream(
            query, params=params, block_rows=block_rows
        )
        self.last_stats = stream.stats
        return stream

    def _can_partition(self, query: ast.Select) -> bool:
        """Streamable scan over a real table, without a pushed LIMIT and
        without subqueries.

        LIMIT stays serial: a global row budget cannot be split across
        partitions without either over-scanning or a post-merge truncation
        that changes which partition's work is wasted — the serial stream
        already stops early, which is the whole point of a pushed LIMIT.
        Subqueries stay serial too: a partition worker's database holds
        only its slice of the scan table, so an inner query evaluated
        there would see a sliver of its input (or none of its table) —
        the worker payload carries exactly one table's rows by design.
        """
        if not is_streamable(query) or query.limit is not None:
            return False
        exprs = [item.expr for item in query.items]
        if query.where is not None:
            exprs.append(query.where)
        if any(ast.find_subqueries(e) for e in exprs):
            return False
        return self.database.has_table(query.from_items[0].name)

    def _pool_for(self, partitions: int) -> WorkerPool:
        pool = self._partition_pool
        if pool is None or pool.workers != partitions:
            if pool is not None:
                pool.close()
            pool = WorkerPool(partitions)
            self._partition_pool = pool
        return pool

    def _execute_stream_partitioned(
        self,
        query: ast.Select,
        params: dict[str, object] | None,
        block_rows: int,
        partitions: int,
    ) -> BlockStream:
        """Contiguous range partitions, one worker each, ordered re-merge."""
        stats = ExecStats()
        self.last_stats = stats
        # Static scan accounting: identical to the serial engine stream —
        # one full heap read per table occurrence, charged up front.
        for name in ast.table_occurrences(query):
            if self.database.has_table(name):
                stats.bytes_scanned += self.database.table(name).total_bytes
        ref = query.from_items[0]
        table = self.database.table(ref.name)
        columns = [item.output_name(i) for i, item in enumerate(query.items)]
        # Each payload ships its row slice through pickle on every call —
        # a per-query O(table) cost that buys per-query parallel scanning.
        # Amortizing slices across queries would need per-worker residency
        # the stdlib pool cannot promise (tasks are not pinned to
        # workers); revisit with shared memory if scan volume demands it.
        payloads = [
            (
                ref.name,
                list(table.schema.column_names),
                table.rows[lo:hi],
                query,
                params or {},
            )
            for lo, hi in shard_spans(len(table.rows), partitions)
        ]
        pool = self._pool_for(partitions)

        def blocks():
            # Deferred into the generator so an unconsumed stream never
            # submits work to the pool.
            yield from rechunk_rows(
                pool.imap_ordered(scan_partition, payloads),
                len(columns),
                block_rows,
                stats,
            )

        return BlockStream(columns, blocks(), stats)

    # -- concurrent service access ---------------------------------------------

    def worker_view(self) -> ServerBackend:
        """Lock-scoped executor access (the base :class:`LockScopedView`).

        The in-process engine is single-threaded state — ``Executor``
        mutates ``last_stats`` and walks shared list-of-tuples tables —
        so service workers serialize on one backend-wide lock, each view
        keeping its own per-query stats.  This is the documented
        in-memory concurrency mode: correct under any interleaving, no
        intra-server overlap (use the SQLite backend when concurrent
        sessions should overlap inside the server itself).
        """
        return super().worker_view()

    def close(self) -> None:
        """Release the partition worker pool (if one was ever created)."""
        if self._partition_pool is not None:
            self._partition_pool.close()
