"""Real-SQLite untrusted server: encrypted tables + hom-aggregate UDFs.

This backend demonstrates the paper's claim (§1, §7) that MONOMI's server
half is an *unmodified* relational engine plus a few UDFs.  Encrypted
tables are materialized into an actual SQLite database; split-plan server
queries print in SQLite dialect (``sql.printer`` with ``dialect="sqlite"``)
and run inside the engine; the paper's server-side UDFs are registered as
Python functions on the connection:

* ``hom_agg(file, row_id)`` — grouped packed-Paillier addition, backed by
  the same :class:`~repro.storage.ciphertext_store.CiphertextStore` the
  in-memory engine uses (ciphertexts live outside table rows, §7);
* ``grp(x)``               — the GROUP() operator shipping whole groups;
* ``searchswp(tags, t)``   — SWP tag-set membership for SEARCH predicates;
* ``like_strict(s, p)``    — case-sensitive LIKE (SQLite's is not).

Value representation
--------------------
Values SQLite cannot hold natively — ciphertext integers wider than the
64-bit INTEGER, SEARCH tag sets — use the order-preserving **marker-blob
codec** in :mod:`repro.storage.sqlite_codec` (shared with the SQL
printer's literal rendering).  ``grp`` lists and ``hom_agg`` results
serialize to tagged blobs the same way, defined here next to the UDFs
that produce them; :func:`decode_sqlite_value` restores the logical
Python values before the result set leaves the backend, so the client's
decrypt path is backend-agnostic.

Scan accounting is logical and identical to the in-memory backend: each
table reference charges the table's rowcodec heap size, and ``hom_agg``
ciphertext reads charge through the shared store, so the cost ledger's
byte counts are backend-independent (asserted by the equivalence tests).
"""

from __future__ import annotations

import itertools
import queue as queue_mod
import sqlite3
import struct
import threading
import urllib.parse
from dataclasses import replace
from typing import Iterable

from repro.common.errors import BackendBusyError, EngineError, ExecutionError
from repro.common.parallel import queue_put_bounded, shard_spans
from repro.crypto.search import TAG_BYTES
from repro.engine.aggregates import GrpAgg, HomAgg, HomAggResult
from repro.engine.eval import like_matches
from repro.engine.executor import ExecStats, ResultSet, is_streamable
from repro.engine.rowblock import (
    DEFAULT_BLOCK_ROWS,
    BlockStream,
    RowBlock,
    blocks_from_rows,
    rechunk_rows,
)
from repro.engine.schema import TableSchema
from repro.server.backend import DelegatingView, ServerBackend
from repro.sql import ast, to_sql
from repro.storage.ciphertext_store import CiphertextStore
from repro.storage.rowcodec import decode_value, encode_value, row_bytes
from repro.storage.sqlite_codec import (
    BIG_MARK,
    GRP_MARK,
    HOM_MARK,
    MARK_LEN,
    TAG_MARK,
    decode_big,
    decode_tags,
    encode_sqlite_value,
    quote_ident,
)

__all__ = ["SQLiteBackend", "decode_sqlite_value", "encode_sqlite_value"]


# ---------------------------------------------------------------------------
# Value codec (aggregate-blob half; scalar half lives in storage.sqlite_codec)
# ---------------------------------------------------------------------------


def decode_sqlite_value(value: object, store: CiphertextStore) -> object:
    """Restore the logical value behind one SQLite storage value."""
    if not isinstance(value, bytes) or len(value) < MARK_LEN:
        return value
    mark = value[:MARK_LEN]
    if mark == BIG_MARK:
        return decode_big(value)
    if mark == TAG_MARK:
        return decode_tags(value)
    if mark == GRP_MARK:
        return _decode_grp(value)
    if mark == HOM_MARK:
        return _decode_hom(value, store)
    return value


def _decode_grp(blob: bytes) -> tuple:
    (count,) = struct.unpack_from("<I", blob, MARK_LEN)
    offset = MARK_LEN + 4
    values = []
    for _ in range(count):
        value, offset = decode_value(blob, offset)
        values.append(value)
    return tuple(values)


def _encode_hom(result: HomAggResult) -> bytes:
    parts = [HOM_MARK, encode_value(result.file_name), encode_value(result.product)]
    parts.append(struct.pack("<I", len(result.partials)))
    for ciphertext, offsets in result.partials:
        parts.append(encode_value(ciphertext))
        parts.append(struct.pack("<I", len(offsets)))
        parts.append(struct.pack(f"<{len(offsets)}I", *offsets))
    parts.append(struct.pack("<I", result.multiplications))
    return b"".join(parts)


def _decode_hom(blob: bytes, store: CiphertextStore) -> HomAggResult:
    file_name, offset = decode_value(blob, MARK_LEN)
    product, offset = decode_value(blob, offset)
    (num_partials,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    partials = []
    for _ in range(num_partials):
        ciphertext, offset = decode_value(blob, offset)
        (num_offsets,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        slots = struct.unpack_from(f"<{num_offsets}I", blob, offset)
        offset += 4 * num_offsets
        partials.append((ciphertext, tuple(slots)))
    (multiplications,) = struct.unpack_from("<I", blob, offset)
    file = store.get(file_name)
    return HomAggResult(
        file_name=file_name,
        column_names=file.column_names,
        product=product,
        partials=tuple(partials),
        multiplications=multiplications,
        ciphertext_bytes=file.ciphertext_bytes,
        layout=file.layout,
    )


def _is_busy_error(exc: sqlite3.Error) -> bool:
    """SQLITE_BUSY / SQLITE_LOCKED: transient lock contention, not a bug.

    These surface *after* the connection's own ``busy_timeout`` retries
    are exhausted, so translating them to
    :class:`~repro.common.errors.BackendBusyError` hands the decision up
    to the query-level retry layer instead of failing the query outright.
    """
    if not isinstance(exc, sqlite3.OperationalError):
        return False
    text = str(exc).lower()
    return "locked" in text or "busy" in text


def _translate_sqlite_error(exc: sqlite3.Error, sql_text: str) -> Exception:
    if _is_busy_error(exc):
        return BackendBusyError(f"SQLite busy: {exc} in {sql_text!r}")
    return ExecutionError(f"SQLite error: {exc} in {sql_text!r}")


# ---------------------------------------------------------------------------
# UDFs
# ---------------------------------------------------------------------------


def _searchswp(tags_blob: object, trapdoor: object) -> object:
    """SWP membership test: does the row's tag set contain the trapdoor?"""
    if tags_blob is None or trapdoor is None:
        return None
    if not (isinstance(tags_blob, bytes) and tags_blob[:MARK_LEN] == TAG_MARK):
        raise ExecutionError("searchswp over a non-tagset value")
    body = tags_blob[MARK_LEN:]
    for i in range(0, len(body), TAG_BYTES):
        if body[i : i + TAG_BYTES] == trapdoor:
            return 1
    return 0


def _like_strict(needle: object, pattern: object) -> object:
    if needle is None or pattern is None:
        return None
    return 1 if like_matches(str(needle), str(pattern)) else 0


class _SqliteSum:
    """SUM override: decode marker-blob integers and sum with Python ints.

    SQLite's native SUM coerces BIG_MARK blobs to 0 and raises "integer
    overflow" past 2**63; routing through Python keeps SUM exact over
    ciphertext-sized integers and identical to the engine's SumAgg
    (None-skipping, NULL over empty input).  Other arithmetic (+, -, *)
    over marker blobs remains out of contract — the planner never ships
    arithmetic over ciphertexts (SUM travels as hom_agg or grp).
    """

    def __init__(self, store: CiphertextStore) -> None:
        self._store = store
        self._total = None

    def step(self, value: object) -> None:
        value = decode_sqlite_value(value, self._store)
        if value is None:
            return
        self._total = value if self._total is None else self._total + value

    def finalize(self) -> object:
        return encode_sqlite_value(self._total)


class _SqliteGrp:
    """GROUP() adapter: collect raw SQLite values, emit one tagged blob."""

    def __init__(self, store: CiphertextStore) -> None:
        self._store = store
        self._inner = GrpAgg()

    def step(self, value: object) -> None:
        self._inner.update([decode_sqlite_value(value, self._store)])

    def finalize(self) -> bytes:
        values = self._inner.finalize()
        body = b"".join(encode_value(v) for v in values)
        return GRP_MARK + struct.pack("<I", len(values)) + body


class _SqliteHomAgg:
    """hom_agg adapter over the shared HomAgg implementation."""

    def __init__(self, store: CiphertextStore) -> None:
        self._inner = HomAgg(store)

    def step(self, file_name: object, row_id: object) -> None:
        self._inner.update([file_name, row_id])

    def finalize(self) -> bytes | None:
        result = self._inner.finalize()
        if result is None:
            return None
        return _encode_hom(result)


# ---------------------------------------------------------------------------
# Query preparation
# ---------------------------------------------------------------------------


def _inline_in_sets(query: ast.Select, params: dict[str, object]) -> ast.Select:
    """Bind the DET IN-set parameters of the multi-round-trip plans.

    SQLite cannot bind a set-valued parameter, so ``in_set(x, :p)`` inlines
    as ``x IN (c1, c2, ...)`` over the DET ciphertext literals — exactly
    the SQL a real deployment would ship.  An empty set becomes
    ``x IS NULL AND NULL`` (NULL for a NULL needle, false otherwise),
    matching the engine's three-valued ``in_set``.
    """

    def rewrite(node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.FuncCall) and node.name == "in_set":
            if len(node.args) != 2 or not isinstance(node.args[1], ast.Param):
                raise ExecutionError("in_set expects (expr, :param)")
            needle, param = node.args
            if param.name not in params:
                raise ExecutionError(f"unbound IN-set parameter :{param.name}")
            members = params[param.name]
            if not members:
                return ast.BinOp("and", ast.IsNull(needle), ast.Literal(None))
            ordered = sorted(members, key=lambda v: (isinstance(v, bytes), v))
            return ast.InList(needle, tuple(ast.Literal(v) for v in ordered))
        if isinstance(node, ast.ScalarSubquery):
            return ast.ScalarSubquery(_inline_in_sets(node.query, params))
        if isinstance(node, ast.InSubquery):
            return ast.InSubquery(
                node.needle, _inline_in_sets(node.query, params), node.negated
            )
        if isinstance(node, ast.Exists):
            return ast.Exists(_inline_in_sets(node.query, params), node.negated)
        return node

    def rewrite_ref(ref: ast.TableRef) -> ast.TableRef:
        if isinstance(ref, ast.SubqueryRef):
            return ast.SubqueryRef(_inline_in_sets(ref.query, params), ref.alias)
        if isinstance(ref, ast.Join):
            condition = ref.condition
            if condition is not None:
                condition = ast.transform(condition, rewrite)
            return ast.Join(
                rewrite_ref(ref.left), rewrite_ref(ref.right), ref.kind, condition
            )
        return ref

    rewritten = query.map_expressions(lambda e: ast.transform(e, rewrite))
    return replace(
        rewritten,
        from_items=tuple(rewrite_ref(ref) for ref in rewritten.from_items),
    )


def _add_order_tiebreak(query: ast.Select) -> ast.Select:
    """Pin the tie order of a pushed ORDER BY + LIMIT to insertion order.

    The engine's stable sort breaks ties by insertion order; SQLite leaves
    tie order undefined.  For the common pushed shape — single base table,
    no grouping/DISTINCT/aggregates — appending ``rowid`` (SQLite's
    insertion order) makes the served subset deterministic and identical
    to the engine's.  Grouped ORDER BY + LIMIT keeps SQLite's tie order
    (group emission order is an engine detail on both sides).
    """
    if query.limit is None or not query.order_by:
        return query
    if query.group_by or query.distinct:
        return query
    if len(query.from_items) != 1 or not isinstance(
        query.from_items[0], ast.TableName
    ):
        return query
    exprs = [item.expr for item in query.items]
    exprs.extend(o.expr for o in query.order_by)
    if any(ast.contains_aggregate(e) for e in exprs):
        return query
    tiebreak = ast.OrderItem(ast.Column("rowid"))
    return replace(query, order_by=query.order_by + (tiebreak,))


def _reads_ciphertext_store(query: ast.Select) -> bool:
    """Does this query read packed-Paillier bytes (``hom_agg``) anywhere?

    Such reads accrue on the backend-global ciphertext-store counter, so
    queries that make them must hold the store lock for an exclusive
    counter window; everything else (DET/OPE scans, ``grp``,
    ``searchswp``) never touches the counter and runs fully concurrently
    on per-worker connections.
    """
    found = False

    def check(expr: ast.Expr) -> ast.Expr:
        nonlocal found
        if isinstance(expr, ast.FuncCall) and expr.name == "hom_agg":
            found = True
        for sub in ast.find_subqueries(expr):
            if _reads_ciphertext_store(sub):
                found = True
        return expr

    query.map_expressions(lambda e: ast.transform(e, check))
    for ref in query.from_items:
        if isinstance(ref, ast.SubqueryRef) and _reads_ciphertext_store(ref.query):
            found = True
        if isinstance(ref, ast.Join):
            for side in (ref.left, ref.right):
                if isinstance(side, ast.SubqueryRef) and _reads_ciphertext_store(
                    side.query
                ):
                    found = True
    return found


def _grp_positions(query: ast.Select) -> frozenset[int]:
    """Output positions carrying ``grp()`` results (identity restoration)."""
    return frozenset(
        i
        for i, item in enumerate(query.items)
        if isinstance(item.expr, ast.FuncCall) and item.expr.name == "grp"
    )


def _restore_grp_identities(
    positions: frozenset[int], rows: list[tuple]
) -> list[tuple]:
    """Replace NULL ``grp()`` outputs with the empty tuple.

    Aggregating over zero input rows (no GROUP BY) yields one identity row;
    SQLite never instantiates a user aggregate that sees no input, so
    ``grp()`` comes back NULL where the engine's GrpAgg produces ``()``.
    GrpAgg never returns None otherwise (a group has at least one row), so
    the substitution is unambiguous.
    """
    if not positions or not rows:
        return rows
    return [
        tuple(
            () if i in positions and value is None else value
            for i, value in enumerate(row)
        )
        for row in rows
    ]


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------


class SQLiteBackend(ServerBackend):
    """Encrypted tables in a real SQLite database (file or in-memory).

    One connection serves every query for the backend's lifetime:
    ``sqlite3``'s per-connection statement cache (raised to
    ``_CACHED_STATEMENTS``) then skips re-preparing repeated SQL — the
    common case for round-trip plans and benchmark loops, where the same
    server query text runs many times.  Streamed queries
    (:meth:`execute_stream`) each get their own cursor with ``arraysize``
    tuned to the block size, so overlapping streams keep distinct result
    sets — but scan *accounting* windows the backend-global ciphertext
    read counter, so streams whose queries read ciphertext files
    (``hom_agg``) must be consumed one at a time for exact byte charges
    (the plan executor always does).
    """

    kind = "sqlite"

    _CACHED_STATEMENTS = 256
    #: Blocks each partition worker may buffer ahead of the merge point.
    _PARTITION_QUEUE_BLOCKS = 4
    #: How long any connection retries a locked database before erroring.
    #: Shared-cache readers on per-worker connections can hit transient
    #: lock states while another connection commits; a zero timeout turns
    #: that into a spurious "database is locked" failure under the
    #: concurrent service layer.
    _BUSY_TIMEOUT_MS = 5000

    _memory_ids = itertools.count()

    def __init__(self, name: str = "server", path: str = ":memory:") -> None:
        self.name = name
        self.path = path
        self.ciphertext_store = CiphertextStore()
        self.last_stats = ExecStats()
        self.schemas: dict[str, TableSchema] = {}
        self._table_bytes: dict[str, int] = {}
        # In-memory databases use a uniquely named shared-cache URI so the
        # partition workers' per-worker connections see the same data; the
        # main connection below holds the database alive.  File-backed
        # databases need no sharing tricks — workers just open the path.
        if path == ":memory:":
            unique = next(self._memory_ids)
            # Percent-encode the name: a '#' or '?' in it would otherwise
            # truncate the URI's query string and silently open an
            # on-disk file instead of a private in-memory database.
            safe_name = urllib.parse.quote(name, safe="")
            self._connect_target = (
                f"file:monomi-{safe_name}-{unique}?mode=memory&cache=shared"
            )
            self._connect_uri = True
        else:
            self._connect_target = path
            self._connect_uri = False
        # Serializes ciphertext-store reads (hom_agg) across connections:
        # the store's bytes_read counter is backend-global, so queries
        # that read packed ciphertexts take this lock for an exclusive
        # accounting window while plain scans run fully concurrent.
        self._store_lock = threading.Lock()
        # check_same_thread=False: the plan executor's prefetch pipeline
        # pulls stream cursors from a producer thread.  SQLite itself is
        # compiled serialized (sqlite3.threadsafety), and the executor
        # never touches one cursor from two threads concurrently.
        self.connection = sqlite3.connect(
            self._connect_target,
            uri=self._connect_uri,
            cached_statements=self._CACHED_STATEMENTS,
            check_same_thread=False,
        )
        self._configure_connection(self.connection)

    def _configure_connection(
        self, conn: sqlite3.Connection, reader: bool = False
    ) -> None:
        conn.execute(f"PRAGMA busy_timeout = {self._BUSY_TIMEOUT_MS}")
        if reader:
            # Shared-cache table locks are SQLITE_LOCKED, which the busy
            # handler does *not* retry: a reader overlapping a writer's
            # commit would fail with "database table is locked" no matter
            # the timeout.  Worker connections are read-only by contract
            # (all writes go through the parent), so skipping read locks
            # is safe and makes readers immune to writer lock states.
            conn.execute("PRAGMA read_uncommitted = 1")
        self._register_udfs(conn)

    def _register_udfs(self, conn: sqlite3.Connection) -> None:
        store = self.ciphertext_store
        conn.create_function("searchswp", 2, _searchswp, deterministic=True)
        conn.create_function("like_strict", 2, _like_strict, deterministic=True)
        conn.create_aggregate("grp", 1, lambda: _SqliteGrp(store))
        conn.create_aggregate("hom_agg", 2, lambda: _SqliteHomAgg(store))
        conn.create_aggregate("sum", 1, lambda: _SqliteSum(store))

    def _worker_connection(self) -> sqlite3.Connection:
        """A per-worker read connection (partition scans, service views).

        Same database, own statement cache and cursor state; the UDF set
        is registered per connection because SQLite functions are
        connection-scoped, and ``busy_timeout`` is set so shared-cache
        lock contention retries instead of failing.
        ``check_same_thread=False`` because a service worker's view is
        also driven by the plan executor's prefetch producer thread.
        """
        conn = sqlite3.connect(
            self._connect_target,
            uri=self._connect_uri,
            cached_statements=self._CACHED_STATEMENTS,
            check_same_thread=False,
        )
        self._configure_connection(conn, reader=True)
        return conn

    # -- loading ------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        if schema.name in self.schemas:
            raise EngineError(f"table {schema.name!r} already exists")
        if not schema.columns:
            raise EngineError("SQLite backend requires at least one column")
        self.schemas[schema.name] = schema
        columns = ", ".join(quote_ident(c.name) for c in schema.columns)
        self.connection.execute(
            f"CREATE TABLE {quote_ident(schema.name)} ({columns})"
        )
        self._table_bytes[schema.name] = 0

    def insert_rows(self, table_name: str, rows: Iterable[tuple]) -> None:
        schema = self.schemas.get(table_name)
        if schema is None:
            raise EngineError(f"unknown table {table_name!r}")
        width = len(schema.columns)
        placeholders = ", ".join("?" * width)
        encoded: list[tuple] = []
        total = 0
        for row in rows:
            if len(row) != width:
                raise EngineError(
                    f"row has {len(row)} values, table {table_name!r} has {width}"
                )
            total += row_bytes(row)
            encoded.append(tuple(encode_sqlite_value(v) for v in row))
        insert_sql = (
            f"INSERT INTO {quote_ident(table_name)} VALUES ({placeholders})"
        )
        try:
            self.connection.executemany(insert_sql, encoded)
            self.connection.commit()
        except sqlite3.Error as exc:
            # Roll back the implicit transaction so a retried batch never
            # double-inserts half-written rows; byte accounting below only
            # moves on a successful commit for the same reason.
            self.connection.rollback()
            raise _translate_sqlite_error(exc, insert_sql) from exc
        self._table_bytes[table_name] += total

    # -- encrypted DML (PR 10) -----------------------------------------------
    #
    # Rows are matched by *decoded logical value* (the tuples a fetch
    # returned), not by encoded-at-rest bytes: the wide-int marker-blob
    # encoding is deterministic, but matching on decoded values keeps the
    # contract identical to the in-memory backend's.  Each batch commits
    # in one transaction, so a failed batch leaves the store untouched
    # and a retried one re-matches from scratch.

    def _match_stored(
        self, table_name: str, keys: dict[tuple, int]
    ) -> list[tuple[int, tuple]]:
        """Scan the table, consuming one stored match per requested key;
        return ``(rowid, decoded_row)`` pairs for the matches."""
        store = self.ciphertext_store
        matches: list[tuple[int, tuple]] = []
        cursor = self.connection.execute(
            f"SELECT rowid, * FROM {quote_ident(table_name)}"
        )
        while True:
            raw = cursor.fetchmany(DEFAULT_BLOCK_ROWS)
            if not raw:
                break
            for values in raw:
                decoded = tuple(
                    decode_sqlite_value(v, store) for v in values[1:]
                )
                count = keys.get(decoded, 0)
                if count:
                    keys[decoded] = count - 1
                    matches.append((values[0], decoded))
        return matches

    def delete_rows(self, table_name: str, rows: Iterable[tuple]) -> int:
        if table_name not in self.schemas:
            raise EngineError(f"unknown table {table_name!r}")
        wanted: dict[tuple, int] = {}
        for row in rows:
            key = tuple(row)
            wanted[key] = wanted.get(key, 0) + 1
        if not wanted:
            return 0
        matches = self._match_stored(table_name, wanted)
        if not matches:
            return 0
        delete_sql = (
            f"DELETE FROM {quote_ident(table_name)} WHERE rowid = ?"
        )
        try:
            self.connection.executemany(
                delete_sql, [(rowid,) for rowid, _ in matches]
            )
            self.connection.commit()
        except sqlite3.Error as exc:
            self.connection.rollback()
            raise _translate_sqlite_error(exc, delete_sql) from exc
        self._table_bytes[table_name] -= sum(
            row_bytes(decoded) for _, decoded in matches
        )
        return len(matches)

    def replace_rows(
        self, table_name: str, pairs: Iterable[tuple[tuple, tuple]]
    ) -> int:
        schema = self.schemas.get(table_name)
        if schema is None:
            raise EngineError(f"unknown table {table_name!r}")
        width = len(schema.columns)
        pending: dict[tuple, list[tuple]] = {}
        total = 0
        for old, new in pairs:
            if len(new) != width:
                raise EngineError(
                    f"row has {len(new)} values, table {table_name!r} "
                    f"has {width}"
                )
            pending.setdefault(tuple(old), []).append(tuple(new))
            total += 1
        if not total:
            return 0
        counts = {key: len(queue) for key, queue in pending.items()}
        updates: list[tuple] = []
        delta = 0
        for rowid, decoded in self._match_stored(table_name, counts):
            new = pending[decoded].pop(0)
            updates.append(
                tuple(encode_sqlite_value(v) for v in new) + (rowid,)
            )
            delta += row_bytes(new) - row_bytes(decoded)
        if not updates:
            return 0
        assignments = ", ".join(
            f"{quote_ident(c.name)} = ?" for c in schema.columns
        )
        update_sql = (
            f"UPDATE {quote_ident(table_name)} SET {assignments} "
            "WHERE rowid = ?"
        )
        try:
            self.connection.executemany(update_sql, updates)
            self.connection.commit()
        except sqlite3.Error as exc:
            self.connection.rollback()
            raise _translate_sqlite_error(exc, update_sql) from exc
        self._table_bytes[table_name] += delta
        return len(updates)

    # -- introspection -------------------------------------------------------

    def table_names(self) -> list[str]:
        return sorted(self.schemas)

    def table_bytes(self, table_name: str) -> int:
        try:
            return self._table_bytes[table_name]
        except KeyError:
            raise EngineError(f"unknown table {table_name!r}") from None

    # -- resumable load support ----------------------------------------------

    def has_table(self, table_name: str) -> bool:
        """True when the table exists — registered here *or* persisted in
        the database file by a previous process (the resume case)."""
        if table_name in self.schemas:
            return True
        row = self.connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' AND name = ?",
            (table_name,),
        ).fetchone()
        return row is not None

    def row_count(self, table_name: str) -> int:
        if not self.has_table(table_name):
            raise EngineError(f"unknown table {table_name!r}")
        (count,) = self.connection.execute(
            f"SELECT COUNT(*) FROM {quote_ident(table_name)}"
        ).fetchone()
        return count

    def adopt_table(self, schema: TableSchema) -> None:
        """Register ``schema`` over rows a previous process committed.

        The crash-resume path: the table lives in the database file but
        this backend object has never seen it.  Logical byte accounting
        is recomputed by scanning and decoding the surviving rows, so
        ``table_bytes`` — and with it every scan charge — is identical
        to what an uninterrupted load would have recorded.
        """
        if schema.name in self.schemas:
            return  # Already registered (same-process resume): nothing to do.
        if not self.has_table(schema.name):
            raise EngineError(
                f"cannot adopt {schema.name!r}: not present in the database"
            )
        store = self.ciphertext_store
        total = 0
        cursor = self.connection.execute(
            f"SELECT * FROM {quote_ident(schema.name)}"
        )
        while True:
            raw = cursor.fetchmany(DEFAULT_BLOCK_ROWS)
            if not raw:
                break
            for row in raw:
                total += row_bytes(
                    tuple(decode_sqlite_value(v, store) for v in row)
                )
        self.schemas[schema.name] = schema
        self._table_bytes[schema.name] = total

    # -- query execution ------------------------------------------------------

    def _prepare(
        self, query: ast.Select, params: dict[str, object] | None
    ) -> tuple[ast.Select, str, dict]:
        """Bind IN sets, print SQLite SQL, and encode scalar parameters."""
        bound = _inline_in_sets(query, params or {})
        sql_text = to_sql(_add_order_tiebreak(bound), dialect="sqlite")
        bind = {
            name: encode_sqlite_value(value)
            for name, value in (params or {}).items()
            if not isinstance(value, (set, frozenset))
        }
        return bound, sql_text, bind

    def _static_scan_bytes(self, bound: ast.Select) -> int:
        # Static scan accounting over the same walk the engine uses
        # (ast.table_occurrences), so ledgers are backend-independent.
        return sum(
            self.table_bytes(name)
            for name in ast.table_occurrences(bound)
            if name in self._table_bytes
        )

    def execute(
        self, query: ast.Select, params: dict[str, object] | None = None
    ) -> ResultSet:
        result, stats = self._execute_on(self.connection, query, params)
        self.last_stats = stats
        return result

    def _execute_on(
        self,
        conn: sqlite3.Connection,
        query: ast.Select,
        params: dict[str, object] | None,
    ) -> tuple[ResultSet, ExecStats]:
        """Run one query on ``conn``, returning its result and stats.

        Queries that read the ciphertext store (``hom_agg``) run under
        the backend's store lock so the global bytes-read window is
        exclusively theirs; every other query skips both the lock and the
        window, which is what lets per-worker connections execute
        concurrently with exact per-query accounting.
        """
        bound, sql_text, bind = self._prepare(query, params)
        if _reads_ciphertext_store(bound):
            with self._store_lock:
                return self._run_bound(
                    conn, query, bound, sql_text, bind, window_store=True
                )
        return self._run_bound(
            conn, query, bound, sql_text, bind, window_store=False
        )

    def _run_bound(
        self,
        conn: sqlite3.Connection,
        query: ast.Select,
        bound: ast.Select,
        sql_text: str,
        bind: dict,
        window_store: bool,
    ) -> tuple[ResultSet, ExecStats]:
        stats = ExecStats()
        store = self.ciphertext_store
        read_start = store.bytes_read if window_store else 0
        try:
            cursor = conn.execute(sql_text, bind)
            raw_rows = cursor.fetchall()
        except sqlite3.Error as exc:
            raise _translate_sqlite_error(exc, sql_text) from exc
        rows = [
            tuple(decode_sqlite_value(v, store) for v in row) for row in raw_rows
        ]
        rows = _restore_grp_identities(_grp_positions(bound), rows)
        columns = [item.output_name(i) for i, item in enumerate(query.items)]
        scanned = self._static_scan_bytes(bound)
        if window_store:
            scanned += store.bytes_read - read_start
        stats.bytes_scanned = scanned
        stats.rows_output = len(rows)
        return ResultSet(columns, rows), stats

    def execute_stream(
        self,
        query: ast.Select,
        params: dict[str, object] | None = None,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        partitions: int = 1,
    ) -> BlockStream:
        """Stream the query through a ``fetchmany`` cursor, one block at a
        time — the server never materializes the full result set.

        Static scan bytes are charged when the stream is created;
        ciphertext-store reads made by ``hom_agg`` accrue as the SQLite VM
        steps and fold into ``stats.bytes_scanned`` when the stream ends
        (exhausted or closed), so drained totals match :meth:`execute`.

        ``partitions > 1`` splits a streamable scan into contiguous
        ``rowid`` ranges, one per-worker connection each (see
        :meth:`_execute_stream_partitioned`); blocking roots and pushed
        LIMITs keep this serial path — native streaming makes that a
        change of parallelism, never of results.
        """
        if partitions > 1 and self._can_partition(query):
            stream = self._execute_stream_partitioned(
                query, params, block_rows, partitions
            )
            self.last_stats = stream.stats
            return stream
        if _reads_ciphertext_store(query):
            # Same policy as the worker views: hom accounting needs an
            # exclusive store-counter window, which a consumer-paced
            # cursor cannot hold — materialize under the store lock
            # (execute takes it) and re-block.  Hom queries are grouped
            # aggregates, so their results are small either way.
            result = self.execute(query, params=params)
            blocks = blocks_from_rows(
                result.rows, len(result.columns), block_rows
            )
            return BlockStream(result.columns, blocks, self.last_stats)
        stream = self._stream_on(self.connection, query, params, block_rows)
        self.last_stats = stream.stats
        return stream

    def _stream_on(
        self,
        conn: sqlite3.Connection,
        query: ast.Select,
        params: dict[str, object] | None,
        block_rows: int,
    ) -> BlockStream:
        """Serial ``fetchmany`` streaming over an explicit connection.

        Only store-free queries reach this path (hom_agg queries
        materialize under the store lock in ``execute_stream``), so the
        global bytes-read counter is never consulted here — concurrent
        hom readers on other connections can never leak bytes into this
        stream's accounting.
        """
        stats = ExecStats()
        bound, sql_text, bind = self._prepare(query, params)
        store = self.ciphertext_store
        static_bytes = self._static_scan_bytes(bound)
        stats.bytes_scanned = static_bytes
        grp_positions = _grp_positions(bound)
        columns = [item.output_name(i) for i, item in enumerate(query.items)]
        cursor = conn.cursor()
        cursor.arraysize = block_rows
        try:
            cursor.execute(sql_text, bind)
        except sqlite3.Error as exc:
            cursor.close()
            raise _translate_sqlite_error(exc, sql_text) from exc

        def blocks():
            try:
                while True:
                    try:
                        raw = cursor.fetchmany(block_rows)
                    except sqlite3.Error as exc:
                        raise _translate_sqlite_error(exc, sql_text) from exc
                    if not raw:
                        break
                    rows = [
                        tuple(decode_sqlite_value(v, store) for v in row)
                        for row in raw
                    ]
                    rows = _restore_grp_identities(grp_positions, rows)
                    stats.rows_output += len(rows)
                    yield RowBlock.from_rows(rows, len(columns))
            finally:
                cursor.close()

        return BlockStream(columns, blocks(), stats)

    # -- partition-parallel scans ---------------------------------------------

    def _can_partition(self, query: ast.Select) -> bool:
        """Streamable scan over a loaded table, without a pushed LIMIT
        (a global row budget cannot be split across partitions without
        changing how early the scan stops)."""
        if not is_streamable(query) or query.limit is not None:
            return False
        return query.from_items[0].name in self.schemas

    def _execute_stream_partitioned(
        self,
        query: ast.Select,
        params: dict[str, object] | None,
        block_rows: int,
        partitions: int,
    ) -> BlockStream:
        """Contiguous ``rowid`` ranges, one per-worker connection each.

        Each worker runs the scan restricted to its range (``rowid``
        reflects insertion order, so ranges are the engine's contiguous
        row slices) and feeds decoded rows through a bounded queue; the
        merge point drains the queues in partition order, so output order
        matches the serial stream exactly and total buffering stays
        O(partitions x queue depth x block).  Accounting is unchanged:
        the full heap is charged once up front, and streamable queries
        never read ciphertext files.
        """
        stats = ExecStats()
        bound, _, bind = self._prepare(query, params)
        static_bytes = self._static_scan_bytes(bound)
        stats.bytes_scanned = static_bytes
        columns = [item.output_name(i) for i, item in enumerate(query.items)]
        store = self.ciphertext_store
        table_name = bound.from_items[0].name
        min_rowid, max_rowid = self.connection.execute(
            f"SELECT MIN(rowid), MAX(rowid) FROM {quote_ident(table_name)}"
        ).fetchone()
        if min_rowid is None:
            return BlockStream(columns, iter(()), stats)
        spans = [
            (min_rowid + lo, min_rowid + hi - 1)
            for lo, hi in shard_spans(max_rowid - min_rowid + 1, partitions)
        ]
        partition_sqls = []
        for lo, hi in spans:
            fence = ast.Between(
                ast.Column("rowid"), ast.Literal(lo), ast.Literal(hi)
            )
            where = (
                fence
                if bound.where is None
                else ast.BinOp("and", bound.where, fence)
            )
            partition_sqls.append(
                to_sql(replace(bound, where=where), dialect="sqlite")
            )
        stop = threading.Event()
        queues = [
            queue_mod.Queue(maxsize=self._PARTITION_QUEUE_BLOCKS)
            for _ in partition_sqls
        ]

        def run_partition(index: int, sql_text: str) -> None:
            out = queues[index]
            conn = None
            try:
                conn = self._worker_connection()
                cursor = conn.cursor()
                cursor.arraysize = block_rows
                cursor.execute(sql_text, bind)
                while True:
                    raw = cursor.fetchmany(block_rows)
                    if not raw:
                        break
                    rows = [
                        tuple(decode_sqlite_value(v, store) for v in row)
                        for row in raw
                    ]
                    if not queue_put_bounded(out, ("rows", rows), stop):
                        return  # Consumer closed early; stop scanning.
            except sqlite3.Error as exc:
                queue_put_bounded(
                    out, ("error", _translate_sqlite_error(exc, sql_text)), stop
                )
            except Exception as exc:
                # Anything else (decode errors on corrupt blobs, store
                # lookups) must reach the consumer in-band: a dead thread
                # whose finally still reports "done" would silently
                # truncate the merged result.
                queue_put_bounded(out, ("error", exc), stop)
            finally:
                if conn is not None:
                    conn.close()
                queue_put_bounded(out, ("done", None), stop)

        def partition_row_lists():
            """Drain the queues in partition order (raising in-band errors)."""
            for out in queues:
                while True:
                    kind, payload = out.get()
                    if kind == "done":
                        break
                    if kind == "error":
                        raise payload
                    yield payload

        def blocks():
            threads = [
                threading.Thread(
                    target=run_partition, args=(i, sql), daemon=True
                )
                for i, sql in enumerate(partition_sqls)
            ]
            for thread in threads:
                thread.start()
            try:
                yield from rechunk_rows(
                    partition_row_lists(), len(columns), block_rows, stats
                )
            finally:
                stop.set()
                for out in queues:
                    while True:
                        try:
                            out.get_nowait()
                        except queue_mod.Empty:
                            break
                for thread in threads:
                    thread.join(timeout=5.0)

        return BlockStream(columns, blocks(), stats)

    # -- concurrent service access ---------------------------------------------

    def worker_view(self) -> ServerBackend:
        """A genuinely concurrent worker view: its own SQLite connection.

        Every view opens a separate connection to the same database
        (shared-cache URI for ``:memory:``, the path for files), so
        service workers execute simultaneously inside SQLite itself.
        Only queries that read the shared ciphertext store (``hom_agg``)
        serialize, on the backend's store lock, because their byte
        accounting windows a backend-global counter.
        """
        return _SQLiteWorkerView(self)

    def close(self) -> None:
        self.connection.close()


class _SQLiteWorkerView(DelegatingView):
    """One service worker's view of a :class:`SQLiteBackend`.

    Shares the parent's schemas, logical heap sizes, and ciphertext store
    (loading and introspection delegate via :class:`DelegatingView`);
    owns a dedicated connection and its own ``last_stats``.
    """

    _parent: SQLiteBackend

    def __init__(self, parent: SQLiteBackend) -> None:
        super().__init__(parent)
        self.connection = parent._worker_connection()

    def execute(
        self, query: ast.Select, params: dict[str, object] | None = None
    ) -> ResultSet:
        result, stats = self._parent._execute_on(self.connection, query, params)
        self.last_stats = stats
        return result

    def execute_stream(
        self,
        query: ast.Select,
        params: dict[str, object] | None = None,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        partitions: int = 1,
    ) -> BlockStream:
        parent = self._parent
        if partitions > 1 and parent._can_partition(query):
            stream = parent._execute_stream_partitioned(
                query, params, block_rows, partitions
            )
            self.last_stats = stream.stats
            return stream
        # IN-set inlining only injects literal lists — it can never add or
        # remove a hom_agg call — so the raw query answers the check.
        if _reads_ciphertext_store(query):
            # Exact hom accounting needs an exclusive counter window for
            # the whole execution, so materialize under the store lock
            # (holding it for a consumer-paced stream would let one slow
            # session block every hom reader) and re-block.
            result = self.execute(query, params=params)
            blocks = blocks_from_rows(
                result.rows, len(result.columns), block_rows
            )
            return BlockStream(result.columns, blocks, self.last_stats)
        stream = parent._stream_on(self.connection, query, params, block_rows)
        self.last_stats = stream.stats
        return stream

    def close(self) -> None:
        self.connection.close()
