"""Partition-scan workers: one streamable scan slice per process.

The in-memory backend's partition-parallel mode ships each worker one
contiguous slice of a table's (encrypted) rows plus the server query, and
the worker runs the ordinary relational engine over just that slice —
scan → filter → project, exactly the operator set
:func:`~repro.engine.executor.is_streamable` admits, so a slice's output
is precisely the serial output restricted to the slice's rows.
Concatenating slice results in slice order therefore reproduces the
serial scan order — re-merge is list concatenation, no sort needed.

Everything here is module-scope so the process pool can pickle the worker
function by reference under any start method.  Payloads carry only
ciphertexts and the query AST: partition workers run on the *untrusted*
server side of the seam and hold no keys.
"""

from __future__ import annotations

from repro.engine.catalog import Database
from repro.engine.executor import Executor
from repro.engine.schema import ColumnDef, TableSchema


def scan_partition(payload: tuple) -> list[tuple]:
    """Run one streamable query over one slice of a table's rows.

    ``payload`` is ``(table_name, column_names, rows, query, params)``;
    returns the projected result rows for the slice.  Scan-byte
    accounting happens in the parent (it charges the full heap once,
    identical to the serial scan), so the worker's stats are discarded.
    """
    table_name, column_names, rows, query, params = payload
    db = Database("partition")
    schema = TableSchema(
        name=table_name,
        columns=tuple(ColumnDef(name, "any") for name in column_names),
    )
    table = db.create_table(schema)
    table.rows = rows  # Slice of already-validated server rows.
    executor = Executor(db)
    return executor.execute(query, params=params).rows
