"""Untrusted-server backends: the seam behind MONOMI's server half.

`make_backend("memory" | "sqlite")` builds a fresh backend;
`as_backend(database_or_backend)` adapts the pre-backend calling
convention (a raw `engine.Database`); `make_sharded_backend` puts N
fresh backends behind the scatter-gather coordinator.
"""

from __future__ import annotations

from repro.server.backend import ServerBackend, as_backend
from repro.server.chaos import (
    CHAOS_ENV,
    FaultInjectingBackend,
    chaos_from_env,
    maybe_wrap_chaos,
    parse_chaos,
)
from repro.server.inmemory import InMemoryBackend
from repro.server.sharded import (
    SHARDS_ENV,
    ShardedBackend,
    make_sharded_backend,
    resolve_shards,
    shards_from_env,
)
from repro.server.sqlite import SQLiteBackend

BACKEND_KINDS = ("memory", "sqlite")


def make_backend(kind: str, name: str = "server", **options) -> ServerBackend:
    """Build a fresh backend by kind name ("memory" or "sqlite")."""
    if kind == "memory":
        return InMemoryBackend(name=name)
    if kind == "sqlite":
        return SQLiteBackend(name=name, **options)
    raise ValueError(f"unknown backend kind {kind!r} (expected {BACKEND_KINDS})")


__all__ = [
    "BACKEND_KINDS",
    "CHAOS_ENV",
    "SHARDS_ENV",
    "FaultInjectingBackend",
    "InMemoryBackend",
    "SQLiteBackend",
    "ServerBackend",
    "ShardedBackend",
    "as_backend",
    "chaos_from_env",
    "make_backend",
    "make_sharded_backend",
    "maybe_wrap_chaos",
    "parse_chaos",
    "resolve_shards",
    "shards_from_env",
]
