"""SQL lexer.

Produces a flat token stream for the recursive-descent parser.  Keywords are
case-insensitive; identifiers are lower-cased (our catalog is lower-case,
like Postgres' default folding).  The dialect adds two lexemes standard SQL
text does not need but encrypted queries do:

* hex blob literals ``X'ab12...'`` — deterministic/OPE ciphertext constants
  embedded in server-side queries;
* named parameters ``:1`` / ``:name`` — the paper writes TPC-H parameters
  as ``:1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import LexError

KEYWORDS = frozenset(
    """
    select from where group by having order asc desc limit distinct as and or
    not in like between is null exists case when then else end inner left
    outer join on interval year month day date extract substring for true
    false cast integer bigint text union all
    insert into values update set delete
    """.split()
)

SYMBOLS = (
    "<=", ">=", "<>", "!=", "||",
    "=", "<", ">", "+", "-", "*", "/", "(", ")", ",", ".", ";",
)


@dataclass(frozen=True)
class Token:
    kind: str  # keyword | ident | number | string | blob | param | symbol | eof
    text: str
    value: object = None
    position: int = 0

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.text == word

    def is_symbol(self, sym: str) -> bool:
        return self.kind == "symbol" and self.text == sym


def tokenize(sql: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):  # Line comment.
            end = sql.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "'":
            text, i = _read_string(sql, i)
            tokens.append(Token("string", text, value=text, position=i))
            continue
        if ch in ("x", "X") and i + 1 < n and sql[i + 1] == "'":
            hex_text, i = _read_string(sql, i + 1)
            try:
                blob = bytes.fromhex(hex_text)
            except ValueError:
                raise LexError(f"bad hex blob literal {hex_text!r}", i)
            tokens.append(Token("blob", hex_text, value=blob, position=i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            token, i = _read_number(sql, i)
            tokens.append(token)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i].lower()
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, position=start))
            continue
        if ch == ":":
            start = i
            i += 1
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            if i == start + 1:
                raise LexError("bare ':' is not a parameter", start)
            tokens.append(Token("param", sql[start + 1 : i], position=start))
            continue
        matched = False
        for sym in SYMBOLS:
            if sql.startswith(sym, i):
                tokens.append(Token("symbol", "<>" if sym == "!=" else sym, position=i))
                i += len(sym)
                matched = True
                break
        if not matched:
            raise LexError(f"unexpected character {ch!r}", i)
    tokens.append(Token("eof", "", position=n))
    return tokens


def _read_string(sql: str, i: int) -> tuple[str, int]:
    """Read a single-quoted string starting at ``i`` (which is the quote).

    Doubled quotes escape a quote, per SQL.
    """
    assert sql[i] == "'"
    i += 1
    parts: list[str] = []
    while i < len(sql):
        ch = sql[i]
        if ch == "'":
            if i + 1 < len(sql) and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise LexError("unterminated string literal", i)


def _read_number(sql: str, i: int) -> tuple[Token, int]:
    start = i
    n = len(sql)
    while i < n and sql[i].isdigit():
        i += 1
    is_float = False
    if i < n and sql[i] == "." and (i + 1 < n and sql[i + 1].isdigit() or True):
        is_float = True
        i += 1
        while i < n and sql[i].isdigit():
            i += 1
    if i < n and sql[i] in "eE":
        j = i + 1
        if j < n and sql[j] in "+-":
            j += 1
        if j < n and sql[j].isdigit():
            is_float = True
            i = j
            while i < n and sql[i].isdigit():
                i += 1
    text = sql[start:i]
    value: object = float(text) if is_float else int(text)
    return Token("number", text, value=value, position=start), i
