"""Recursive-descent SQL parser producing :mod:`repro.sql.ast` trees."""

from __future__ import annotations

import datetime

from repro.common.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import Token, tokenize

_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")
_INTERVAL_UNITS = ("year", "month", "day")


from functools import lru_cache


@lru_cache(maxsize=4096)
def parse(sql: str) -> ast.Select:
    """Parse one SELECT statement (trailing ';' allowed).

    Results are cached: AST nodes are immutable, so sharing is safe, and
    the planner normalizes expressions by text thousands of times.
    """
    parser = _Parser(tokenize(sql))
    select = parser.parse_select()
    parser.skip_symbol(";")
    parser.expect_eof()
    return select


@lru_cache(maxsize=4096)
def parse_statement(sql: str) -> "ast.Statement":
    """Parse one statement: SELECT, INSERT, UPDATE, or DELETE.

    SELECTs share :func:`parse`'s semantics (and its cache holds the
    same immutable trees); DML statements are new in PR 10 and only the
    client-side DML executor consumes them — the planner still receives
    SELECTs exclusively.
    """
    parser = _Parser(tokenize(sql))
    token = parser.current
    if token.is_keyword("insert"):
        statement: ast.Statement = parser.parse_insert()
    elif token.is_keyword("update"):
        statement = parser.parse_update()
    elif token.is_keyword("delete"):
        statement = parser.parse_delete()
    else:
        return parse(sql)
    parser.skip_symbol(";")
    parser.expect_eof()
    return statement


@lru_cache(maxsize=65536)
def parse_expression(sql: str) -> ast.Expr:
    """Parse a standalone expression (cached; see :func:`parse`)."""
    parser = _Parser(tokenize(sql))
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing --------------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self.current
        self._pos += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self._pos += 1
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise ParseError(f"expected {word.upper()}, found {self.current.text!r}")

    def accept_symbol(self, sym: str) -> bool:
        if self.current.is_symbol(sym):
            self._pos += 1
            return True
        return False

    def skip_symbol(self, sym: str) -> None:
        self.accept_symbol(sym)

    def expect_symbol(self, sym: str) -> None:
        if not self.accept_symbol(sym):
            raise ParseError(f"expected {sym!r}, found {self.current.text!r}")

    def expect_ident(self) -> str:
        if self.current.kind == "ident":
            return self.advance().text
        # Non-reserved keywords can be identifiers in alias positions.
        if self.current.kind == "keyword" and self.current.text in ("year", "month", "day", "date"):
            return self.advance().text
        raise ParseError(f"expected identifier, found {self.current.text!r}")

    def expect_eof(self) -> None:
        if self.current.kind != "eof":
            raise ParseError(f"unexpected trailing input at {self.current.text!r}")

    # -- statements ------------------------------------------------------------

    def parse_select(self) -> ast.Select:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        items = self._parse_select_items()
        from_items: tuple[ast.TableRef, ...] = ()
        if self.accept_keyword("from"):
            from_items = self._parse_from_list()
        where = self.parse_expr() if self.accept_keyword("where") else None
        group_by: tuple[ast.Expr, ...] = ()
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by = tuple(self._parse_expr_list())
        having = self.parse_expr() if self.accept_keyword("having") else None
        order_by: tuple[ast.OrderItem, ...] = ()
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by = tuple(self._parse_order_items())
        limit = None
        if self.accept_keyword("limit"):
            token = self.advance()
            if token.kind != "number" or not isinstance(token.value, int):
                raise ParseError("LIMIT expects an integer")
            limit = token.value
        return ast.Select(
            items=tuple(items),
            from_items=from_items,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def parse_insert(self) -> ast.Insert:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self.expect_ident()
        columns: tuple[str, ...] = ()
        if self.accept_symbol("("):
            names = [self.expect_ident()]
            while self.accept_symbol(","):
                names.append(self.expect_ident())
            self.expect_symbol(")")
            columns = tuple(names)
        self.expect_keyword("values")
        rows: list[tuple[ast.Expr, ...]] = []
        while True:
            self.expect_symbol("(")
            rows.append(tuple(self._parse_expr_list()))
            self.expect_symbol(")")
            if not self.accept_symbol(","):
                break
        if columns:
            for row in rows:
                if len(row) != len(columns):
                    raise ParseError(
                        f"INSERT row has {len(row)} values for "
                        f"{len(columns)} columns"
                    )
        return ast.Insert(table=table, columns=columns, rows=tuple(rows))

    def parse_update(self) -> ast.Update:
        self.expect_keyword("update")
        table = self.expect_ident()
        self.expect_keyword("set")
        assignments = [self._parse_assignment()]
        while self.accept_symbol(","):
            assignments.append(self._parse_assignment())
        where = self.parse_expr() if self.accept_keyword("where") else None
        return ast.Update(
            table=table, assignments=tuple(assignments), where=where
        )

    def _parse_assignment(self) -> ast.Assignment:
        column = self.expect_ident()
        self.expect_symbol("=")
        return ast.Assignment(column, self.parse_expr())

    def parse_delete(self) -> ast.Delete:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        table = self.expect_ident()
        where = self.parse_expr() if self.accept_keyword("where") else None
        return ast.Delete(table=table, where=where)

    def _parse_select_items(self) -> list[ast.SelectItem]:
        items = []
        while True:
            if self.accept_symbol("*"):
                items.append(ast.SelectItem(ast.Column("*")))
            else:
                expr = self.parse_expr()
                alias = None
                if self.accept_keyword("as"):
                    alias = self.expect_ident()
                elif self.current.kind == "ident":
                    alias = self.advance().text
                items.append(ast.SelectItem(expr, alias))
            if not self.accept_symbol(","):
                return items

    def _parse_from_list(self) -> tuple[ast.TableRef, ...]:
        refs = [self._parse_join_chain()]
        while self.accept_symbol(","):
            refs.append(self._parse_join_chain())
        return tuple(refs)

    def _parse_join_chain(self) -> ast.TableRef:
        left = self._parse_table_primary()
        while True:
            kind = None
            if self.accept_keyword("inner"):
                kind = "inner"
                self.expect_keyword("join")
            elif self.accept_keyword("left"):
                self.accept_keyword("outer")
                kind = "left"
                self.expect_keyword("join")
            elif self.accept_keyword("join"):
                kind = "inner"
            else:
                return left
            right = self._parse_table_primary()
            condition = None
            if self.accept_keyword("on"):
                condition = self.parse_expr()
            left = ast.Join(left, right, kind, condition)

    def _parse_table_primary(self) -> ast.TableRef:
        if self.accept_symbol("("):
            query = self.parse_select()
            self.expect_symbol(")")
            self.accept_keyword("as")
            alias = self.expect_ident()
            return ast.SubqueryRef(query, alias)
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.current.kind == "ident":
            alias = self.advance().text
        return ast.TableName(name, alias)

    def _parse_order_items(self) -> list[ast.OrderItem]:
        items = []
        while True:
            expr = self.parse_expr()
            ascending = True
            if self.accept_keyword("desc"):
                ascending = False
            else:
                self.accept_keyword("asc")
            items.append(ast.OrderItem(expr, ascending))
            if not self.accept_symbol(","):
                return items

    def _parse_expr_list(self) -> list[ast.Expr]:
        exprs = [self.parse_expr()]
        while self.accept_symbol(","):
            exprs.append(self.parse_expr())
        return exprs

    # -- expressions (precedence climbing) --------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self.accept_keyword("or"):
            left = ast.BinOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self.accept_keyword("and"):
            left = ast.BinOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self.accept_keyword("not"):
            return ast.UnaryOp("not", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expr:
        left = self._parse_additive()
        negated = self.accept_keyword("not")
        if self.current.kind == "symbol" and self.current.text in _COMPARISONS:
            if negated:
                raise ParseError("NOT before a comparison operator")
            op = self.advance().text
            return ast.BinOp(op, left, self._parse_additive())
        if self.accept_keyword("in"):
            return self._parse_in_tail(left, negated)
        if self.accept_keyword("like"):
            return ast.Like(left, self._parse_additive(), negated)
        if self.accept_keyword("between"):
            low = self._parse_additive()
            self.expect_keyword("and")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated)
        if self.accept_keyword("is"):
            is_negated = self.accept_keyword("not")
            self.expect_keyword("null")
            return ast.IsNull(left, is_negated)
        if negated:
            raise ParseError("dangling NOT in predicate")
        return left

    def _parse_in_tail(self, needle: ast.Expr, negated: bool) -> ast.Expr:
        self.expect_symbol("(")
        if self.current.is_keyword("select"):
            query = self.parse_select()
            self.expect_symbol(")")
            return ast.InSubquery(needle, query, negated)
        items = tuple(self._parse_expr_list())
        self.expect_symbol(")")
        return ast.InList(needle, items, negated)

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            if self.accept_symbol("+"):
                left = ast.BinOp("+", left, self._parse_multiplicative())
            elif self.accept_symbol("-"):
                left = ast.BinOp("-", left, self._parse_multiplicative())
            elif self.accept_symbol("||"):
                left = ast.BinOp("||", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            if self.accept_symbol("*"):
                left = ast.BinOp("*", left, self._parse_unary())
            elif self.accept_symbol("/"):
                left = ast.BinOp("/", left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        if self.accept_symbol("-"):
            operand = self._parse_unary()
            if isinstance(operand, ast.Literal) and isinstance(operand.value, (int, float)):
                return ast.Literal(-operand.value)
            return ast.UnaryOp("-", operand)
        if self.accept_symbol("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "number":
            self.advance()
            return ast.Literal(token.value)
        if token.kind == "string":
            self.advance()
            return ast.Literal(token.value)
        if token.kind == "blob":
            self.advance()
            return ast.Literal(token.value)
        if token.kind == "param":
            self.advance()
            return ast.Param(token.text)
        if token.is_keyword("true"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("false"):
            self.advance()
            return ast.Literal(False)
        if token.is_keyword("null"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("date"):
            return self._parse_date_literal()
        if token.is_keyword("interval"):
            return self._parse_interval_literal()
        if token.is_keyword("case"):
            return self._parse_case()
        if token.is_keyword("exists"):
            self.advance()
            self.expect_symbol("(")
            query = self.parse_select()
            self.expect_symbol(")")
            return ast.Exists(query)
        if token.is_keyword("extract"):
            return self._parse_extract()
        if token.is_keyword("substring"):
            return self._parse_substring()
        if token.is_keyword("cast"):
            return self._parse_cast()
        if token.is_symbol("("):
            self.advance()
            if self.current.is_keyword("select"):
                query = self.parse_select()
                self.expect_symbol(")")
                return ast.ScalarSubquery(query)
            expr = self.parse_expr()
            self.expect_symbol(")")
            return expr
        if token.kind == "ident":
            return self._parse_ident_expr()
        raise ParseError(f"unexpected token {token.text!r} in expression")

    def _parse_date_literal(self) -> ast.Expr:
        self.expect_keyword("date")
        token = self.advance()
        if token.kind != "string":
            raise ParseError("DATE expects a quoted string")
        try:
            value = datetime.date.fromisoformat(token.value)
        except ValueError as exc:
            raise ParseError(f"bad date literal {token.value!r}: {exc}")
        return ast.Literal(value)

    def _parse_interval_literal(self) -> ast.Expr:
        self.expect_keyword("interval")
        token = self.advance()
        if token.kind != "string":
            raise ParseError("INTERVAL expects a quoted string")
        try:
            amount = int(token.value)
        except ValueError:
            raise ParseError(f"bad interval amount {token.value!r}")
        unit_token = self.advance()
        unit = unit_token.text.rstrip("s") if unit_token.kind in ("keyword", "ident") else ""
        if unit not in _INTERVAL_UNITS:
            raise ParseError(f"bad interval unit {unit_token.text!r}")
        return ast.Interval(amount, unit)

    def _parse_case(self) -> ast.Expr:
        self.expect_keyword("case")
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self.accept_keyword("when"):
            cond = self.parse_expr()
            self.expect_keyword("then")
            whens.append((cond, self.parse_expr()))
        if not whens:
            raise ParseError("CASE requires at least one WHEN")
        else_ = self.parse_expr() if self.accept_keyword("else") else None
        self.expect_keyword("end")
        return ast.CaseWhen(tuple(whens), else_)

    def _parse_extract(self) -> ast.Expr:
        self.expect_keyword("extract")
        self.expect_symbol("(")
        field_token = self.advance()
        field = field_token.text
        if field not in _INTERVAL_UNITS:
            raise ParseError(f"EXTRACT field must be year/month/day, got {field!r}")
        self.expect_keyword("from")
        operand = self.parse_expr()
        self.expect_symbol(")")
        return ast.Extract(field, operand)

    def _parse_substring(self) -> ast.Expr:
        self.expect_keyword("substring")
        self.expect_symbol("(")
        operand = self.parse_expr()
        if self.accept_keyword("from"):
            start = self.parse_expr()
        elif self.accept_symbol(","):
            start = self.parse_expr()
        else:
            raise ParseError("SUBSTRING expects FROM or ','")
        length = None
        if self.accept_keyword("for") or self.accept_symbol(","):
            length = self.parse_expr()
        self.expect_symbol(")")
        return ast.Substring(operand, start, length)

    def _parse_cast(self) -> ast.Expr:
        # CAST(expr AS type) — type is currently advisory; we keep the expr.
        self.expect_keyword("cast")
        self.expect_symbol("(")
        expr = self.parse_expr()
        self.expect_keyword("as")
        while not self.current.is_symbol(")"):
            self.advance()
        self.expect_symbol(")")
        return expr

    def _parse_ident_expr(self) -> ast.Expr:
        name = self.advance().text
        if self.accept_symbol("("):
            distinct = self.accept_keyword("distinct")
            if self.accept_symbol("*"):
                self.expect_symbol(")")
                return ast.FuncCall(name, star=True)
            if self.accept_symbol(")"):
                return ast.FuncCall(name)
            args = tuple(self._parse_expr_list())
            self.expect_symbol(")")
            return ast.FuncCall(name, args, distinct=distinct)
        if self.accept_symbol("."):
            column = self.expect_ident()
            return ast.Column(column, table=name)
        return ast.Column(name)
