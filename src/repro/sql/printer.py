"""Render AST nodes back to SQL text, in one of two dialects.

* ``standard`` (default) — plan display (`RemoteSQL` nodes show the exact
  query shipped to the untrusted server, ciphertext constants as hex blobs)
  and round-trip testing of the parser.
* ``sqlite``  — executable SQLite SQL for
  :class:`~repro.server.sqlite.SQLiteBackend`: identifiers are quoted,
  booleans become ``1``/``0``, ciphertext integers too wide for SQLite's
  64-bit INTEGER become order-preserving marker blobs, SEARCH predicates
  (``tagset LIKE trapdoor-bytes``) become ``searchswp(...)`` UDF calls,
  plaintext LIKE routes through the ``like_strict`` UDF (SQLite's native
  LIKE is case-insensitive; ours is not), and ORDER BY gains explicit
  ``NULLS LAST`` / ``NULLS FIRST`` to match the engine's NULL placement.
"""

from __future__ import annotations

import datetime

from repro.sql import ast
from repro.storage.sqlite_codec import encode_sqlite_value, quote_ident

_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "=": 4, "<>": 4, "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5, "||": 5,
    "*": 6, "/": 6,
}

STANDARD = "standard"
SQLITE = "sqlite"


def to_sql(node: ast.Select | ast.Expr, dialect: str = STANDARD) -> str:
    if dialect not in (STANDARD, SQLITE):
        raise ValueError(f"unknown SQL dialect {dialect!r}")
    if isinstance(node, ast.Select):
        return _select_sql(node, dialect)
    if isinstance(node, ast.Insert):
        return _insert_sql(node, dialect)
    if isinstance(node, ast.Update):
        return _update_sql(node, dialect)
    if isinstance(node, ast.Delete):
        return _delete_sql(node, dialect)
    return _expr_sql(node, 0, dialect)


def _insert_sql(s: ast.Insert, d: str) -> str:
    parts = [f"INSERT INTO {_ident(s.table, d)}"]
    if s.columns:
        parts.append("(" + ", ".join(_ident(c, d) for c in s.columns) + ")")
    rows = ", ".join(
        "(" + ", ".join(_expr_sql(e, 0, d) for e in row) + ")"
        for row in s.rows
    )
    parts.append(f"VALUES {rows}")
    return " ".join(parts)


def _update_sql(s: ast.Update, d: str) -> str:
    sets = ", ".join(
        f"{_ident(a.column, d)} = {_expr_sql(a.value, 0, d)}"
        for a in s.assignments
    )
    text = f"UPDATE {_ident(s.table, d)} SET {sets}"
    if s.where is not None:
        text += " WHERE " + _expr_sql(s.where, 0, d)
    return text


def _delete_sql(s: ast.Delete, d: str) -> str:
    text = f"DELETE FROM {_ident(s.table, d)}"
    if s.where is not None:
        text += " WHERE " + _expr_sql(s.where, 0, d)
    return text


def _ident(name: str, dialect: str) -> str:
    if dialect == SQLITE:
        return quote_ident(name)
    return name


def _select_sql(q: ast.Select, d: str) -> str:
    parts = ["SELECT"]
    if q.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_item_sql(i, d) for i in q.items))
    if q.from_items:
        parts.append("FROM " + ", ".join(_tableref_sql(t, d) for t in q.from_items))
    if q.where is not None:
        parts.append("WHERE " + _expr_sql(q.where, 0, d))
    if q.group_by:
        parts.append("GROUP BY " + ", ".join(_expr_sql(g, 0, d) for g in q.group_by))
    if q.having is not None:
        parts.append("HAVING " + _expr_sql(q.having, 0, d))
    if q.order_by:
        rendered = ", ".join(_order_item_sql(o, d) for o in q.order_by)
        parts.append("ORDER BY " + rendered)
    if q.limit is not None:
        parts.append(f"LIMIT {q.limit}")
    return " ".join(parts)


def _order_item_sql(o: ast.OrderItem, d: str) -> str:
    text = _expr_sql(o.expr, 0, d)
    if d == SQLITE:
        # The engine's sort places NULLs last ascending and (by reversal)
        # first descending; SQLite's defaults are the opposite.
        return text + (" NULLS LAST" if o.ascending else " DESC NULLS FIRST")
    return text + ("" if o.ascending else " DESC")


def _item_sql(item: ast.SelectItem, d: str) -> str:
    rendered = _expr_sql(item.expr, 0, d)
    if item.alias:
        return f"{rendered} AS {_ident(item.alias, d)}"
    return rendered


def _tableref_sql(ref: ast.TableRef, d: str) -> str:
    if isinstance(ref, ast.TableName):
        name = _ident(ref.name, d)
        return f"{name} AS {_ident(ref.alias, d)}" if ref.alias else name
    if isinstance(ref, ast.SubqueryRef):
        return f"({_select_sql(ref.query, d)}) AS {_ident(ref.alias, d)}"
    if isinstance(ref, ast.Join):
        keyword = "LEFT JOIN" if ref.kind == "left" else "JOIN"
        text = f"{_tableref_sql(ref.left, d)} {keyword} {_tableref_sql(ref.right, d)}"
        if ref.condition is not None:
            text += " ON " + _expr_sql(ref.condition, 0, d)
        return text
    raise TypeError(f"unknown table ref {ref!r}")


def _column_sql(e: ast.Column, d: str) -> str:
    if d == STANDARD:
        return e.qualified
    name = e.name if e.name == "*" else _ident(e.name, d)
    if e.table is not None:
        return f"{_ident(e.table, d)}.{name}"
    return name


def _expr_sql(e: ast.Expr, parent_prec: int, d: str) -> str:
    if isinstance(e, ast.Literal):
        return _literal_sql(e.value, d)
    if isinstance(e, ast.Interval):
        if d == SQLITE:
            raise TypeError("INTERVAL literals have no SQLite rendering")
        return f"INTERVAL '{e.amount}' {e.unit.upper()}"
    if isinstance(e, ast.Column):
        return _column_sql(e, d)
    if isinstance(e, ast.Param):
        return f":{e.name}"
    if isinstance(e, ast.BinOp):
        prec = _PRECEDENCE.get(e.op, 4)
        if e.op == "/" and d == SQLITE:
            # SQLite divides integers integrally; the engine uses true
            # division (Python /).  Casting the dividend to REAL matches
            # (NULL propagates through CAST).
            text = (
                f"CAST({_expr_sql(e.left, 0, d)} AS REAL) / "
                f"{_expr_sql(e.right, prec + 1, d)}"
            )
            return f"({text})" if prec < parent_prec else text
        op = e.op.upper() if e.op in ("and", "or") else e.op
        # Comparisons are non-associative: parenthesize comparison operands.
        left_prec = prec + 1 if prec == 4 else prec
        text = f"{_expr_sql(e.left, left_prec, d)} {op} {_expr_sql(e.right, prec + 1, d)}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(e, ast.UnaryOp):
        if e.op == "not":
            inner = _expr_sql(e.operand, 3, d)
            return f"NOT {inner}"
        return f"-{_expr_sql(e.operand, 7, d)}"
    if isinstance(e, ast.FuncCall):
        if d == SQLITE and e.name == "in_set":
            # Bound server-side: SQLiteBackend inlines the DET set before
            # printing.  Reaching the printer means the set was never bound.
            raise TypeError("in_set() must be inlined before SQLite printing")
        if e.star:
            return f"{e.name}(*)"
        inner = ", ".join(_expr_sql(a, 0, d) for a in e.args)
        if e.distinct:
            inner = "DISTINCT " + inner
        return f"{e.name}({inner})"
    if isinstance(e, ast.CaseWhen):
        parts = ["CASE"]
        for cond, result in e.whens:
            parts.append(f"WHEN {_expr_sql(cond, 0, d)} THEN {_expr_sql(result, 0, d)}")
        if e.else_ is not None:
            parts.append(f"ELSE {_expr_sql(e.else_, 0, d)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(e, ast.InList):
        items = ", ".join(_expr_sql(i, 0, d) for i in e.items)
        maybe_not = "NOT " if e.negated else ""
        return f"{_expr_sql(e.needle, 5, d)} {maybe_not}IN ({items})"
    if isinstance(e, ast.InSubquery):
        maybe_not = "NOT " if e.negated else ""
        return f"{_expr_sql(e.needle, 5, d)} {maybe_not}IN ({_select_sql(e.query, d)})"
    if isinstance(e, ast.Like):
        return _like_sql(e, d)
    if isinstance(e, ast.Between):
        maybe_not = "NOT " if e.negated else ""
        return (
            f"{_expr_sql(e.needle, 5, d)} {maybe_not}BETWEEN "
            f"{_expr_sql(e.low, 5, d)} AND {_expr_sql(e.high, 5, d)}"
        )
    if isinstance(e, ast.IsNull):
        maybe_not = "NOT " if e.negated else ""
        return f"{_expr_sql(e.operand, 5, d)} IS {maybe_not}NULL"
    if isinstance(e, ast.Extract):
        if d == SQLITE:
            # Dates never reach the untrusted server (they are FFX/OPE
            # integers there), so EXTRACT has no SQLite rendering.
            raise TypeError("EXTRACT has no SQLite rendering")
        return f"EXTRACT({e.field_name.upper()} FROM {_expr_sql(e.operand, 0, d)})"
    if isinstance(e, ast.Substring):
        if d == SQLITE:
            args = [_expr_sql(e.operand, 0, d), _expr_sql(e.start, 0, d)]
            if e.length is not None:
                args.append(_expr_sql(e.length, 0, d))
            return f"substr({', '.join(args)})"
        text = f"SUBSTRING({_expr_sql(e.operand, 0, d)} FROM {_expr_sql(e.start, 0, d)}"
        if e.length is not None:
            text += f" FOR {_expr_sql(e.length, 0, d)}"
        return text + ")"
    if isinstance(e, ast.ScalarSubquery):
        return f"({_select_sql(e.query, d)})"
    if isinstance(e, ast.Exists):
        maybe_not = "NOT " if e.negated else ""
        return f"{maybe_not}EXISTS ({_select_sql(e.query, d)})"
    raise TypeError(f"unknown expression {e!r}")


def _like_sql(e: ast.Like, d: str) -> str:
    if d == SQLITE:
        needle = _expr_sql(e.needle, 0, d)
        pattern = _expr_sql(e.pattern, 0, d)
        pattern_is_bytes = isinstance(e.pattern, ast.Literal) and isinstance(
            e.pattern.value, bytes
        )
        # Searchable encryption: tag-set column LIKE trapdoor bytes becomes
        # the searchswp UDF; plaintext LIKE routes through like_strict so
        # matching stays case-sensitive (SQLite's LIKE is not).
        fn = "searchswp" if pattern_is_bytes else "like_strict"
        text = f"{fn}({needle}, {pattern})"
        return f"NOT {text}" if e.negated else text
    maybe_not = "NOT " if e.negated else ""
    return f"{_expr_sql(e.needle, 5, d)} {maybe_not}LIKE {_expr_sql(e.pattern, 5, d)}"


def _literal_sql(value: object, d: str) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        if d == SQLITE:
            return "1" if value else "0"
        return "TRUE" if value else "FALSE"
    if isinstance(value, int) and d == SQLITE and not -(1 << 63) <= value < (1 << 63):
        # Ciphertext-sized integer: same order-preserving marker blob the
        # backend stores, so comparisons against columns stay consistent.
        return "X'" + encode_sqlite_value(value).hex() + "'"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, bytes):
        return "X'" + value.hex() + "'"
    if isinstance(value, datetime.date):
        if d == SQLITE:
            # Dates never reach the untrusted server (they are FFX/OPE
            # integers there); a date literal in a server query is a
            # planner bug — fail loudly like EXTRACT/INTERVAL do.
            raise TypeError("date literals have no SQLite rendering")
        return f"DATE '{value.isoformat()}'"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, frozenset):
        if d == SQLITE:
            return "X'" + encode_sqlite_value(value).hex() + "'"
        # SEARCH tag sets never appear in printable queries; placeholder only.
        return "X'" + b"".join(sorted(value)).hex() + "'"
    raise TypeError(f"unprintable literal {value!r}")
