"""Render AST nodes back to SQL text.

Used for plan display (`RemoteSQL` nodes show the exact query shipped to the
untrusted server, ciphertext constants as hex blobs) and for round-trip
testing of the parser.
"""

from __future__ import annotations

import datetime

from repro.sql import ast

_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "=": 4, "<>": 4, "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5, "||": 5,
    "*": 6, "/": 6,
}


def to_sql(node: ast.Select | ast.Expr) -> str:
    if isinstance(node, ast.Select):
        return _select_sql(node)
    return _expr_sql(node, 0)


def _select_sql(q: ast.Select) -> str:
    parts = ["SELECT"]
    if q.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_item_sql(i) for i in q.items))
    if q.from_items:
        parts.append("FROM " + ", ".join(_tableref_sql(t) for t in q.from_items))
    if q.where is not None:
        parts.append("WHERE " + _expr_sql(q.where, 0))
    if q.group_by:
        parts.append("GROUP BY " + ", ".join(_expr_sql(g, 0) for g in q.group_by))
    if q.having is not None:
        parts.append("HAVING " + _expr_sql(q.having, 0))
    if q.order_by:
        rendered = ", ".join(
            _expr_sql(o.expr, 0) + ("" if o.ascending else " DESC") for o in q.order_by
        )
        parts.append("ORDER BY " + rendered)
    if q.limit is not None:
        parts.append(f"LIMIT {q.limit}")
    return " ".join(parts)


def _item_sql(item: ast.SelectItem) -> str:
    rendered = _expr_sql(item.expr, 0)
    if item.alias:
        return f"{rendered} AS {item.alias}"
    return rendered


def _tableref_sql(ref: ast.TableRef) -> str:
    if isinstance(ref, ast.TableName):
        return f"{ref.name} AS {ref.alias}" if ref.alias else ref.name
    if isinstance(ref, ast.SubqueryRef):
        return f"({_select_sql(ref.query)}) AS {ref.alias}"
    if isinstance(ref, ast.Join):
        keyword = "LEFT JOIN" if ref.kind == "left" else "JOIN"
        text = f"{_tableref_sql(ref.left)} {keyword} {_tableref_sql(ref.right)}"
        if ref.condition is not None:
            text += " ON " + _expr_sql(ref.condition, 0)
        return text
    raise TypeError(f"unknown table ref {ref!r}")


def _expr_sql(e: ast.Expr, parent_prec: int) -> str:
    if isinstance(e, ast.Literal):
        return _literal_sql(e.value)
    if isinstance(e, ast.Interval):
        return f"INTERVAL '{e.amount}' {e.unit.upper()}"
    if isinstance(e, ast.Column):
        return e.qualified
    if isinstance(e, ast.Param):
        return f":{e.name}"
    if isinstance(e, ast.BinOp):
        prec = _PRECEDENCE.get(e.op, 4)
        op = e.op.upper() if e.op in ("and", "or") else e.op
        # Comparisons are non-associative: parenthesize comparison operands.
        left_prec = prec + 1 if prec == 4 else prec
        text = f"{_expr_sql(e.left, left_prec)} {op} {_expr_sql(e.right, prec + 1)}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(e, ast.UnaryOp):
        if e.op == "not":
            inner = _expr_sql(e.operand, 3)
            return f"NOT {inner}"
        return f"-{_expr_sql(e.operand, 7)}"
    if isinstance(e, ast.FuncCall):
        if e.star:
            return f"{e.name}(*)"
        inner = ", ".join(_expr_sql(a, 0) for a in e.args)
        if e.distinct:
            inner = "DISTINCT " + inner
        return f"{e.name}({inner})"
    if isinstance(e, ast.CaseWhen):
        parts = ["CASE"]
        for cond, result in e.whens:
            parts.append(f"WHEN {_expr_sql(cond, 0)} THEN {_expr_sql(result, 0)}")
        if e.else_ is not None:
            parts.append(f"ELSE {_expr_sql(e.else_, 0)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(e, ast.InList):
        items = ", ".join(_expr_sql(i, 0) for i in e.items)
        maybe_not = "NOT " if e.negated else ""
        return f"{_expr_sql(e.needle, 5)} {maybe_not}IN ({items})"
    if isinstance(e, ast.InSubquery):
        maybe_not = "NOT " if e.negated else ""
        return f"{_expr_sql(e.needle, 5)} {maybe_not}IN ({_select_sql(e.query)})"
    if isinstance(e, ast.Like):
        maybe_not = "NOT " if e.negated else ""
        return f"{_expr_sql(e.needle, 5)} {maybe_not}LIKE {_expr_sql(e.pattern, 5)}"
    if isinstance(e, ast.Between):
        maybe_not = "NOT " if e.negated else ""
        return (
            f"{_expr_sql(e.needle, 5)} {maybe_not}BETWEEN "
            f"{_expr_sql(e.low, 5)} AND {_expr_sql(e.high, 5)}"
        )
    if isinstance(e, ast.IsNull):
        maybe_not = "NOT " if e.negated else ""
        return f"{_expr_sql(e.operand, 5)} IS {maybe_not}NULL"
    if isinstance(e, ast.Extract):
        return f"EXTRACT({e.field_name.upper()} FROM {_expr_sql(e.operand, 0)})"
    if isinstance(e, ast.Substring):
        text = f"SUBSTRING({_expr_sql(e.operand, 0)} FROM {_expr_sql(e.start, 0)}"
        if e.length is not None:
            text += f" FOR {_expr_sql(e.length, 0)}"
        return text + ")"
    if isinstance(e, ast.ScalarSubquery):
        return f"({_select_sql(e.query)})"
    if isinstance(e, ast.Exists):
        maybe_not = "NOT " if e.negated else ""
        return f"{maybe_not}EXISTS ({_select_sql(e.query)})"
    raise TypeError(f"unknown expression {e!r}")


def _literal_sql(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, bytes):
        return "X'" + value.hex() + "'"
    if isinstance(value, datetime.date):
        return f"DATE '{value.isoformat()}'"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, frozenset):
        # SEARCH tag sets never appear in printable queries; placeholder only.
        return "X'" + b"".join(sorted(value)).hex() + "'"
    raise TypeError(f"unprintable literal {value!r}")
