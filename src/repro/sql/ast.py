"""Typed abstract syntax tree for the SQL dialect.

The dialect covers everything TPC-H needs (and everything Algorithm 1 must
rewrite): implicit and explicit joins (including LEFT OUTER), GROUP BY /
HAVING, ORDER BY / LIMIT, scalar / IN / EXISTS / FROM subqueries (correlated
or not), CASE, LIKE, BETWEEN, EXTRACT, SUBSTRING, INTERVAL arithmetic,
aggregates with DISTINCT, and hex blob literals (for encrypted constants in
server-side queries).

Nodes are frozen dataclasses: the MONOMI rewriter builds new trees rather
than mutating, so plans can share subtrees safely.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, replace
from typing import Iterator, Sequence, Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for all expression nodes."""

    def children(self) -> tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of this expression (not into subqueries)."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: int, float, str, bool, date, bytes (hex blob), or None."""

    value: Union[int, float, str, bool, bytes, datetime.date, None]

    def __repr__(self) -> str:  # Compact reprs keep plan dumps readable.
        return f"Lit({self.value!r})"


@dataclass(frozen=True)
class Interval(Expr):
    """An INTERVAL literal, e.g. INTERVAL '3' MONTH."""

    amount: int
    unit: str  # "year" | "month" | "day"


@dataclass(frozen=True)
class Column(Expr):
    """A (possibly qualified) column reference."""

    name: str
    table: str | None = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name

    def __repr__(self) -> str:
        return f"Col({self.qualified})"


@dataclass(frozen=True)
class Param(Expr):
    """A named query parameter, e.g. ``:1`` (bound at execution time)."""

    name: str


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operator: arithmetic, comparison, or boolean connective."""

    op: str  # +, -, *, /, =, <>, <, <=, >, >=, and, or
    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # "not" | "-"
    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class FuncCall(Expr):
    """Function call: scalar functions, aggregates, and server UDFs."""

    name: str  # lower-cased
    args: tuple[Expr, ...] = ()
    distinct: bool = False
    star: bool = False  # COUNT(*)

    def children(self) -> tuple[Expr, ...]:
        return self.args


@dataclass(frozen=True)
class CaseWhen(Expr):
    whens: tuple[tuple[Expr, Expr], ...]
    else_: Expr | None = None

    def children(self) -> tuple[Expr, ...]:
        out: list[Expr] = []
        for cond, result in self.whens:
            out.append(cond)
            out.append(result)
        if self.else_ is not None:
            out.append(self.else_)
        return tuple(out)


@dataclass(frozen=True)
class InList(Expr):
    needle: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.needle, *self.items)


@dataclass(frozen=True)
class Like(Expr):
    needle: Expr
    pattern: Expr  # normally a Literal string
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.needle, self.pattern)


@dataclass(frozen=True)
class Between(Expr):
    needle: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.needle, self.low, self.high)


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class Extract(Expr):
    """EXTRACT(field FROM expr); field is "year" | "month" | "day"."""

    field_name: str
    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class Substring(Expr):
    """SUBSTRING(expr FROM start [FOR length]) — 1-based like SQL."""

    operand: Expr
    start: Expr
    length: Expr | None = None

    def children(self) -> tuple[Expr, ...]:
        if self.length is None:
            return (self.operand, self.start)
        return (self.operand, self.start, self.length)


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    """A subquery used as a scalar value."""

    query: "Select"


@dataclass(frozen=True)
class InSubquery(Expr):
    needle: Expr
    query: "Select"
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.needle,)


@dataclass(frozen=True)
class Exists(Expr):
    query: "Select"
    negated: bool = False


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None = None

    def output_name(self, index: int) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, Column):
            return self.expr.name
        return f"col{index}"


@dataclass(frozen=True)
class TableRef:
    """Base class for items in the FROM clause."""


@dataclass(frozen=True)
class TableName(TableRef):
    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryRef(TableRef):
    query: "Select"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias


@dataclass(frozen=True)
class Join(TableRef):
    """Explicit join. ``kind`` is "inner" | "left"."""

    left: TableRef
    right: TableRef
    kind: str
    condition: Expr | None


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass(frozen=True)
class Select:
    items: tuple[SelectItem, ...]
    from_items: tuple[TableRef, ...] = ()
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False

    def map_expressions(self, fn) -> "Select":
        """Rebuild this Select with ``fn`` applied to every top-level
        expression slot (not recursive into subqueries)."""
        return replace(
            self,
            items=tuple(SelectItem(fn(i.expr), i.alias) for i in self.items),
            where=fn(self.where) if self.where is not None else None,
            group_by=tuple(fn(g) for g in self.group_by),
            having=fn(self.having) if self.having is not None else None,
            order_by=tuple(OrderItem(fn(o.expr), o.ascending) for o in self.order_by),
        )


# ---------------------------------------------------------------------------
# DML statements (PR 10)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Assignment:
    """One ``SET column = expr`` item of an UPDATE."""

    column: str
    value: Expr


@dataclass(frozen=True)
class Insert:
    """``INSERT INTO table [(cols)] VALUES (...), (...)``.

    ``columns`` empty means schema order; every row is a tuple of
    expressions (literals and params after normalization).
    """

    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Expr, ...], ...]

    def map_expressions(self, fn) -> "Insert":
        return replace(
            self,
            rows=tuple(tuple(fn(e) for e in row) for row in self.rows),
        )


@dataclass(frozen=True)
class Update:
    """``UPDATE table SET a = ..., b = ... [WHERE ...]``."""

    table: str
    assignments: tuple[Assignment, ...]
    where: Expr | None = None

    def map_expressions(self, fn) -> "Update":
        return replace(
            self,
            assignments=tuple(
                Assignment(a.column, fn(a.value)) for a in self.assignments
            ),
            where=fn(self.where) if self.where is not None else None,
        )


@dataclass(frozen=True)
class Delete:
    """``DELETE FROM table [WHERE ...]``."""

    table: str
    where: Expr | None = None

    def map_expressions(self, fn) -> "Delete":
        return replace(
            self,
            where=fn(self.where) if self.where is not None else None,
        )


#: Every statement kind the parser can produce (``parse_statement``).
Statement = Union["Select", Insert, Update, Delete]


def is_dml(node: object) -> bool:
    return isinstance(node, (Insert, Update, Delete))


# ---------------------------------------------------------------------------
# Traversal helpers used throughout the planner
# ---------------------------------------------------------------------------

AGGREGATE_FUNCTIONS = frozenset(
    {"sum", "count", "avg", "min", "max", "grp", "paillier_sum", "hom_agg"}
)


def is_aggregate_call(expr: Expr) -> bool:
    return isinstance(expr, FuncCall) and expr.name in AGGREGATE_FUNCTIONS


def contains_aggregate(expr: Expr) -> bool:
    return any(is_aggregate_call(e) for e in expr.walk())


def find_aggregates(expr: Expr) -> list[FuncCall]:
    """All aggregate calls in ``expr``, outermost first, no nesting assumed."""
    found: list[FuncCall] = []

    def visit(node: Expr) -> None:
        if is_aggregate_call(node):
            found.append(node)  # Aggregates cannot nest; stop descending.
            return
        for child in node.children():
            visit(child)

    visit(expr)
    return found


def find_columns(expr: Expr) -> list[Column]:
    return [e for e in expr.walk() if isinstance(e, Column)]


def find_subqueries(expr: Expr) -> list[Select]:
    """Immediate subqueries appearing anywhere inside ``expr``."""
    found: list[Select] = []

    def visit(node: Expr) -> None:
        if isinstance(node, ScalarSubquery):
            found.append(node.query)
        elif isinstance(node, InSubquery):
            found.append(node.query)
        elif isinstance(node, Exists):
            found.append(node.query)
        for child in node.children():
            visit(child)

    visit(expr)
    return found


def conjuncts(expr: Expr | None) -> list[Expr]:
    """Split a boolean expression into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinOp) and expr.op == "and":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def conjoin(parts: Sequence[Expr]) -> Expr | None:
    """Reassemble conjuncts into a single AND tree (None when empty)."""
    result: Expr | None = None
    for part in parts:
        result = part if result is None else BinOp("and", result, part)
    return result


def transform(expr: Expr, fn) -> Expr:
    """Bottom-up rewrite: ``fn`` is applied to each node after its children.

    ``fn`` returns either a replacement node or the node it was given.
    Subqueries are not entered; the planner handles them explicitly.
    """
    rebuilt = _rebuild_children(expr, lambda child: transform(child, fn))
    return fn(rebuilt)


def _rebuild_children(expr: Expr, fn) -> Expr:
    if isinstance(expr, BinOp):
        return BinOp(expr.op, fn(expr.left), fn(expr.right))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, fn(expr.operand))
    if isinstance(expr, FuncCall):
        return FuncCall(expr.name, tuple(fn(a) for a in expr.args), expr.distinct, expr.star)
    if isinstance(expr, CaseWhen):
        whens = tuple((fn(c), fn(r)) for c, r in expr.whens)
        return CaseWhen(whens, fn(expr.else_) if expr.else_ is not None else None)
    if isinstance(expr, InList):
        return InList(fn(expr.needle), tuple(fn(i) for i in expr.items), expr.negated)
    if isinstance(expr, Like):
        return Like(fn(expr.needle), fn(expr.pattern), expr.negated)
    if isinstance(expr, Between):
        return Between(fn(expr.needle), fn(expr.low), fn(expr.high), expr.negated)
    if isinstance(expr, IsNull):
        return IsNull(fn(expr.operand), expr.negated)
    if isinstance(expr, Extract):
        return Extract(expr.field_name, fn(expr.operand))
    if isinstance(expr, Substring):
        length = fn(expr.length) if expr.length is not None else None
        return Substring(fn(expr.operand), fn(expr.start), length)
    if isinstance(expr, InSubquery):
        return InSubquery(fn(expr.needle), expr.query, expr.negated)
    return expr


def table_occurrences(query: Select):
    """Yield every base-table name a query tree references, once per
    occurrence (FROM items, joins, FROM-subqueries, and expression
    subqueries — including inside join ON conditions).

    This is the unit of *static* scan accounting: the engine and every
    server backend charge one table heap read per occurrence, so cost
    ledgers are backend-independent by construction.
    """

    def from_ref(ref: TableRef):
        if isinstance(ref, TableName):
            yield ref.name
        elif isinstance(ref, SubqueryRef):
            yield from table_occurrences(ref.query)
        elif isinstance(ref, Join):
            yield from from_ref(ref.left)
            yield from from_ref(ref.right)
            if ref.condition is not None:
                for sub in find_subqueries(ref.condition):
                    yield from table_occurrences(sub)

    for ref in query.from_items:
        yield from from_ref(ref)
    exprs: list[Expr] = [item.expr for item in query.items]
    exprs.extend(query.group_by)
    exprs.extend(o.expr for o in query.order_by)
    if query.where is not None:
        exprs.append(query.where)
    if query.having is not None:
        exprs.append(query.having)
    for expr in exprs:
        for sub in find_subqueries(expr):
            yield from table_occurrences(sub)
