"""SQL frontend: lexer, parser, AST, and printer."""

from repro.sql import ast
from repro.sql.parser import parse, parse_expression, parse_statement
from repro.sql.printer import to_sql

__all__ = ["ast", "parse", "parse_expression", "parse_statement", "to_sql"]
