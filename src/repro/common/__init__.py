"""Shared utilities: errors, cost ledger, and configuration."""

from repro.common.errors import (
    CatalogError,
    CryptoError,
    DesignError,
    DomainError,
    EngineError,
    ExecutionError,
    InfeasibleDesignError,
    LexError,
    ParseError,
    PlanningError,
    ReproError,
    SQLError,
    UnsupportedQueryError,
)
from repro.common.ledger import CostLedger, DiskModel, NetworkModel

__all__ = [
    "CatalogError",
    "CostLedger",
    "CryptoError",
    "DesignError",
    "DiskModel",
    "DomainError",
    "EngineError",
    "ExecutionError",
    "InfeasibleDesignError",
    "LexError",
    "NetworkModel",
    "ParseError",
    "PlanningError",
    "ReproError",
    "SQLError",
    "UnsupportedQueryError",
]
