"""Cost ledger: the unit of accounting for split query execution.

The paper evaluates MONOMI on two physical machines joined by a throttled
10 Mbit/s link (§8.1) and reports *normalized* runtimes.  This reproduction
runs everything in one process, so instead of wall-clock totals we keep a
ledger separating the three components of the paper's cost model (§6.4):

* ``server_seconds``   — measured CPU time spent inside the untrusted engine,
  plus modeled disk-read time for the bytes scanned,
* ``transfer_bytes``   — exact intermediate-result bytes that would cross the
  client/server link, converted to seconds by a bandwidth model,
* ``client_seconds``   — measured CPU time spent decrypting and running local
  plan operators on the trusted client.

``total_seconds`` is their sum and is the quantity every benchmark reports,
mirroring how Figure 4's slowdowns are computed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class NetworkModel:
    """Deterministic stand-in for the paper's throttled WAN link.

    The paper throttles to 10 Mbit/s with ``tc`` and compresses traffic with
    ``ssh -C``.  We model compression as a constant factor on ciphertext
    bytes (ciphertexts are incompressible, but result framing is not).
    """

    bandwidth_bits_per_sec: float = 10_000_000.0
    latency_seconds: float = 0.02
    compression_ratio: float = 1.0

    def transfer_seconds(self, num_bytes: int, round_trips: int = 1) -> float:
        """Seconds to move ``num_bytes`` across the link."""
        wire_bytes = num_bytes * self.compression_ratio
        return self.latency_seconds * round_trips + (wire_bytes * 8.0) / self.bandwidth_bits_per_sec


@dataclass
class DiskModel:
    """Sequential-read disk model for the server's table scans.

    The paper's server has six 7,200 RPM disks in RAID 5 and flushes caches
    before each query, so scans are I/O bound; larger ciphertexts directly
    slow queries down (§5.2).  We charge scanned bytes at a configurable
    sequential throughput.
    """

    read_bytes_per_sec: float = 300_000_000.0

    def read_seconds(self, num_bytes: int) -> float:
        return num_bytes / self.read_bytes_per_sec


@dataclass
class CostLedger:
    """Accumulates the three cost components of one query execution."""

    server_seconds: float = 0.0
    client_seconds: float = 0.0
    transfer_bytes: int = 0
    transfer_seconds: float = 0.0
    server_bytes_scanned: int = 0
    round_trips: int = 0
    notes: list[str] = field(default_factory=list)

    # -- retry accounting ----------------------------------------------------
    #
    # The resilience contract: under any fault schedule, the *primary*
    # totals above are byte-identical to a fault-free run — retried or
    # abandoned work never leaks into them.  It is accounted here
    # instead: ``retries`` counts retry attempts anywhere in the stack,
    # and ``retry_bytes`` the scan/transfer bytes of abandoned attempts
    # plus re-pulled rows skipped while resuming a truncated stream.
    retries: int = 0
    retry_bytes: int = 0

    @property
    def total_seconds(self) -> float:
        return self.server_seconds + self.client_seconds + self.transfer_seconds

    def add_transfer(self, num_bytes: int, network: NetworkModel) -> None:
        self.transfer_bytes += num_bytes
        self.round_trips += 1
        self.transfer_seconds += network.transfer_seconds(num_bytes)

    # -- streaming transfer accounting --------------------------------------
    #
    # A streamed result charges the same bytes as a materialized one, just
    # incrementally: one begin_round_trip (the link latency) plus one
    # add_block_transfer per result header / RowBlock payload.  Byte totals
    # are identical to add_transfer by construction; seconds differ only by
    # float summation order.

    def begin_round_trip(self, network: NetworkModel) -> None:
        """Open one client↔server round trip: charge its latency once."""
        self.round_trips += 1
        self.transfer_seconds += network.latency_seconds

    def add_block_transfer(self, num_bytes: int, network: NetworkModel) -> None:
        """Charge one block's wire bytes at bandwidth cost (no latency)."""
        self.transfer_bytes += num_bytes
        self.transfer_seconds += network.transfer_seconds(num_bytes, round_trips=0)

    def merge(self, other: "CostLedger") -> None:
        self.server_seconds += other.server_seconds
        self.client_seconds += other.client_seconds
        self.transfer_bytes += other.transfer_bytes
        self.transfer_seconds += other.transfer_seconds
        self.server_bytes_scanned += other.server_bytes_scanned
        self.round_trips += other.round_trips
        self.notes.extend(other.notes)
        self.retries += other.retries
        self.retry_bytes += other.retry_bytes

    @contextmanager
    def timing_server(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.server_seconds += time.perf_counter() - start

    @contextmanager
    def timing_client(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.client_seconds += time.perf_counter() - start

    def summary(self) -> str:
        text = (
            f"total={self.total_seconds:.4f}s "
            f"(server={self.server_seconds:.4f}s, "
            f"net={self.transfer_seconds:.4f}s/{self.transfer_bytes}B, "
            f"client={self.client_seconds:.4f}s)"
        )
        if self.retries:
            text += f" [retries={self.retries}, retry_bytes={self.retry_bytes}]"
        return text
