"""Shared multicore plumbing: worker-count policy and a resilient pool.

Everything in this reproduction that fans work out across cores — batch
crypto in :class:`~repro.core.encdata.CryptoProvider`, partition-parallel
scans in the server backends — goes through this module, so the policy
questions are answered exactly once:

* **How many workers?**  An explicit ``workers=N`` wins; ``workers=None``
  consults the ``MONOMI_WORKERS`` environment variable and defaults to 1
  (serial).  ``0`` means "one per core".  Anything unparseable raises
  :class:`~repro.common.errors.ConfigError` instead of silently running
  serial — a misconfigured deployment should fail loudly, not slowly.
* **What if processes are unavailable?**  Sandboxes without working
  semaphores (or fork) exist; :class:`WorkerPool` degrades to in-process
  execution on pool-creation failure and remembers the decision, so the
  parallel and serial code paths stay byte-identical by construction
  (the same worker functions run either way).
* **What if workers crash later?**  A worker killed mid-batch
  (``BrokenProcessPool``) finishes the in-flight call serially, then the
  pool **respawns** on its next use — a one-off crash (OOM kill, signal)
  does not cost parallelism forever.  A circuit breaker bounds the
  optimism: after ``max_respawns`` consecutive breaks without an
  intervening healthy call, the pool falls back to serial permanently.
  Every health transition is counted (:meth:`WorkerPool.stats`) and the
  first serial fallback is logged once at WARNING — a degraded pool is
  visible, never silent.
* **How is work split?**  :func:`shard_spans` cuts ``n`` items into at
  most ``parts`` contiguous, near-equal spans.  Contiguity is what makes
  ordered re-merge trivial: concatenating span results in span order
  reproduces the serial output order exactly.
"""

from __future__ import annotations

import logging
import os
import queue as queue_mod
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.common.errors import ConfigError

WORKERS_ENV = "MONOMI_WORKERS"
PARTITIONS_ENV = "MONOMI_PARTITIONS"

logger = logging.getLogger("repro.parallel")


def _parse_count(raw: str, env_name: str) -> int:
    try:
        count = int(raw)
    except ValueError:
        raise ConfigError(
            f"{env_name} must be an integer (0 = one per core), got {raw!r}"
        ) from None
    if count < 0:
        raise ConfigError(f"{env_name} must be >= 0, got {count}")
    return count if count > 0 else (os.cpu_count() or 1)


def resolve_workers(workers: int | None, env_name: str = WORKERS_ENV) -> int:
    """Resolve a worker count: explicit value > env var > serial.

    ``0`` (explicit or via env) means one worker per CPU core.  Negative
    or unparseable values raise :class:`ConfigError`.
    """
    if workers is None:
        raw = os.environ.get(env_name)
        if raw is None:
            return 1
        return _parse_count(raw, env_name)
    if workers < 0:
        raise ConfigError(f"workers must be >= 0, got {workers}")
    return workers if workers > 0 else (os.cpu_count() or 1)


def shard_spans(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into at most ``parts`` contiguous spans.

    Spans are near-equal (sizes differ by at most one) and returned in
    order, so concatenating per-span results preserves the serial order.
    Empty spans are never produced; fewer than ``parts`` spans come back
    when ``total < parts``.
    """
    if parts < 1:
        raise ConfigError(f"partition count must be >= 1, got {parts}")
    parts = min(parts, total)
    if parts <= 0:
        return []
    base, extra = divmod(total, parts)
    spans: list[tuple[int, int]] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        spans.append((start, start + size))
        start += size
    return spans


@dataclass(frozen=True)
class PoolStats:
    """Point-in-time health counters for one :class:`WorkerPool`.

    ``spawn_failures`` — pool-creation attempts that failed (no
    semaphores / fork blocked); ``breaks`` — live pools whose workers
    died mid-call (``BrokenProcessPool``); ``respawns`` — executors
    recreated after a break; ``serial_tasks`` — payloads that ran
    in-process because no healthy pool was available (includes the
    serial halves of broken calls); ``circuit_open`` — the breaker
    tripped, the pool is permanently serial.
    """

    workers: int
    parallel: bool
    spawn_failures: int
    breaks: int
    respawns: int
    serial_tasks: int
    circuit_open: bool


class WorkerPool:
    """A lazily created process pool with respawn and a serial fallback.

    The pool spins up on first use and persists for the owner's lifetime
    (worker initialization — key derivation, cipher setup — is paid once
    per process, not per batch).  Failure handling is layered:

    * **Creation failure** (no semaphores, fork blocked): environmental
      and permanent — the pool opens its circuit immediately and every
      call runs the same worker function in-process.
    * **Worker crash mid-call** (``BrokenProcessPool``): the in-flight
      call finishes serially — correctness first — then the executor is
      recreated on the next use.  After ``max_respawns`` consecutive
      breaks with no healthy call in between, the circuit opens and the
      pool stays serial (a crash loop is not worth chasing).

    Either way callers never need a second code path, and the first
    fallback is logged once at WARNING with the pool's counters.
    """

    def __init__(
        self,
        workers: int,
        initializer: Callable | None = None,
        initargs: tuple = (),
        max_respawns: int = 2,
    ) -> None:
        if workers < 1:
            raise ConfigError(f"pool needs at least 1 worker, got {workers}")
        self.workers = workers
        self.max_respawns = max_respawns
        self._initializer = initializer
        self._initargs = initargs
        self._executor: ProcessPoolExecutor | None = None
        self._failed = False
        self._local_initialized = False
        # Concurrent service sessions share one pool: creation must not
        # race two executors into existence (the loser would leak worker
        # processes for the owner's lifetime).
        self._create_lock = threading.Lock()
        # Health counters (mutated under _create_lock where racy).
        self._spawn_failures = 0
        self._breaks = 0
        self._respawns = 0
        self._serial_tasks = 0
        self._consecutive_breaks = 0
        self._respawn_pending = False
        self._warned = False

    @property
    def parallel(self) -> bool:
        """True when calls actually fan out across processes."""
        return self.workers > 1 and not self._failed

    def stats(self) -> PoolStats:
        return PoolStats(
            workers=self.workers,
            parallel=self.parallel,
            spawn_failures=self._spawn_failures,
            breaks=self._breaks,
            respawns=self._respawns,
            serial_tasks=self._serial_tasks,
            circuit_open=self._failed,
        )

    def _warn_once(self, reason: str) -> None:
        if self._warned:
            return
        self._warned = True
        logger.warning(
            "worker pool degraded to in-process execution (%s); "
            "workers=%d spawn_failures=%d breaks=%d respawns=%d",
            reason,
            self.workers,
            self._spawn_failures,
            self._breaks,
            self._respawns,
        )

    def _note_break(self) -> None:
        """Record a mid-call pool break and decide respawn vs circuit-open."""
        with self._create_lock:
            self._breaks += 1
            self._consecutive_breaks += 1
            if self._consecutive_breaks > self.max_respawns:
                self._failed = True
                self._warn_once(
                    f"circuit opened after {self._consecutive_breaks} "
                    "consecutive worker-pool breaks"
                )
            else:
                self._respawn_pending = True
        self.close()

    def _note_healthy(self) -> None:
        """A parallel call completed: the respawned pool earned its keep."""
        if self._consecutive_breaks:
            with self._create_lock:
                self._consecutive_breaks = 0

    def _ensure(self) -> ProcessPoolExecutor | None:
        if self.workers <= 1 or self._failed:
            return None
        if self._executor is None:
            with self._create_lock:
                if self._executor is not None or self._failed:
                    return self._executor
                try:
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.workers,
                        initializer=self._initializer,
                        initargs=self._initargs,
                    )
                except (OSError, ValueError):
                    # No semaphores / no fork: environmental, permanent.
                    self._spawn_failures += 1
                    self._failed = True
                    self._warn_once("process pool creation failed")
                    return None
                if self._respawn_pending:
                    self._respawn_pending = False
                    self._respawns += 1
        return self._executor

    def _ensure_local_init(self) -> None:
        if self._initializer is not None and not self._local_initialized:
            self._initializer(*self._initargs)
            self._local_initialized = True

    def _run_local(self, fn: Callable, payloads: Sequence) -> list:
        self._ensure_local_init()
        self._serial_tasks += len(payloads)
        return [fn(payload) for payload in payloads]

    def map_ordered(self, fn: Callable, payloads: Sequence) -> list:
        """Run ``fn`` over ``payloads``, results in submission order.

        Falls back to in-process execution when the pool is serial or
        broke at creation; a worker crash (``BrokenProcessPool``) retries
        the call serially, then the pool respawns on its next use (until
        the circuit breaker opens) — correctness over parallelism.
        Exceptions *raised by the task function* are not pool failures:
        they propagate unchanged and leave the pool healthy.
        """
        executor = self._ensure()
        if executor is None:
            return self._run_local(fn, payloads)
        try:
            results = list(executor.map(fn, payloads))
        except (OSError, BrokenProcessPool):
            # OSError: worker processes spawn lazily on first submit, so a
            # sandbox that allows semaphores but blocks process creation
            # fails here, not in _ensure.  Task functions in this codebase
            # do no file/socket IO, so an OSError is pool machinery.
            self._note_break()
            return self._run_local(fn, payloads)
        self._note_healthy()
        return results

    def imap_ordered(self, fn: Callable, payloads: Sequence):
        """Like :meth:`map_ordered`, but yields results as they arrive.

        Submission order is preserved; with a live pool, result *i* is
        yielded as soon as workers finish it (later results buffer
        pool-side), which lets the consumer start merging the first
        partition while the rest still compute.  The serial fallback
        computes each result on demand, and — same guarantee as
        :meth:`map_ordered` — a pool that breaks mid-iteration finishes
        the remaining payloads in-process instead of raising, then
        respawns on its next use.
        """
        executor = self._ensure()
        if executor is None:

            def serial():
                self._ensure_local_init()
                for payload in payloads:
                    self._serial_tasks += 1
                    yield fn(payload)

            return serial()

        def live():
            results = executor.map(fn, payloads)
            index = 0
            while True:
                try:
                    result = next(results)
                except StopIteration:
                    self._note_healthy()
                    return
                except (OSError, BrokenProcessPool):
                    # Workers died (or never spawned) mid-stream: finish
                    # serially from the first result we have not yielded
                    # yet.  Task-raised exceptions (our tasks do no IO)
                    # are not caught here — they propagate.
                    self._note_break()
                    self._ensure_local_init()
                    for payload in payloads[index:]:
                        self._serial_tasks += 1
                        yield fn(payload)
                    return
                index += 1
                yield result

        return live()

    def close(self) -> None:
        """Shut the pool down; it re-creates lazily if used again."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


def queue_put_bounded(
    out: queue_mod.Queue, item: object, stop: threading.Event
) -> bool:
    """Bounded queue put that gives up once ``stop`` is set.

    The producer half of every bounded pipeline in this codebase (the
    plan executor's prefetch queue, the SQLite partition merge): block on
    a full queue, but poll the stop flag so a consumer that closed early
    never strands the producer.  Returns False when it gave up.
    """
    while not stop.is_set():
        try:
            out.put(item, timeout=0.05)
            return True
        except queue_mod.Full:
            continue
    return False
