"""Shared multicore plumbing: worker-count policy and a resilient pool.

Everything in this reproduction that fans work out across cores — batch
crypto in :class:`~repro.core.encdata.CryptoProvider`, partition-parallel
scans in the server backends — goes through this module, so the policy
questions are answered exactly once:

* **How many workers?**  An explicit ``workers=N`` wins; ``workers=None``
  consults the ``MONOMI_WORKERS`` environment variable and defaults to 1
  (serial).  ``0`` means "one per core".  Anything unparseable raises
  :class:`~repro.common.errors.ConfigError` instead of silently running
  serial — a misconfigured deployment should fail loudly, not slowly.
* **What if processes are unavailable?**  Sandboxes without working
  semaphores (or fork) exist; :class:`WorkerPool` degrades to in-process
  execution on pool-creation failure and remembers the decision, so the
  parallel and serial code paths stay byte-identical by construction
  (the same worker functions run either way).
* **How is work split?**  :func:`shard_spans` cuts ``n`` items into at
  most ``parts`` contiguous, near-equal spans.  Contiguity is what makes
  ordered re-merge trivial: concatenating span results in span order
  reproduces the serial output order exactly.
"""

from __future__ import annotations

import os
import queue as queue_mod
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

from repro.common.errors import ConfigError

WORKERS_ENV = "MONOMI_WORKERS"
PARTITIONS_ENV = "MONOMI_PARTITIONS"


def _parse_count(raw: str, env_name: str) -> int:
    try:
        count = int(raw)
    except ValueError:
        raise ConfigError(
            f"{env_name} must be an integer (0 = one per core), got {raw!r}"
        ) from None
    if count < 0:
        raise ConfigError(f"{env_name} must be >= 0, got {count}")
    return count if count > 0 else (os.cpu_count() or 1)


def resolve_workers(workers: int | None, env_name: str = WORKERS_ENV) -> int:
    """Resolve a worker count: explicit value > env var > serial.

    ``0`` (explicit or via env) means one worker per CPU core.  Negative
    or unparseable values raise :class:`ConfigError`.
    """
    if workers is None:
        raw = os.environ.get(env_name)
        if raw is None:
            return 1
        return _parse_count(raw, env_name)
    if workers < 0:
        raise ConfigError(f"workers must be >= 0, got {workers}")
    return workers if workers > 0 else (os.cpu_count() or 1)


def shard_spans(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into at most ``parts`` contiguous spans.

    Spans are near-equal (sizes differ by at most one) and returned in
    order, so concatenating per-span results preserves the serial order.
    Empty spans are never produced; fewer than ``parts`` spans come back
    when ``total < parts``.
    """
    if parts < 1:
        raise ConfigError(f"partition count must be >= 1, got {parts}")
    parts = min(parts, total)
    if parts <= 0:
        return []
    base, extra = divmod(total, parts)
    spans: list[tuple[int, int]] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        spans.append((start, start + size))
        start += size
    return spans


class WorkerPool:
    """A lazily created process pool with a guaranteed serial fallback.

    The pool spins up on first use and persists for the owner's lifetime
    (worker initialization — key derivation, cipher setup — is paid once
    per process, not per batch).  If process creation fails the pool marks
    itself unavailable and :meth:`map_ordered` runs the same function
    in-process, so callers never need a second code path.
    """

    def __init__(
        self,
        workers: int,
        initializer: Callable | None = None,
        initargs: tuple = (),
    ) -> None:
        if workers < 1:
            raise ConfigError(f"pool needs at least 1 worker, got {workers}")
        self.workers = workers
        self._initializer = initializer
        self._initargs = initargs
        self._executor: ProcessPoolExecutor | None = None
        self._failed = False
        self._local_initialized = False
        # Concurrent service sessions share one pool: creation must not
        # race two executors into existence (the loser would leak worker
        # processes for the owner's lifetime).
        self._create_lock = threading.Lock()

    @property
    def parallel(self) -> bool:
        """True when calls actually fan out across processes."""
        return self.workers > 1 and not self._failed

    def _ensure(self) -> ProcessPoolExecutor | None:
        if self.workers <= 1 or self._failed:
            return None
        if self._executor is None:
            with self._create_lock:
                if self._executor is not None or self._failed:
                    return self._executor
                try:
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.workers,
                        initializer=self._initializer,
                        initargs=self._initargs,
                    )
                except (OSError, ValueError):
                    # No semaphores / no fork: remember, degrade to serial.
                    self._failed = True
                    return None
        return self._executor

    def _ensure_local_init(self) -> None:
        if self._initializer is not None and not self._local_initialized:
            self._initializer(*self._initargs)
            self._local_initialized = True

    def _run_local(self, fn: Callable, payloads: Sequence) -> list:
        self._ensure_local_init()
        return [fn(payload) for payload in payloads]

    def map_ordered(self, fn: Callable, payloads: Sequence) -> list:
        """Run ``fn`` over ``payloads``, results in submission order.

        Falls back to in-process execution when the pool is serial or
        broke at creation; a worker crash (``BrokenProcessPool``) also
        retries serially once, marking the pool unavailable for later
        calls — correctness over parallelism.  Exceptions *raised by the
        task function* are not pool failures: they propagate unchanged
        and leave the pool healthy.
        """
        executor = self._ensure()
        if executor is None:
            return self._run_local(fn, payloads)
        try:
            return list(executor.map(fn, payloads))
        except (OSError, BrokenProcessPool):
            # OSError: worker processes spawn lazily on first submit, so a
            # sandbox that allows semaphores but blocks process creation
            # fails here, not in _ensure.  Task functions in this codebase
            # do no file/socket IO, so an OSError is pool machinery.
            self._failed = True
            self.close()
            return self._run_local(fn, payloads)

    def imap_ordered(self, fn: Callable, payloads: Sequence):
        """Like :meth:`map_ordered`, but yields results as they arrive.

        Submission order is preserved; with a live pool, result *i* is
        yielded as soon as workers finish it (later results buffer
        pool-side), which lets the consumer start merging the first
        partition while the rest still compute.  The serial fallback
        computes each result on demand, and — same guarantee as
        :meth:`map_ordered` — a pool that breaks mid-iteration finishes
        the remaining payloads in-process instead of raising.
        """
        executor = self._ensure()
        if executor is None:

            def serial():
                self._ensure_local_init()
                for payload in payloads:
                    yield fn(payload)

            return serial()

        def live():
            results = executor.map(fn, payloads)
            index = 0
            while True:
                try:
                    result = next(results)
                except StopIteration:
                    return
                except (OSError, BrokenProcessPool):
                    # Workers died (or never spawned) mid-stream: finish
                    # serially from the first result we have not yielded
                    # yet.  Task-raised exceptions (our tasks do no IO)
                    # are not caught here — they propagate.
                    self._failed = True
                    self.close()
                    self._ensure_local_init()
                    for payload in payloads[index:]:
                        yield fn(payload)
                    return
                index += 1
                yield result

        return live()

    def close(self) -> None:
        """Shut the pool down; it re-creates lazily if used again."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


def queue_put_bounded(
    out: queue_mod.Queue, item: object, stop: threading.Event
) -> bool:
    """Bounded queue put that gives up once ``stop`` is set.

    The producer half of every bounded pipeline in this codebase (the
    plan executor's prefetch queue, the SQLite partition merge): block on
    a full queue, but poll the stop flag so a consumer that closed early
    never strands the producer.  Returns False when it gave up.
    """
    while not stop.is_set():
        try:
            out.put(item, timeout=0.05)
            return True
        except queue_mod.Full:
            continue
    return False
