"""Retries and deadlines: the resilience layer's two shared primitives.

Every component that crosses the client/server failure boundary — the
SQLite backend's statement execution, the plan executor's block streams,
the loader's bulk inserts, the service's query dispatch — retries
*transient* errors through :func:`retry_call` under one
:class:`RetryPolicy`, so backoff shape and attempt caps are decided
exactly once.  The taxonomy is the one in :mod:`repro.common.errors`:
only :class:`~repro.common.errors.TransientError` subclasses are retried;
everything else is fatal and propagates on the first attempt.

:class:`Deadline` is the cancellation half: a monotonic-clock expiry
created at query entry (``execute(timeout=...)``) and threaded through
planner → executor → backend → prefetch producer, checked at block
boundaries so producer threads and partition workers shut down cleanly
instead of running to completion for a caller that stopped listening.
Backoff sleeps are capped by the deadline's remaining time, so a retrying
query can never sleep past its own expiry.

Determinism: backoff jitter draws from a caller-supplied
``random.Random`` (the chaos harness seeds it), never from global
process randomness — a fault schedule plus a seed reproduces the exact
same retry timing.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.common.errors import (
    ConfigError,
    DeadlineExceededError,
    TransientError,
)

T = TypeVar("T")


class Deadline:
    """A monotonic-clock expiry for one query execution.

    Cheap to check (one ``perf_counter`` read), safe to share across the
    threads cooperating on a query: the prefetch producer, partition
    workers, and the consuming client all poll the same instance.
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float) -> None:
        self.expires_at = expires_at

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        if seconds <= 0:
            raise ConfigError(f"timeout must be > 0 seconds, got {seconds}")
        return cls(time.monotonic() + seconds)

    def remaining(self) -> float:
        """Seconds until expiry (negative once past it)."""
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, what: str = "query") -> None:
        """Raise :class:`DeadlineExceededError` once the deadline passed."""
        remaining = self.remaining()
        if remaining <= 0.0:
            raise DeadlineExceededError(
                f"{what} exceeded its deadline by {-remaining:.3f}s"
            )


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with proportional jitter.

    Delay before retry *k* (1-based) is
    ``min(max_delay, base_delay * multiplier**(k-1))`` scaled by a
    jitter factor uniform in ``[1 - jitter/2, 1 + jitter/2]``.  The
    defaults keep total worst-case sleep under ~1 s across all attempts
    — transient faults in this stack (lock contention, injected chaos)
    clear in milliseconds, and tests exercise the full attempt budget.
    """

    max_attempts: int = 5
    base_delay: float = 0.004
    max_delay: float = 0.25
    multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigError("retry delays must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ConfigError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        raw = min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )
        if rng is None or self.jitter == 0:
            return raw
        return raw * (1 - self.jitter / 2 + self.jitter * rng.random())


#: One retry disabled everywhere: handy for tests and overhead benches.
NO_RETRY = RetryPolicy(max_attempts=1)


def is_transient(exc: BaseException) -> bool:
    """The taxonomy rule: only :class:`TransientError` subclasses retry."""
    return isinstance(exc, TransientError)


def retry_call(
    fn: Callable[[], T],
    policy: RetryPolicy,
    deadline: Deadline | None = None,
    rng: random.Random | None = None,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Call ``fn`` with transient-error retries under ``policy``.

    Fatal errors propagate on the first raise.  Transient errors retry
    up to ``policy.max_attempts`` total attempts, sleeping the policy's
    backoff between them (capped by the deadline's remaining time); the
    final transient error re-raises unchanged, so callers always see the
    typed error that actually occurred.  ``on_retry(attempt, exc)`` runs
    before each sleep — the hook every layer uses to count retries.
    """
    attempt = 0
    while True:
        if deadline is not None:
            deadline.check()
        try:
            return fn()
        except TransientError as exc:
            attempt += 1
            if attempt >= policy.max_attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            pause = policy.delay(attempt, rng)
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining <= 0:
                    raise DeadlineExceededError(
                        "deadline expired while retrying transient error"
                    ) from exc
                pause = min(pause, remaining)
            if pause > 0:
                time.sleep(pause)
