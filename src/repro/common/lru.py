"""Bounded LRU cache with amortization counters.

One implementation backs every crypto-side memoization cache: the
provider's DET/OPE value caches (:mod:`repro.core.encdata`) and the OPE
pivot caches (:mod:`repro.crypto.ope`).  It is deliberately lock-free —
see :class:`LRUCache` — which is also why its counters are *advisory*:
they can undercount slightly under thread contention, but they never
affect results, only the ``cache_stats()`` reporting that benchmarks use
to explain amortization (mirroring the service layer's exact
``PlanCacheStats``, which sits behind a real lock because a plan-cache
miss is expensive enough to pay for one).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.common.errors import CryptoError


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time cache counters (advisory under concurrency)."""

    hits: int
    misses: int
    evictions: int
    entries: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """Minimal bounded LRU used for the DET/OPE memoization caches.

    Lock-free but thread-tolerant: every operation is a single atomic
    dict/OrderedDict call under the GIL, and the two places a concurrent
    eviction can invalidate a key between calls (``move_to_end`` after a
    hit, ``popitem`` after an insert) tolerate the ``KeyError`` instead of
    locking the hot path.  Recency order may be slightly stale under
    contention; cached *values* are deterministic encryptions, so a racy
    double-compute returns the identical ciphertext either way — exactly
    the property the concurrent service layer relies on.  The hit/miss/
    eviction counters are plain int increments and share that tolerance:
    approximate under contention, never wrong by more than the race width.
    """

    __slots__ = ("_data", "_capacity", "hits", "misses", "evictions")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise CryptoError(f"cache capacity must be positive, got {capacity}")
        self._data: OrderedDict = OrderedDict()
        self._capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: object) -> object | None:
        data = self._data
        value = data.get(key)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        try:
            data.move_to_end(key)
        except KeyError:  # Evicted by a concurrent put.
            pass
        return value

    def put(self, key: object, value: object) -> None:
        data = self._data
        data[key] = value
        try:
            data.move_to_end(key)
        except KeyError:  # Evicted by a concurrent put.
            pass
        while len(data) > self._capacity:
            try:
                data.popitem(last=False)
                self.evictions += 1
            except KeyError:  # Another thread already evicted.
                break

    def clear(self) -> None:
        """Drop entries (counters survive — they describe lifetime traffic)."""
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    @property
    def capacity(self) -> int:
        return self._capacity

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            entries=len(self._data),
            capacity=self._capacity,
        )
