"""Exception hierarchy for the MONOMI reproduction.

Every subsystem raises a subclass of :class:`ReproError` so that callers can
catch library errors without catching programming mistakes (``TypeError`` and
friends propagate untouched).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TransientError(ReproError):
    """A failure that is expected to succeed if the operation is retried.

    The resilience layer's taxonomy root: anything the stack may retry
    (with capped exponential backoff, accounted in the ledger's
    ``retry_bytes``/``retries`` counters) derives from this class.
    Everything else in the :class:`ReproError` hierarchy is *fatal* —
    retrying a planning error or a corrupt ciphertext repeats the
    failure, so those surface to the caller on the first attempt.
    """


class BackendBusyError(TransientError):
    """The server engine is transiently unavailable (SQLITE_BUSY/LOCKED).

    Raised by backends after their own bounded in-engine retries are
    exhausted; the query-level retry layer may still re-run the whole
    statement.
    """


class TruncatedStreamError(TransientError):
    """A result stream ended before delivering its full result.

    In a networked deployment the wire protocol detects this via
    framing; here the fault-injection proxy raises it directly.  The
    plan executor recovers by re-running the (deterministic) server
    query and fast-forwarding past the rows it already delivered.
    """


class InjectedFaultError(TransientError):
    """A fault deliberately injected by the chaos harness.

    Never raised in production configurations; exists so tests can tell
    injected faults from organic ones while exercising the same retry
    paths.
    """


class ConnectionLostError(TransientError):
    """The transport connection to the server died mid-request.

    Raised by the network client when a socket closes, resets, or times
    out idle-side between frames.  Transient: the request is re-sent on a
    fresh connection (deterministic server queries make the replay safe),
    and the stream-resume layer fast-forwards past rows already
    delivered, exactly as it does for :class:`TruncatedStreamError`.
    """


class DeadlineExceededError(ReproError):
    """A query ran past its deadline.  Fatal: deadlines are not retried."""


class LoadJournalError(ReproError):
    """A bulk-load journal cannot be used to resume (corrupt, or written
    for a different design/database than the one being loaded)."""


class ConfigError(ReproError):
    """An execution-layer configuration is contradictory or unusable.

    Raised instead of silently falling back when the caller explicitly
    asked for a mode the stack cannot honor — e.g. partition-parallel
    scans on a backend without native streaming when the root operator
    blocks, partitions combined with ``streaming=False``, or a
    ``MONOMI_WORKERS`` / ``MONOMI_PARTITIONS`` value that does not parse.
    """


class WireError(ReproError):
    """Base class for wire-protocol errors.  Fatal: a peer that violates
    the protocol cannot be negotiated with by retrying."""


class FramingError(WireError):
    """A frame violated the framing layer: bad magic, unknown frame type,
    an oversized length prefix, or bytes left over where a frame boundary
    was required."""


class UnsupportedVersionError(WireError):
    """The peer speaks a protocol version this build does not."""


class CodecError(WireError):
    """A frame payload could not be decoded (truncated value, unknown
    type tag, malformed structure).  The framing was intact — the bytes
    inside it were not."""


class RemoteError(ReproError):
    """A fatal error relayed from the remote server whose concrete type
    this client does not know.  Carries the remote message verbatim."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key, corrupt ciphertext, ...)."""


class DomainError(CryptoError):
    """A plaintext fell outside the domain an encryption scheme supports."""


class SQLError(ReproError):
    """Base class for SQL frontend errors."""


class LexError(SQLError):
    """The lexer met a character sequence it cannot tokenize."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SQLError):
    """The parser met an unexpected token."""


class EngineError(ReproError):
    """Base class for execution engine errors."""


class CatalogError(EngineError):
    """Unknown table/column, duplicate definition, or schema mismatch."""


class ExecutionError(EngineError):
    """A query failed while executing (type error, bad aggregate use, ...)."""


class PlanningError(ReproError):
    """The MONOMI planner could not produce a plan for a query."""


class UnsupportedQueryError(PlanningError):
    """The query uses a construct MONOMI does not support (paper §7).

    Mirrors the paper's documented limitations: views and multi-pattern
    ``LIKE`` (TPC-H queries 13, 15, 16).
    """


class DesignError(ReproError):
    """The designer could not produce a physical design."""


class InfeasibleDesignError(DesignError):
    """No design satisfies the space constraint (requires S >= 1)."""
