"""Prepared statements: plan once, re-encrypt only the parameter literals.

``MonomiService.prepare(sql)`` returns a :class:`PreparedStatement` handle
for a query template carrying ``:name`` parameters.  The first
``execute(handle, params)`` pays for full planning; later executions with
different parameter values reuse the cached plan and merely *re-bind* it:

* **Fast re-bind** — DET and OPE are deterministic encryptions, so the
  ciphertext a parameter's first value produced is reproducible.  When
  every parameter value can be located unambiguously in the planned query
  (see :func:`substitution_safety`), re-binding replaces each old literal
  — plaintext on the residual side, DET/OPE ciphertext on the server side
  — with the newly encrypted value, leaving plan shape, decrypt specs,
  and unit choice untouched.  Only the parameter literals are
  re-encrypted; the designer and planner never re-run.
* **Template re-plan** — when substitution would be ambiguous (a
  parameter value collides with another literal, got constant-folded
  away, feeds a LIKE pattern, or changed Python type) or the new value
  fails to encrypt under a cached scheme (OPE domain), the service falls
  back to :meth:`Planner.plan_with_units
  <repro.core.planner.Planner.plan_with_units>`: Algorithm 1 re-runs
  under the unit subset the first execution already chose, skipping the
  power-set enumeration that dominates planning time.

Either way the cached plan's *choice* is reused; the fallback only exists
so the fast path never has to guess.  Note the one semantic caveat of any
prepared-statement API: the cached plan was costed against the first
execution's literals, so a parameter value with wildly different
selectivity keeps the same split shape even if a fresh optimizer run
would have picked another — correctness is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import CryptoError, DomainError, ExecutionError
from repro.core.encdata import CryptoProvider
from repro.core.plan import ClientRelation, RemoteRelation, SplitPlan, SubPlan
from repro.core.planner import PlannedQuery
from repro.sql import ast


class RebindError(Exception):
    """Fast re-bind is not possible for these parameter values."""


@dataclass(frozen=True)
class PreparedStatement:
    """Opaque handle returned by ``MonomiService.prepare``."""

    statement_id: int
    sql: str
    template: ast.Select
    param_names: tuple[str, ...]


@dataclass
class PreparedPlan:
    """Per-statement cached planning state (anchored, never chained).

    ``planned`` and ``param_values`` are the *first* execution's plan and
    values; every re-bind substitutes from this anchor rather than from
    the previous substitution, so repeated re-binding cannot drift.
    """

    planned: PlannedQuery
    param_values: dict[str, object]
    substitutable: bool


# ---------------------------------------------------------------------------
# Template analysis
# ---------------------------------------------------------------------------


def _iter_query_exprs(query: ast.Select):
    """Every top-level expression slot of ``query`` and its FROM/expr
    subqueries, recursively."""
    collected: list[ast.Expr] = []

    def grab(expr: ast.Expr) -> ast.Expr:
        collected.append(expr)
        return expr

    query.map_expressions(grab)
    for expr in collected:
        yield expr
        for sub in ast.find_subqueries(expr):
            yield from _iter_query_exprs(sub)
    for ref in query.from_items:
        yield from _iter_ref_exprs(ref)


def _iter_ref_exprs(ref: ast.TableRef):
    if isinstance(ref, ast.SubqueryRef):
        yield from _iter_query_exprs(ref.query)
    elif isinstance(ref, ast.Join):
        if ref.condition is not None:
            yield ref.condition
            for sub in ast.find_subqueries(ref.condition):
                yield from _iter_query_exprs(sub)
        yield from _iter_ref_exprs(ref.left)
        yield from _iter_ref_exprs(ref.right)


def _iter_nodes(query: ast.Select):
    """Every expression *node* in the query, recursing into subqueries."""
    for expr in _iter_query_exprs(query):
        yield from expr.walk()


def param_sites(template: ast.Select) -> dict[str, int]:
    """Parameter name → number of syntactic ``:name`` sites."""
    sites: dict[str, int] = {}
    for node in _iter_nodes(template):
        if isinstance(node, ast.Param):
            sites[node.name] = sites.get(node.name, 0) + 1
    return sites


def _like_pattern_params(template: ast.Select) -> frozenset[str]:
    """Parameters used as LIKE patterns (their server form is an SWP
    trapdoor, not a DET/OPE ciphertext — excluded from fast re-bind)."""
    names = set()
    for node in _iter_nodes(template):
        if isinstance(node, ast.Like) and isinstance(node.pattern, ast.Param):
            names.add(node.pattern.name)
    return frozenset(names)


def _typed(value: object) -> tuple[type, object]:
    """Type-tagged comparison key: 1, 1.0, and True must not alias."""
    return (type(value), value)


def substitution_safety(
    template: ast.Select,
    normalized: ast.Select,
    params: dict[str, object],
) -> bool:
    """Can each parameter's literal be located unambiguously?

    True iff, for every parameter ``p`` bound to value ``v``: the
    normalized bound query contains the literal ``v`` (type-strict)
    exactly as many times as the template has ``:p`` sites, no two
    parameters share a value, no parameter feeds a LIKE pattern, and the
    value is hashable.  Constant folding that consumed the parameter
    (``DATE :p - INTERVAL ...``) reduces the literal count below the site
    count, so it fails this check — by design.
    """
    sites = param_sites(template)
    if set(sites) != set(params):
        return False
    like_params = _like_pattern_params(template)
    literal_counts: dict[tuple[type, object], int] = {}
    for node in _iter_nodes(normalized):
        if isinstance(node, ast.Literal):
            try:
                key = _typed(node.value)
                literal_counts[key] = literal_counts.get(key, 0) + 1
            except TypeError:
                continue
    seen_values: set[tuple[type, object]] = set()
    for name, value in params.items():
        if name in like_params or isinstance(value, bool) or value is None:
            return False
        try:
            key = _typed(value)
        except TypeError:
            return False
        if key in seen_values:
            return False
        seen_values.add(key)
        if literal_counts.get(key, 0) != sites[name]:
            return False
    return True


# ---------------------------------------------------------------------------
# Re-binding
# ---------------------------------------------------------------------------


def _encryptions_of(provider: CryptoProvider, value: object) -> dict[str, object]:
    """The deterministic ciphertexts ``value`` can appear as server-side."""
    out: dict[str, object] = {}
    for kind in ("det", "ope"):
        try:
            out[kind] = provider.encrypt(value, kind)
        except (CryptoError, DomainError):
            continue
    return out


def build_substitutions(
    provider: CryptoProvider,
    old_params: dict[str, object],
    new_params: dict[str, object],
) -> dict[tuple[type, object], object]:
    """Old-literal → new-literal map, plaintext and ciphertext forms.

    Raises :class:`RebindError` when a new value changes type or cannot
    be encrypted under a scheme its predecessor used (e.g. out of the OPE
    domain) — the caller falls back to a template re-plan.
    """
    if set(old_params) != set(new_params):
        raise RebindError(
            f"parameter names changed: {sorted(old_params)} -> "
            f"{sorted(new_params)}"
        )
    subs: dict[tuple[type, object], object] = {}
    for name, old in old_params.items():
        new = new_params[name]
        if type(new) is not type(old):
            raise RebindError(
                f"parameter :{name} changed type "
                f"{type(old).__name__} -> {type(new).__name__}"
            )
        subs[_typed(old)] = new
        old_enc = _encryptions_of(provider, old)
        new_enc = _encryptions_of(provider, new)
        for kind, old_ct in old_enc.items():
            if kind not in new_enc:
                raise RebindError(
                    f"parameter :{name} value {new!r} does not encrypt "
                    f"under {kind}"
                )
            subs[_typed(old_ct)] = new_enc[kind]
    return subs


def _substitute_expr(expr: ast.Expr, subs: dict) -> ast.Expr:
    def repl(node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.Literal):
            try:
                key = _typed(node.value)
            except TypeError:
                return node
            if key in subs:
                return ast.Literal(subs[key])
        elif isinstance(node, ast.ScalarSubquery):
            return ast.ScalarSubquery(_substitute_select(node.query, subs))
        elif isinstance(node, ast.InSubquery):
            return ast.InSubquery(
                node.needle, _substitute_select(node.query, subs), node.negated
            )
        elif isinstance(node, ast.Exists):
            return ast.Exists(_substitute_select(node.query, subs), node.negated)
        return node

    return ast.transform(expr, repl)


def _substitute_ref(ref: ast.TableRef, subs: dict) -> ast.TableRef:
    if isinstance(ref, ast.SubqueryRef):
        return ast.SubqueryRef(_substitute_select(ref.query, subs), ref.alias)
    if isinstance(ref, ast.Join):
        condition = ref.condition
        if condition is not None:
            condition = _substitute_expr(condition, subs)
        return ast.Join(
            _substitute_ref(ref.left, subs),
            _substitute_ref(ref.right, subs),
            ref.kind,
            condition,
        )
    return ref


def _substitute_select(query: ast.Select, subs: dict) -> ast.Select:
    rebuilt = query.map_expressions(lambda e: _substitute_expr(e, subs))
    return replace(
        rebuilt,
        from_items=tuple(_substitute_ref(r, subs) for r in rebuilt.from_items),
    )


def _substitute_plan(plan: SplitPlan, subs: dict) -> SplitPlan:
    relations = []
    for relation in plan.relations:
        if isinstance(relation, RemoteRelation):
            relations.append(
                RemoteRelation(
                    relation.alias,
                    _substitute_select(relation.query, subs),
                    relation.specs,
                    relation.unnest,
                    relation.plain_selectivity,
                )
            )
        elif isinstance(relation, ClientRelation):
            relations.append(
                ClientRelation(
                    relation.alias,
                    _substitute_plan(relation.plan, subs),
                    relation.column_names,
                )
            )
        else:
            raise ExecutionError(f"unknown relation {relation!r}")
    residual = plan.residual
    if residual is not None:
        residual = _substitute_select(residual, subs)
    subplans = [
        SubPlan(_substitute_plan(s.plan, subs), s.mode, s.param_name)
        for s in plan.subplans
    ]
    return SplitPlan(relations, residual, subplans)


def rebind_plan(
    entry: PreparedPlan,
    provider: CryptoProvider,
    new_params: dict[str, object],
) -> PlannedQuery:
    """Re-bind the anchored plan to ``new_params`` (fast path).

    Raises :class:`RebindError` when the entry is not substitutable or
    the new values cannot take the old values' places.
    """
    if not entry.substitutable:
        raise RebindError("statement is not literal-substitutable")
    subs = build_substitutions(provider, entry.param_values, new_params)
    anchored = entry.planned
    plan = _substitute_plan(anchored.plan, subs)
    # The cost breakdown was priced for the anchor's literals; the shape
    # (and therefore the breakdown's structure) is identical, so it is
    # carried over as the best available estimate.
    return PlannedQuery(
        plan, anchored.cost, anchored.chosen_units, anchored.candidates_tried
    )
