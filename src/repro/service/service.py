"""MonomiService: N concurrent sessions over one shared encrypted database.

The paper's prototype executes one analyst's query at a time; a
production deployment serves many.  :class:`MonomiService` is the layer
that makes that safe and fast without touching the trust model — it runs
entirely on the trusted client side, wrapping one
:class:`~repro.core.client.MonomiClient`:

* **Thread-pooled execution** — queries submit to a worker pool;
  :meth:`MonomiService.submit` returns a future,
  :meth:`MonomiService.execute` blocks for the outcome.
* **Per-worker backend connections** — each worker thread owns a
  :meth:`~repro.server.backend.ServerBackend.worker_view`: a dedicated
  SQLite connection over the shared(-cache) database, or lock-scoped
  access to the in-memory engine.  Per-query server state (cursors,
  stats) is never shared between workers.
* **Per-session cost ledgers** — a :class:`ServiceSession` accumulates
  its own :class:`~repro.common.ledger.CostLedger`; every query also
  returns its private per-query ledger, so concurrent sessions never
  share mutable ledger state.
* **Plan/design caching** — planned queries memoize in a
  :class:`~repro.service.cache.PlanCache` keyed on ⟨normalized SQL,
  design fingerprint⟩; repeat queries skip the rewriter/splitter/planner
  entirely (hit/miss counters in :meth:`MonomiService.stats`).
* **Prepared statements** — :meth:`MonomiService.prepare` /
  :meth:`MonomiService.execute_prepared` re-encrypt only the parameter
  literals under the cached plan (see :mod:`repro.service.prepared`).
* **Resilience** — ``timeout=`` on submit arms a deadline at *submit*
  time (queue wait counts against it), and a whole-query retry re-runs a
  query whose transient fault escaped the executor's in-query recovery
  (counted in ``stats().query_retries``; each attempt gets a fresh
  ledger, so byte accounting stays identical to a fault-free run).

Concurrency contract: results and ledger *byte counts* (transfer bytes,
scanned bytes, round trips) of every query are identical to running the
same query serially through the underlying client — the service changes
scheduling, never semantics.  The stress suite asserts this per query
across 8 concurrent sessions.

**DML and cache freshness.**  INSERT/UPDATE/DELETE submitted to the
service route to the client's encrypted DML executor, serialized by a
service-wide write lock (DML never runs concurrently with DML) and bound
to a worker view, so each backend operation is atomic against concurrent
readers.  The plan and prepared-statement caches stay *valid* across DML
by construction: they memoize plans, never results, and a plan re-scans
live tables on every execution — a cached SELECT sees rows a later DML
statement added or removed.  Only the cached cost *estimates* go stale
(they snapshot table sizes at plan time), which affects `explain`-style
reporting, not correctness; the client's planner is refreshed after each
DML statement so new plans estimate against current sizes.  Isolation is
per-backend-operation, not snapshot: an analytic query racing a DML
statement may observe it partially applied (rows landed, homomorphic
patch still in flight) — quiesce writes when byte-exact repeatability
across reads is required.
"""

from __future__ import annotations

import itertools
import random
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.ledger import CostLedger
from repro.common.retry import Deadline, RetryPolicy, retry_call
from repro.core.client import MonomiClient, QueryOutcome
from repro.core.normalize import normalize_dml, normalize_for_execution
from repro.core.pexec import PlanExecutor
from repro.core.planner import PlannedQuery
from repro.service.cache import PlanCache, PlanCacheStats
from repro.service.prepared import (
    PreparedPlan,
    PreparedStatement,
    RebindError,
    param_sites,
    rebind_plan,
    substitution_safety,
)
from repro.sql import ast, parse, parse_statement, to_sql

DEFAULT_WORKERS = 4
DEFAULT_PLAN_CACHE_SIZE = 128


class ServiceSession:
    """One analyst's session: a cumulative ledger over its queries.

    Sessions are cheap handles — all heavy state (connections, caches)
    lives in the service's workers.  A session may have several queries
    in flight at once; each query runs on its own per-query ledger and
    merges into the session total on completion, under the session lock.
    """

    def __init__(self, service: "MonomiService", session_id: int) -> None:
        self._service = service
        self.session_id = session_id
        self.ledger = CostLedger()
        self.queries_run = 0
        self._lock = threading.Lock()

    def submit(
        self,
        sql: str | ast.Select,
        params: dict[str, object] | None = None,
        timeout: float | None = None,
    ) -> Future:
        return self._service.submit(
            sql, params=params, session=self, timeout=timeout
        )

    def execute(
        self,
        sql: str | ast.Select,
        params: dict[str, object] | None = None,
        timeout: float | None = None,
    ) -> QueryOutcome:
        return self._service.execute(
            sql, params=params, session=self, timeout=timeout
        )

    def _absorb(self, ledger: CostLedger) -> None:
        with self._lock:
            self.ledger.merge(ledger)
            self.queries_run += 1


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time service counters."""

    queries: int
    query_retries: int
    sessions_opened: int
    prepared_statements: int
    prepared_fast_rebinds: int
    prepared_replans: int
    workers: int
    plan_cache: PlanCacheStats


#: Bound on each prepared statement's private plan memo (distinct
#: parameter bindings kept hot per statement).
STATEMENT_PLAN_CACHE_SIZE = 64


class _StatementState:
    """Mutable per-prepared-statement state (anchor plan, build lock).

    Prepared plans live in a per-statement cache, *never* in the shared
    ad-hoc plan cache: a re-bound plan keeps its anchor's split shape,
    which a fresh optimizer run for the same literals might not pick —
    publishing it to the ad-hoc cache would let a later ``execute`` of
    the identical SQL text return different ledger bytes than serial
    client execution, breaking the service's byte-identical contract.
    """

    def __init__(self, statement: PreparedStatement) -> None:
        self.statement = statement
        self.entry: PreparedPlan | None = None
        self.lock = threading.Lock()
        self.plans = PlanCache(STATEMENT_PLAN_CACHE_SIZE)


class MonomiService:
    """Concurrent query service over one client's encrypted database.

    Usually built via :meth:`MonomiClient.service
    <repro.core.client.MonomiClient.service>`.  Use as a context manager
    or call :meth:`close` to release the worker pool and per-worker
    backend connections.
    """

    def __init__(
        self,
        client: MonomiClient,
        workers: int = DEFAULT_WORKERS,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigError(f"service needs at least 1 worker, got {workers}")
        self._client = client
        self.workers = workers
        self.plan_cache = PlanCache(plan_cache_size)
        # Whole-query retry: the executor already retries transient faults
        # inside a query (stream re-open + fast-forward); this outer policy
        # re-runs the *entire* query if one still escapes, on a fresh
        # ledger, so a retried query's primary byte totals stay identical
        # to a fault-free run.  One retry by default — each attempt is a
        # full execution, and the inner layer has already burned its budget.
        self.retry_policy = retry_policy or RetryPolicy(max_attempts=2)
        self._retry_rng = random.Random(0x5EED)
        # The design is immutable once loaded; fingerprint it once.  DML
        # changes table *contents*, never the design, so cached plans keyed
        # on this fingerprint survive writes (see the module docstring).
        self._design_fp = client.design.fingerprint()
        # Service-wide DML serialization: statements apply one at a time,
        # on a dedicated worker view (built lazily on first write).
        self._write_lock = threading.Lock()
        self._dml_executor_cached = None
        # Planning mutates nothing, but the planner/cost-model stack was
        # written single-threaded; a single-flight lock serializes cache
        # misses (repeat queries bypass it via the cache entirely).
        self._plan_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="monomi-service"
        )
        self._tls = threading.local()
        self._state_lock = threading.Lock()
        self._views: list = []
        self._session_ids = itertools.count(1)
        self._statement_ids = itertools.count(1)
        self._statements: dict[int, _StatementState] = {}
        self._sessions_opened = 0
        self._queries = 0
        self._query_retries = 0
        self._fast_rebinds = 0
        self._replans = 0
        self._closed = False
        # Internal fallback for session-less submits; not a user session,
        # so it does not count toward stats().sessions_opened.
        self._default_session = ServiceSession(self, 0)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Drain in-flight queries, then release workers and connections."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)
        with self._state_lock:
            views, self._views = self._views, []
        for view in views:
            close = getattr(view, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "MonomiService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- sessions -------------------------------------------------------------

    def open_session(self) -> ServiceSession:
        self._ensure_open()
        with self._state_lock:
            self._sessions_opened += 1
            return ServiceSession(self, next(self._session_ids))

    # -- ad-hoc queries -------------------------------------------------------

    def submit(
        self,
        sql: str | ast.Select,
        params: dict[str, object] | None = None,
        session: ServiceSession | None = None,
        timeout: float | None = None,
    ) -> Future:
        """Queue one query; the future resolves to a
        :class:`~repro.core.client.QueryOutcome`.

        ``timeout`` (seconds) arms a deadline *now*, at submit time — it
        covers time spent waiting in the worker queue, not just execution,
        so a saturated service times queries out instead of letting them
        age silently in the backlog.

        INSERT/UPDATE/DELETE are accepted too: they route to the encrypted
        DML path under the service write lock (see the module docstring).
        """
        self._ensure_open()
        statement = parse_statement(sql) if isinstance(sql, str) else sql
        target = session or self._default_session
        deadline = Deadline.after(timeout) if timeout is not None else None
        if ast.is_dml(statement):
            statement = normalize_dml(statement, params)
            return self._pool.submit(self._run_dml, target, statement, deadline)
        query = self._normalize(statement, params)
        return self._pool.submit(self._run_planned_query, target, query, deadline)

    def execute(
        self,
        sql: str | ast.Select,
        params: dict[str, object] | None = None,
        session: ServiceSession | None = None,
        timeout: float | None = None,
    ) -> QueryOutcome:
        return self.submit(
            sql, params=params, session=session, timeout=timeout
        ).result()

    # -- prepared statements --------------------------------------------------

    def prepare(self, sql: str | ast.Select) -> PreparedStatement:
        """Parse a ``:name``-parameterized template into a reusable handle."""
        self._ensure_open()
        template = parse(sql) if isinstance(sql, str) else sql
        names = tuple(sorted(param_sites(template)))
        text = sql if isinstance(sql, str) else to_sql(sql)
        with self._state_lock:
            statement = PreparedStatement(
                next(self._statement_ids), text, template, names
            )
            self._statements[statement.statement_id] = _StatementState(statement)
        return statement

    def submit_prepared(
        self,
        statement: PreparedStatement,
        params: dict[str, object] | None = None,
        session: ServiceSession | None = None,
        timeout: float | None = None,
    ) -> Future:
        self._ensure_open()
        state = self._statements.get(statement.statement_id)
        if state is None:
            raise ConfigError(
                f"unknown prepared statement #{statement.statement_id} "
                "(prepared on another service?)"
            )
        target = session or self._default_session
        deadline = Deadline.after(timeout) if timeout is not None else None
        return self._pool.submit(
            self._run_prepared, state, target, dict(params or {}), deadline
        )

    def execute_prepared(
        self,
        statement: PreparedStatement,
        params: dict[str, object] | None = None,
        session: ServiceSession | None = None,
        timeout: float | None = None,
    ) -> QueryOutcome:
        return self.submit_prepared(
            statement, params=params, session=session, timeout=timeout
        ).result()

    # -- reporting ------------------------------------------------------------

    def stats(self) -> ServiceStats:
        with self._state_lock:
            return ServiceStats(
                queries=self._queries,
                query_retries=self._query_retries,
                sessions_opened=self._sessions_opened,
                prepared_statements=len(self._statements),
                prepared_fast_rebinds=self._fast_rebinds,
                prepared_replans=self._replans,
                workers=self.workers,
                plan_cache=self.plan_cache.stats(),
            )

    # -- internals ------------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise ConfigError("service is closed")

    def _normalize(
        self, sql: str | ast.Select, params: dict[str, object] | None
    ) -> ast.Select:
        return normalize_for_execution(sql, params)

    def _cache_key(self, query: ast.Select) -> tuple[str, str]:
        return (to_sql(query), self._design_fp)

    def _plan_cached(self, query: ast.Select) -> PlannedQuery:
        """Plan via the cache; misses plan single-flight and populate it."""
        key = self._cache_key(query)
        planned = self.plan_cache.get(key)
        if planned is not None:
            return planned
        with self._plan_lock:
            planned = self.plan_cache.peek(key)
            if planned is None:
                planned = self._client.planner.plan(query)
                self.plan_cache.put(key, planned)
        return planned

    def _worker_executor(self) -> PlanExecutor:
        """This worker thread's executor (lazily built, with its own
        backend view)."""
        executor = getattr(self._tls, "executor", None)
        if executor is None:
            view = self._client.backend.worker_view()
            executor = self._client.executor.clone_with_backend(view)
            self._tls.executor = executor
            with self._state_lock:
                self._views.append(view)
        return executor

    def _finish(
        self,
        session: ServiceSession,
        planned: PlannedQuery,
        deadline: Deadline | None = None,
    ) -> QueryOutcome:
        executor = self._worker_executor()

        def attempt():
            # Each attempt runs on a fresh ledger inside execute(), so the
            # outcome's primary byte totals never include abandoned work.
            return executor.execute(planned.plan, deadline=deadline)

        def note_retry(exc: BaseException, attempts: int) -> None:
            with self._state_lock:
                self._query_retries += 1

        result, ledger = retry_call(
            attempt,
            self.retry_policy,
            deadline=deadline,
            rng=self._retry_rng,
            on_retry=note_retry,
        )
        session._absorb(ledger)
        with self._state_lock:
            self._queries += 1
        return QueryOutcome(result, ledger, planned)

    def _run_planned_query(
        self,
        session: ServiceSession,
        query: ast.Select,
        deadline: Deadline | None = None,
    ) -> QueryOutcome:
        if deadline is not None:
            deadline.check("query (queued)")
        return self._finish(session, self._plan_cached(query), deadline)

    def _dml_executor(self):
        """The service's DML executor: bound to its own worker view so each
        backend call serializes against concurrent readers, and sharing the
        client executor's listener list so maintained aggregates see writes
        regardless of which path applied them.  Caller holds the write lock.
        """
        if self._dml_executor_cached is None:
            from repro.core.dml import DmlExecutor

            view = self._client.backend.worker_view()
            with self._state_lock:
                self._views.append(view)
            executor = DmlExecutor(self._client, backend=view)
            executor.listeners = self._client.dml.listeners
            self._dml_executor_cached = executor
        return self._dml_executor_cached

    def _run_dml(
        self,
        session: ServiceSession,
        statement,
        deadline: Deadline | None = None,
    ) -> QueryOutcome:
        if deadline is not None:
            deadline.check("dml (queued)")
        with self._write_lock:
            result, ledger = self._dml_executor().execute(statement)
            # Refresh under the plan lock: planning reads the plaintext
            # mirror's statistics, which this statement just changed.
            with self._plan_lock:
                self._client._refresh_planner()
        session._absorb(ledger)
        with self._state_lock:
            self._queries += 1
        return QueryOutcome(result, ledger, None)

    def _run_prepared(
        self,
        state: _StatementState,
        session: ServiceSession,
        params: dict[str, object],
        deadline: Deadline | None = None,
    ) -> QueryOutcome:
        if deadline is not None:
            deadline.check("prepared query (queued)")
        normalized = self._normalize(state.statement.template, params)
        key = self._cache_key(normalized)
        planned = state.plans.get(key)
        if planned is not None:
            return self._finish(session, planned, deadline)
        planned = self._prepared_plan(state, normalized, params)
        state.plans.put(key, planned)
        return self._finish(session, planned, deadline)

    def _prepared_plan(
        self,
        state: _StatementState,
        normalized: ast.Select,
        params: dict[str, object],
    ) -> PlannedQuery:
        """First execution plans fully and anchors; later ones re-bind."""
        with state.lock:
            entry = state.entry
            if entry is None:
                with self._plan_lock:
                    planned = self._client.planner.plan(normalized)
                state.entry = PreparedPlan(
                    planned,
                    dict(params),
                    substitution_safety(
                        state.statement.template, normalized, params
                    ),
                )
                return planned
        try:
            planned = rebind_plan(entry, self._client.provider, params)
            with self._state_lock:
                self._fast_rebinds += 1
            return planned
        except RebindError:
            with self._plan_lock:
                planned = self._client.planner.plan_with_units(
                    normalized, entry.planned.chosen_units
                )
            with self._state_lock:
                self._replans += 1
            return planned
