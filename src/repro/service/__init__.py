"""Concurrent query-service layer: sessions, plan cache, prepared statements.

See :mod:`repro.service.service` for the architecture overview.  Typical
entry point::

    with client.service(workers=8) as service:
        session = service.open_session()
        outcome = session.execute("SELECT ...")
"""

from repro.service.cache import PlanCache, PlanCacheStats, plan_cache_key
from repro.service.prepared import (
    PreparedPlan,
    PreparedStatement,
    RebindError,
    rebind_plan,
    substitution_safety,
)
from repro.service.service import (
    DEFAULT_PLAN_CACHE_SIZE,
    DEFAULT_WORKERS,
    MonomiService,
    ServiceSession,
    ServiceStats,
)

__all__ = [
    "DEFAULT_PLAN_CACHE_SIZE",
    "DEFAULT_WORKERS",
    "MonomiService",
    "PlanCache",
    "PlanCacheStats",
    "PreparedPlan",
    "PreparedStatement",
    "RebindError",
    "ServiceSession",
    "ServiceStats",
    "plan_cache_key",
    "rebind_plan",
    "substitution_safety",
]
