"""Thread-safe LRU plan/design cache for the concurrent service layer.

Planning is the client library's most expensive CPU phase after
decryption: the optimizing planner enumerates a power set of encryption
units and prices every candidate (§6.3–6.4).  A service pushing many
sessions' queries through one shared design repeats that work every time
two analysts ask the same question — so the service memoizes
:class:`~repro.core.planner.PlannedQuery` objects here.

Keying rule
-----------
The cache key is the pair

``(normalized SQL text, physical-design fingerprint)``

* *Normalized SQL text* — the query after
  :func:`~repro.core.normalize.normalize_query` (parameters bound,
  ``AVG`` expanded, constants folded), printed back to canonical SQL by
  :func:`~repro.sql.to_sql`.  Normalization runs **before** keying, so
  textual variants that plan identically (``avg(x)`` vs
  ``sum(x)/count(x)``, folded date arithmetic, whitespace) share one
  entry, while any semantic difference — including different bound
  parameter values, whose literals the planner encrypts into the plan —
  keys separately.
* *Design fingerprint* — :meth:`PhysicalDesign.fingerprint
  <repro.core.design.PhysicalDesign.fingerprint>`, a digest of every
  ⟨table, expression, scheme⟩ entry and homomorphic group.  A cached plan
  embeds server column names and ciphertext constants that only exist
  under the design it was planned against; fingerprinting the design into
  the key makes a stale plan unreachable rather than latently wrong.

Cached plans are treated as immutable and shared across sessions; the
executor never mutates a plan, so concurrent executions of one cached
plan are safe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.core.design import PhysicalDesign
from repro.core.planner import PlannedQuery
from repro.sql import ast, to_sql


def plan_cache_key(query: ast.Select, design: PhysicalDesign) -> tuple[str, str]:
    """The cache key for a *normalized* query under ``design``."""
    return (to_sql(query), design.fingerprint())


@dataclass(frozen=True)
class PlanCacheStats:
    """Point-in-time counters (consistent snapshot under the cache lock)."""

    hits: int
    misses: int
    evictions: int
    entries: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """Bounded LRU over planned queries, safe for concurrent sessions.

    Unlike the provider's lock-free crypto caches (where a racy
    double-compute re-derives the same ciphertext), a plan-cache miss
    costs a full planner run — so this cache takes a real lock around
    every operation and keeps exact hit/miss/eviction counters, which the
    service exposes for operators to size the cache against their
    workload.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ConfigError(
                f"plan cache capacity must be >= 1, got {capacity}"
            )
        self._capacity = capacity
        self._lock = threading.Lock()
        self._data: OrderedDict[tuple[str, str], PlannedQuery] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def get(self, key: tuple[str, str]) -> PlannedQuery | None:
        """Look up a plan, counting the hit or miss."""
        with self._lock:
            planned = self._data.get(key)
            if planned is None:
                self._misses += 1
                return None
            self._data.move_to_end(key)
            self._hits += 1
            return planned

    def peek(self, key: tuple[str, str]) -> PlannedQuery | None:
        """Counter-free, recency-free lookup.

        Used for the single-flight re-check after a counted miss: the
        thread that waited on the planning lock should not inflate the
        hit/miss counters a second time for the same logical lookup.
        """
        with self._lock:
            return self._data.get(key)

    def put(self, key: tuple[str, str], planned: PlannedQuery) -> None:
        with self._lock:
            self._data[key] = planned
            self._data.move_to_end(key)
            while len(self._data) > self._capacity:
                self._data.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def stats(self) -> PlanCacheStats:
        with self._lock:
            return PlanCacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._data),
                capacity=self._capacity,
            )
