"""Storage substrate: byte-accurate sizing, serialization, ciphertext files."""

from repro.storage.ciphertext_store import CiphertextFile, CiphertextStore
from repro.storage.rowcodec import (
    decode_row,
    decode_value,
    encode_row,
    encode_value,
    row_bytes,
    value_bytes,
)

__all__ = [
    "CiphertextFile",
    "CiphertextStore",
    "decode_row",
    "decode_value",
    "encode_row",
    "encode_value",
    "row_bytes",
    "value_bytes",
]
