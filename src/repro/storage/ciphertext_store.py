"""Server-side store for packed Paillier ciphertexts (§7).

The paper keeps packed Paillier ciphertexts in *separate files* on the
server's local filesystem rather than in table rows, because one ciphertext
covers several rows.  Each table row carries a plain ``row_id``; the
homomorphic-aggregate UDF maps a row_id to (ciphertext index, slot offset)
and reads the ciphertext from the file.

:class:`CiphertextFile` models one such file: a sequence of ciphertexts with
a fixed :class:`~repro.crypto.packing.PackedLayout`.  Byte accounting is
exact (ciphertexts are fixed-width = Paillier modulus squared), and reads
are tracked so the disk model can charge scan time for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import EngineError
from repro.crypto.packing import PackedLayout
from repro.crypto.paillier import PaillierPublicKey


@dataclass
class CiphertextFile:
    """One packed-Paillier file: ciphertexts[g] covers rows
    [g * rows_per_ct, (g+1) * rows_per_ct)."""

    name: str
    public_key: PaillierPublicKey
    layout: PackedLayout
    column_names: tuple[str, ...]  # Plaintext expressions packed, in order.
    ciphertexts: list[int] = field(default_factory=list)
    num_rows: int = 0
    bytes_read: int = 0  # Cumulative read accounting.

    @property
    def rows_per_ciphertext(self) -> int:
        return self.layout.rows_per_ciphertext

    @property
    def ciphertext_bytes(self) -> int:
        return self.public_key.ciphertext_bytes

    @property
    def total_bytes(self) -> int:
        return len(self.ciphertexts) * self.ciphertext_bytes

    def locate(self, row_id: int) -> tuple[int, int]:
        """(ciphertext index, row slot within the ciphertext) for a row."""
        if not 0 <= row_id < self.num_rows:
            raise EngineError(f"row_id {row_id} outside file {self.name!r}")
        return divmod(row_id, self.rows_per_ciphertext)

    def read(self, group_index: int) -> int:
        """Read one ciphertext (charges its bytes to the scan ledger)."""
        if not 0 <= group_index < len(self.ciphertexts):
            raise EngineError(f"ciphertext {group_index} outside file {self.name!r}")
        self.bytes_read += self.ciphertext_bytes
        return self.ciphertexts[group_index]

    def rows_in_group(self, group_index: int) -> range:
        start = group_index * self.rows_per_ciphertext
        return range(start, min(start + self.rows_per_ciphertext, self.num_rows))


class CiphertextStore:
    """All ciphertext files on the untrusted server, by name."""

    def __init__(self) -> None:
        self._files: dict[str, CiphertextFile] = {}

    def add(self, file: CiphertextFile) -> None:
        if file.name in self._files:
            raise EngineError(f"duplicate ciphertext file {file.name!r}")
        self._files[file.name] = file

    def get(self, name: str) -> CiphertextFile:
        try:
            return self._files[name]
        except KeyError:
            raise EngineError(f"unknown ciphertext file {name!r}") from None

    def drop(self, name: str) -> None:
        self._files.pop(name, None)

    def names(self) -> list[str]:
        return sorted(self._files)

    @property
    def total_bytes(self) -> int:
        return sum(f.total_bytes for f in self._files.values())

    def reset_read_accounting(self) -> None:
        for file in self._files.values():
            file.bytes_read = 0

    @property
    def bytes_read(self) -> int:
        return sum(f.bytes_read for f in self._files.values())
