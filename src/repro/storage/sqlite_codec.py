"""SQLite storage representation for server values (the marker-blob codec).

SQLite's INTEGER is 64-bit signed, but several schemes produce wider
ciphertexts (OPE over strings uses an 88-bit range; DET short-text FFX
offsets exceed 2**63), and SEARCH tag sets are sets of 8-byte PRF tags.
Values SQLite cannot hold natively are stored as **marker blobs**: an
8-byte magic prefix plus a fixed-width payload.

The encoding is chosen so the engine's comparison semantics survive with
zero modification: SQLite orders every INTEGER before any BLOB and
compares BLOBs bytewise, so a column mixing native integers (< 2**63) and
fixed-width big-endian marker blobs (>= 2**63) still sorts in exact
numeric order — OPE predicates, MIN/MAX, and ORDER BY stay correct.

This module is representation-only (no engine or server imports): both
the SQL printer (ciphertext literals in the SQLite dialect) and the
SQLite backend (table loads, result decoding) depend on it downward.
The ``grp()``/``hom_agg()`` aggregate blobs reuse the same marker scheme
but are serialized in :mod:`repro.server.sqlite`, which owns the UDFs.

A genuine RND/DET ciphertext blob starts with a marker with probability
2**-64 per value — the same collision budget the SWP tags already accept.
"""

from __future__ import annotations

from repro.common.errors import EngineError
from repro.crypto.search import TAG_BYTES

BIG_MARK = b"\x00mBIGv1\x00"  # integer >= 2**63, big-endian in 16 bytes
TAG_MARK = b"\x00mTAGv1\x00"  # SEARCH tag set, concatenated sorted tags
GRP_MARK = b"\x00mGRPv1\x00"  # grp() list, rowcodec-encoded elements
HOM_MARK = b"\x00mHOMv1\x00"  # hom_agg() result (product + partials)

MARK_LEN = 8
BIG_WIDTH = 16  # Covers every scheme: widest is DET short-text (~104 bits).


def encode_sqlite_value(value: object) -> object:
    """Map one logical server value onto an SQLite storage value."""
    if value is None or isinstance(value, (float, str)):
        return value
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        if -(1 << 63) <= value < (1 << 63):
            return value
        if not 0 <= value < (1 << (8 * BIG_WIDTH)):
            raise EngineError(f"integer {value.bit_length()} bits wide cannot encode")
        return BIG_MARK + value.to_bytes(BIG_WIDTH, "big")
    if isinstance(value, bytes):
        return value
    if isinstance(value, frozenset):
        return TAG_MARK + b"".join(sorted(value))
    raise EngineError(
        f"value type {type(value).__name__} is never stored on the server"
    )


def decode_big(blob: bytes) -> int:
    """Decode a BIG_MARK blob back to the integer it carries."""
    return int.from_bytes(blob[MARK_LEN:], "big")


def decode_tags(blob: bytes) -> frozenset[bytes]:
    """Decode a TAG_MARK blob back to a SEARCH tag set."""
    body = blob[MARK_LEN:]
    return frozenset(
        body[i : i + TAG_BYTES] for i in range(0, len(body), TAG_BYTES)
    )


def quote_ident(name: str) -> str:
    """Escape one SQLite identifier (table, column, alias)."""
    return '"' + name.replace('"', '""') + '"'
