"""Byte-accurate value and row sizing/serialization.

The paper's space results (Table 2) and I/O-bound runtime results (§5.2)
hinge on exact on-disk sizes: ciphertext expansion is scan time.  This
module is the single source of truth for how many bytes a value occupies on
the untrusted server, and provides a real binary serialization so tests can
confirm the accounting is honest (what we count is what we can round-trip).

Sizing rules (mirroring a Postgres-ish row store):

* int     — 8 bytes (the paper replaces DECIMALs with integers; big ints
            such as OPE or Paillier ciphertexts are sized by bit length)
* float   — 8 bytes
* date    — 4 bytes
* bool    — 1 byte
* text    — length + 1-byte header (short varlena)
* bytes   — length + 1-byte header
* tagset  — 8 bytes per SEARCH tag + 2-byte count
* None    — 1 byte (null bitmap share, simplified)
"""

from __future__ import annotations

import datetime
import struct

from repro.common.errors import EngineError

_EPOCH = datetime.date(1970, 1, 1)


def value_bytes(value: object) -> int:
    """On-disk size of one value on the server."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        if -(1 << 63) <= value < (1 << 63):
            return 8
        return (value.bit_length() + 7) // 8  # Ciphertext-sized integers.
    if isinstance(value, float):
        return 8
    if isinstance(value, datetime.date):
        return 4
    if isinstance(value, str):
        return len(value.encode("utf-8")) + 1
    if isinstance(value, bytes):
        return len(value) + 1
    if isinstance(value, frozenset):
        return 8 * len(value) + 2
    if isinstance(value, (list, tuple)):
        return sum(value_bytes(v) for v in value) + 2
    if hasattr(value, "byte_size"):
        return int(value.byte_size())
    raise EngineError(f"unsizable value type {type(value).__name__}")


def row_bytes(row: tuple) -> int:
    """On-disk size of one row: values + a fixed per-row header (23 bytes in
    Postgres; we round to 24)."""
    return 24 + sum(value_bytes(v) for v in row)


# ---------------------------------------------------------------------------
# Real serialization (used by tests to validate the accounting, and by the
# ciphertext store for its file layout)
# ---------------------------------------------------------------------------

_TAG_NONE = 0
_TAG_BOOL = 1
_TAG_INT = 2
_TAG_BIGINT = 3
_TAG_FLOAT = 4
_TAG_DATE = 5
_TAG_TEXT = 6
_TAG_BYTES = 7
_TAG_TAGSET = 8


def encode_value(value: object) -> bytes:
    if value is None:
        return bytes([_TAG_NONE])
    if isinstance(value, bool):
        return bytes([_TAG_BOOL, int(value)])
    if isinstance(value, int):
        if -(1 << 63) <= value < (1 << 63):
            return bytes([_TAG_INT]) + struct.pack("<q", value)
        payload = value.to_bytes((value.bit_length() + 7) // 8, "big")
        return bytes([_TAG_BIGINT]) + struct.pack("<I", len(payload)) + payload
    if isinstance(value, float):
        return bytes([_TAG_FLOAT]) + struct.pack("<d", value)
    if isinstance(value, datetime.date):
        return bytes([_TAG_DATE]) + struct.pack("<i", (value - _EPOCH).days)
    if isinstance(value, str):
        payload = value.encode("utf-8")
        return bytes([_TAG_TEXT]) + struct.pack("<I", len(payload)) + payload
    if isinstance(value, bytes):
        return bytes([_TAG_BYTES]) + struct.pack("<I", len(value)) + value
    if isinstance(value, frozenset):
        tags = sorted(value)
        return bytes([_TAG_TAGSET]) + struct.pack("<I", len(tags)) + b"".join(tags)
    raise EngineError(f"unencodable value type {type(value).__name__}")


def decode_value(data: bytes, offset: int = 0) -> tuple[object, int]:
    """Decode one value; returns (value, next_offset)."""
    tag = data[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_BOOL:
        return bool(data[offset]), offset + 1
    if tag == _TAG_INT:
        return struct.unpack_from("<q", data, offset)[0], offset + 8
    if tag == _TAG_BIGINT:
        (length,) = struct.unpack_from("<I", data, offset)
        offset += 4
        return int.from_bytes(data[offset : offset + length], "big"), offset + length
    if tag == _TAG_FLOAT:
        return struct.unpack_from("<d", data, offset)[0], offset + 8
    if tag == _TAG_DATE:
        (days,) = struct.unpack_from("<i", data, offset)
        return _EPOCH + datetime.timedelta(days=days), offset + 4
    if tag == _TAG_TEXT:
        (length,) = struct.unpack_from("<I", data, offset)
        offset += 4
        return data[offset : offset + length].decode("utf-8"), offset + length
    if tag == _TAG_BYTES:
        (length,) = struct.unpack_from("<I", data, offset)
        offset += 4
        return bytes(data[offset : offset + length]), offset + length
    if tag == _TAG_TAGSET:
        (count,) = struct.unpack_from("<I", data, offset)
        offset += 4
        tags = frozenset(
            bytes(data[offset + 8 * i : offset + 8 * (i + 1)]) for i in range(count)
        )
        return tags, offset + 8 * count
    raise EngineError(f"bad value tag {tag}")


def encode_row(row: tuple) -> bytes:
    body = b"".join(encode_value(v) for v in row)
    return struct.pack("<I", len(row)) + body


def decode_row(data: bytes) -> tuple:
    (count,) = struct.unpack_from("<I", data, 0)
    offset = 4
    values = []
    for _ in range(count):
        value, offset = decode_value(data, offset)
        values.append(value)
    return tuple(values)
