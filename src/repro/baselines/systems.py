"""Setup helpers for the paper's comparison systems."""

from __future__ import annotations

from repro.common.ledger import DiskModel, NetworkModel
from repro.core.candidates import base_design_for_plain, build_candidate
from repro.core.client import MonomiClient
from repro.core.design import HomGroup, PhysicalDesign, TechniqueFlags
from repro.core.designer import Designer
from repro.core.encdata import CryptoProvider
from repro.core.encset import EncSetExtractor
from repro.core.normalize import normalize_query
from repro.core.schemes import Scheme
from repro.engine.catalog import Database
from repro.sql import ast, parse


def cryptdb_client_setup(
    plain_db: Database,
    workload: list[str],
    master_key: bytes = b"monomi-master-key",
    paillier_bits: int = 512,
    network: NetworkModel | None = None,
    disk: DiskModel | None = None,
) -> MonomiClient:
    """CryptDB+Client (§8.2): onion-style per-column encryption, greedy
    execution, no §5 optimizations.

    The design mirrors CryptDB's onions: *every* column carries both an RND
    and a DET copy (the Eq onion's outer and inner layers both exist on
    disk), OPE where the workload ever compares or sorts, SEARCH where it
    pattern-matches, and a one-value-per-ciphertext Paillier column for
    every *plain column* that is summed (no precomputed expressions, no
    packing).  This is what gives CryptDB its 4.21x space in Table 2.
    """
    flags = TechniqueFlags.cryptdb_client()
    provider = CryptoProvider(master_key, paillier_bits=paillier_bits)
    queries = [normalize_query(parse(sql)) for sql in workload]
    schemas = {name: t.schema for name, t in plain_db.tables.items()}
    design = PhysicalDesign()
    # Onion base: RND + DET copies of every column (floats: RND only).
    for name, table in plain_db.tables.items():
        for column in table.schema.columns:
            design.add(name, ast.Column(column.name), Scheme.RND)
            if column.type != "float":
                design.add(name, ast.Column(column.name), Scheme.DET)
    # Workload-driven onions: OPE / SEARCH / per-column Paillier.
    extractor = EncSetExtractor(schemas, flags)
    designer = Designer(plain_db, provider, flags, network, det_default=False)
    for query in queries:
        for unit in extractor.extract(query):
            if not designer._unit_loadable(unit):
                continue
            for pair in unit.pairs:
                if pair.scheme is Scheme.HOM:
                    expr = parse_column(pair.expr_sql)
                    if expr is None:
                        continue  # No precomputation in CryptDB.
                    design.add_hom_group(
                        HomGroup(pair.table, (pair.expr_sql,), rows_per_ciphertext=1)
                    )
                elif pair.scheme in (Scheme.OPE, Scheme.SEARCH):
                    if parse_column(pair.expr_sql) is not None:
                        design.add(pair.table, pair.expr_sql, pair.scheme)
    return MonomiClient.setup(
        plain_db,
        workload,
        master_key=master_key,
        flags=flags,
        paillier_bits=paillier_bits,
        network=network,
        disk=disk,
        design=design,
    )


def execution_greedy_setup(
    plain_db: Database,
    workload: list[str],
    master_key: bytes = b"monomi-master-key",
    paillier_bits: int = 512,
    network: NetworkModel | None = None,
    disk: DiskModel | None = None,
) -> MonomiClient:
    """Execution-Greedy (§8.3): every MONOMI technique in the design, but
    greedy always-push-to-server execution instead of the optimizing
    planner, and a greedy (union-of-everything) design instead of the ILP.
    """
    flags = TechniqueFlags.execution_greedy()
    provider = CryptoProvider(master_key, paillier_bits=paillier_bits)
    queries = [normalize_query(parse(sql)) for sql in workload]
    design = greedy_union_design(plain_db, provider, queries, flags, network)
    return MonomiClient.setup(
        plain_db,
        workload,
        master_key=master_key,
        flags=flags,
        paillier_bits=paillier_bits,
        network=network,
        disk=disk,
        design=design,
    )


def space_greedy_design(
    plain_db: Database,
    workload: list[str],
    space_budget: float,
    master_key: bytes = b"monomi-master-key",
    paillier_bits: int = 512,
    network: NetworkModel | None = None,
    disk: DiskModel | None = None,
) -> MonomiClient:
    """§8.6's Space-Greedy baseline: full design, then delete the largest
    column until the budget is satisfied."""
    return MonomiClient.setup(
        plain_db,
        workload,
        master_key=master_key,
        space_budget=space_budget,
        designer_mode="space_greedy",
        paillier_bits=paillier_bits,
        network=network,
        disk=disk,
    )


def client_only_setup(
    plain_db: Database,
    workload: list[str],
    master_key: bytes = b"monomi-master-key",
    paillier_bits: int = 512,
    network: NetworkModel | None = None,
    disk: DiskModel | None = None,
) -> MonomiClient:
    """Ship-everything-to-the-client: RND for every column, nothing
    computable on the server (§1's naive outsourcing strawman)."""
    design = PhysicalDesign()
    for name, table in plain_db.tables.items():
        for column in table.schema.columns:
            design.add(name, ast.Column(column.name), Scheme.RND)
    return MonomiClient.setup(
        plain_db,
        workload,
        master_key=master_key,
        flags=TechniqueFlags.cryptdb_client(),
        paillier_bits=paillier_bits,
        network=network,
        disk=disk,
        design=design,
    )


def greedy_union_design(plain_db, provider, queries, flags, network=None):
    """Greedy design: every usable unit of every query, one packing layout
    per homomorphic value (columnar replaces per-row when the flag is on,
    matching the cumulative ladder in Figure 5)."""
    schemas = {name: t.schema for name, t in plain_db.tables.items()}
    extractor = EncSetExtractor(schemas, flags)
    designer = Designer(plain_db, provider, flags, network, det_default=False)
    design = base_design_for_plain(plain_db)
    for query in queries:
        units = [u for u in extractor.extract(query) if designer._unit_loadable(u)]
        if flags.columnar_agg:
            columnar_exprs = {
                (p.table, p.expr_sql)
                for u in units
                for p in u.pairs
                if p.scheme is Scheme.HOM and p.variant == "col"
            }
            units = [
                u
                for u in units
                if not any(
                    p.scheme is Scheme.HOM
                    and (p.variant or "row") == "row"
                    and (p.table, p.expr_sql) in columnar_exprs
                    for p in u.pairs
                )
            ]
        design = design.union(build_candidate(design, tuple(units), flags))
    return design


def parse_column(expr_sql: str):
    """The Column node if ``expr_sql`` is a bare column, else None."""
    from repro.sql import parse_expression

    expr = parse_expression(expr_sql)
    return expr if isinstance(expr, ast.Column) else None
