"""Comparison systems from the paper's evaluation (§8.2–§8.3, §8.6).

* :func:`cryptdb_client_setup` — **CryptDB+Client**: the paper's modified
  CryptDB strawman.  Per-column basic encryption schemes only (DET
  everywhere, OPE and SEARCH where any query compares/sorts/matches, a
  one-value-per-ciphertext Paillier column per summed *column*), none of
  MONOMI's §5 optimizations (no multi-column packing, no precomputation,
  no columnar packing, no pre-filtering), and greedy execution — push
  everything pushable, Algorithm 1 only as the client-side fallback the
  paper added on top of CryptDB.

* :func:`execution_greedy_setup` — **Execution-Greedy**: all of MONOMI's
  techniques in the physical design, but greedy plan choice instead of the
  optimizing planner (Figure 4's middle bar; the "+Other" point of
  Figure 5).

* :func:`space_greedy_design` — the §8.6 space baseline: unconstrained
  design, then drop the largest column until the budget fits.

* :func:`client_only_setup` — ship-everything-to-the-client: RND-only
  design, every operation local.  The naive outsourcing strawman from §1.
"""

from repro.baselines.systems import (
    client_only_setup,
    cryptdb_client_setup,
    execution_greedy_setup,
    greedy_union_design,
    space_greedy_design,
)

__all__ = [
    "client_only_setup",
    "cryptdb_client_setup",
    "execution_greedy_setup",
    "greedy_union_design",
    "space_greedy_design",
]
