"""Shared helpers for the test suite and the benchmark harness.

``tests/conftest.py`` and ``benchmarks/conftest.py`` are separate pytest
rootdirs; anything both need lives here (importable as ``repro.testkit``)
so neither conftest ever imports the other — cross-conftest imports resolve
to whichever directory pytest collected first and break collection.
"""

from __future__ import annotations

import datetime
import math
import random
import threading
import time

from repro.engine import Database, schema

MASTER_KEY = b"test-master-key-0123456789abcdef"

SALES_WORKLOAD = [
    "SELECT o_custkey, SUM(o_price * o_qty) AS rev FROM orders "
    "WHERE o_price > 500 GROUP BY o_custkey ORDER BY rev DESC",
    "SELECT c_segment, SUM(o_price) AS total, COUNT(*) AS n FROM orders, customer "
    "WHERE o_custkey = c_custkey AND o_date >= DATE '1995-06-01' GROUP BY c_segment",
    "SELECT o_custkey, SUM(o_qty) AS q FROM orders GROUP BY o_custkey "
    "HAVING SUM(o_qty) > 120 ORDER BY q DESC",
    "SELECT COUNT(*) FROM orders WHERE o_comment LIKE '%brown%'",
    "SELECT o_orderkey, o_price FROM orders WHERE o_price BETWEEN 100 AND 900 "
    "ORDER BY o_price LIMIT 12",
]


def build_sales_db(num_orders: int = 240, seed: int = 11) -> Database:
    """A small two-table sales database with repeated categorical values."""
    rng = random.Random(seed)
    db = Database("sales")
    orders = db.create_table(
        schema(
            "orders",
            ("o_orderkey", "int"),
            ("o_custkey", "int"),
            ("o_price", "int"),
            ("o_qty", "int"),
            ("o_discount", "int"),
            ("o_date", "date"),
            ("o_status", "text"),
            ("o_comment", "text"),
        )
    )
    comments = [
        "quick brown fox jumps",
        "lazy dog sleeps soundly",
        "green ideas sleep furiously",
        "red brown cat purrs",
        "silent blue whale sings",
    ]
    for i in range(1, num_orders + 1):
        orders.insert(
            (
                i,
                rng.randint(1, 30),
                rng.randint(10, 5000),
                rng.randint(1, 50),
                rng.randint(0, 10),
                datetime.date(1995, 1, 1) + datetime.timedelta(days=rng.randint(0, 999)),
                rng.choice(["OPEN", "SHIPPED", "RETURNED"]),
                rng.choice(comments),
            )
        )
    customer = db.create_table(
        schema(
            "customer",
            ("c_custkey", "int"),
            ("c_name", "text"),
            ("c_segment", "text"),
            ("c_balance", "int"),
            ("c_nation", "text"),
        )
    )
    nations = ["FRANCE", "GERMANY", "BRAZIL", "JAPAN", "KENYA"]
    for i in range(1, 31):
        customer.insert(
            (
                i,
                f"Customer#{i:04d}",
                rng.choice(["BUILDING", "AUTOMOBILE", "MACHINERY"]),
                rng.randint(0, 100_000),
                rng.choice(nations),
            )
        )
    return db


def apply_plain_dml(db: Database, sql: str, params: dict | None = None) -> int:
    """Plaintext oracle for encrypted DML: apply a statement to ``db``.

    Evaluates the same normalized AST the encrypted path executes, but
    directly against the plaintext table — the differential suites compare
    every analytic query (and the returned row count) against this.
    """
    from repro.core.normalize import normalize_dml
    from repro.engine.eval import EvalContext, Scope, compile_expr
    from repro.sql import ast, parse_statement

    statement = normalize_dml(parse_statement(sql), params)
    table = db.table(statement.table)
    names = list(table.schema.column_names)
    scope = Scope([(statement.table, c) for c in names])
    ctx = EvalContext()
    if isinstance(statement, ast.Insert):
        positions = (
            [names.index(c) for c in statement.columns]
            if statement.columns
            else list(range(len(names)))
        )
        empty = Scope([])
        for value_row in statement.rows:
            filled = [None] * len(names)
            for pos, expr in zip(positions, value_row):
                filled[pos] = compile_expr(expr, empty, ctx)(())
            table.insert(tuple(filled))
        return len(statement.rows)
    where = statement.where
    match = (
        compile_expr(where, scope, ctx) if where is not None else (lambda row: True)
    )
    if isinstance(statement, ast.Delete):
        dead = [row for row in table.rows if match(row)]
        return table.delete_exact(dead)
    assign = [
        (names.index(a.column), compile_expr(a.value, scope, ctx))
        for a in statement.assignments
    ]
    pairs = []
    for row in table.rows:
        if match(row):
            out = list(row)
            for index, fn in assign:
                out[index] = fn(row)
            pairs.append((row, tuple(out)))
    return table.replace_exact(pairs)


def canonical(rows) -> list[str]:
    """Order-insensitive, float-tolerant row comparison form."""
    out = []
    for row in rows:
        out.append(
            tuple(round(v, 6) if isinstance(v, float) else v for v in row)
        )
    return sorted(str(r) for r in out)


def extra_threads(baseline: set, timeout: float = 5.0) -> list:
    """Threads alive beyond ``baseline`` after letting shutdown settle.

    Leak assertions snapshot ``set(threading.enumerate())`` before the
    work under test, then assert this returns ``[]`` afterwards; the
    polling window absorbs the scheduling delay between closing a
    resource and its worker threads actually exiting.
    """
    limit = time.monotonic() + timeout
    while True:
        extra = [
            t
            for t in threading.enumerate()
            if t not in baseline and t.is_alive()
        ]
        if not extra or time.monotonic() >= limit:
            return extra
        time.sleep(0.02)


def geometric_mean(values: list[float]) -> float:
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))
