"""Sharded execution over TCP: N shard servers behind one coordinator.

The deployment dual of :class:`~repro.server.sharded.ShardedBackend`:
load in-process (``RemoteBackend`` is deliberately load-read-only), then
host each shard with its own :class:`~repro.net.MonomiServer` and
re-point the coordinator at N ``RemoteBackend`` connections via
``with_shards``.  The coordinator state — routing registry, logical byte
counts, replicated tables, ciphertext store — stays local and shared, so
query plans, merge behavior, and the ledger are identical to the
in-process topology.
"""

from __future__ import annotations

from repro.net.client import RemoteBackend
from repro.net.server import MonomiServer
from repro.server.sharded import ShardedBackend


class ShardCluster:
    """N running shard servers plus the re-pointed coordinator.

    Context manager: closing stops every server and closes the remote
    connections (the loaded in-process backend is left untouched).
    """

    def __init__(
        self, servers: list[MonomiServer], backend: ShardedBackend
    ) -> None:
        self.servers = servers
        self.backend = backend

    @property
    def addresses(self) -> list[str]:
        return [server.address for server in self.servers]

    def __enter__(self) -> "ShardCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self.backend.close()  # Closes the RemoteBackend connections.
        for server in self.servers:
            server.close()


def serve_shards(
    sharded: ShardedBackend,
    host: str = "127.0.0.1",
    connect_timeout: float = 10.0,
    socket_timeout: float = 120.0,
) -> ShardCluster:
    """Host every shard of a loaded ``ShardedBackend`` over TCP loopback.

    Each shard gets its own :class:`MonomiServer` (ephemeral port) and a
    fresh :class:`RemoteBackend` dialed to it; the returned cluster's
    ``backend`` is ``sharded.with_shards(remotes)`` — the same loaded
    coordinator, scatter-gathering over sockets.
    """
    servers: list[MonomiServer] = []
    remotes: list[RemoteBackend] = []
    try:
        for shard in sharded.shards:
            server = MonomiServer(shard, host=host).start()
            servers.append(server)
            remotes.append(
                RemoteBackend(
                    server.address,
                    connect_timeout=connect_timeout,
                    socket_timeout=socket_timeout,
                )
            )
    except BaseException:
        for remote in remotes:
            remote.close()
        for server in servers:
            server.close()
        raise
    return ShardCluster(servers, sharded.with_shards(remotes))


__all__ = ["ShardCluster", "serve_shards"]
