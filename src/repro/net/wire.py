"""Length-prefixed binary wire protocol for the client/server boundary.

The paper's threat model is an untrusted server on the far side of a
network link; this module defines the one seam everything crosses it
through.  Three layers, bottom-up:

* **Framing** — every message is one frame: an 8-byte header
  (``b"MW"`` magic, protocol version, frame type, payload length) plus a
  length-prefixed payload.  :class:`FrameDecoder` consumes a byte stream
  incrementally and never over-reads: a frame is surfaced only once its
  declared payload has fully arrived, and malformed headers (bad magic,
  unknown type, oversized length, wrong version) raise typed
  :class:`~repro.common.errors.WireError` subclasses the moment the
  header is visible — garbage cannot make the decoder hang or allocate
  unboundedly.

* **Value codec** — a self-describing tagged encoding of exactly the
  value domain that crosses MONOMI's split-execution boundary: SQL
  scalars, big OPE/DET integers, ``grp()`` tuples, DET IN-set
  frozensets, :class:`~repro.engine.aggregates.HomAggResult` and its
  :class:`~repro.crypto.packing.PackedLayout`, and query ASTs
  (structural encoding over a class whitelist — never SQL text, which
  would re-parse).  Decoding preserves the exact Python type of every
  value (``bool`` is not ``int``, ``tuple`` is not ``frozenset``)
  because :func:`~repro.storage.rowcodec.value_bytes` sizes them
  differently and the ledger contract demands byte-identical accounting
  on both sides of the socket.

* **Error mapping** — exceptions serialize as ``(code, message,
  transient)`` triples.  Known codes decode to the same class from
  :mod:`repro.common.errors`, so the PR 6 taxonomy survives the wire:
  the resume/retry layers see the same types they see in-process.
  Unknown codes degrade to :class:`~repro.common.errors.TransientError`
  or :class:`~repro.common.errors.RemoteError` by the ``transient`` bit.

Compatibility rule: the version byte is exact-match (v1 peers reject
everything else with :class:`UnsupportedVersionError`); within a
version, message payloads are dicts and receivers ignore unknown keys,
so additive evolution does not need a version bump.
"""

from __future__ import annotations

import dataclasses
import socket
import struct
from datetime import date

from repro.common import errors as _errors
from repro.common.errors import (
    CodecError,
    ConnectionLostError,
    FramingError,
    RemoteError,
    ReproError,
    TransientError,
    UnsupportedVersionError,
)
from repro.crypto.packing import PackedLayout
from repro.engine.aggregates import HomAggResult
from repro.sql import ast

# -- framing ------------------------------------------------------------------

#: Two magic bytes opening every frame ("Monomi Wire").
MAGIC = b"MW"

#: Protocol version.  Exact-match: peers speaking any other version are
#: rejected with :class:`UnsupportedVersionError` at the framing layer.
VERSION = 1

#: Frame header: magic, version, frame type, payload length (big-endian).
HEADER = struct.Struct(">2sBBI")
HEADER_BYTES = HEADER.size

#: Frame types.  One request/response vocabulary, small on purpose.
HELLO = 1
EXECUTE = 2
PREPARE = 3
BLOCK = 4
LEDGER = 5
ERROR = 6
CANCEL = 7
WRITE = 8
WRITE_RESULT = 9

FRAME_NAMES = {
    HELLO: "HELLO",
    EXECUTE: "EXECUTE",
    PREPARE: "PREPARE",
    BLOCK: "BLOCK",
    LEDGER: "LEDGER",
    ERROR: "ERROR",
    CANCEL: "CANCEL",
    WRITE: "WRITE",
    WRITE_RESULT: "WRITE_RESULT",
}

#: Ceiling on one frame's payload.  A 4,096-row block of 2048-bit
#: Paillier ciphertexts is ~2 MB; 64 MB leaves an order of magnitude of
#: headroom while bounding what a hostile length prefix can make a
#: receiver buffer.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024


def encode_frame(ftype: int, payload: bytes) -> bytes:
    """One wire frame: header + payload."""
    if ftype not in FRAME_NAMES:
        raise FramingError(f"unknown frame type {ftype}")
    return HEADER.pack(MAGIC, VERSION, ftype, len(payload)) + payload


class FrameDecoder:
    """Incremental, transport-agnostic frame decoder.

    Feed it bytes as they arrive; :meth:`next_frame` returns one complete
    ``(frame_type, payload)`` or ``None`` while the buffer holds only a
    partial frame.  Header validation happens as soon as the 8 header
    bytes are visible — a bad magic/version/type/length raises before any
    payload is awaited, so malformed input fails fast instead of making
    the receiver wait for bytes that will never come.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self._max = max_frame_bytes

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet surfaced as a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> None:
        self._buffer += data

    def next_frame(self) -> tuple[int, bytes] | None:
        if len(self._buffer) < HEADER_BYTES:
            return None
        magic, version, ftype, length = HEADER.unpack_from(self._buffer)
        if magic != MAGIC:
            raise FramingError(
                f"bad frame magic {bytes(magic)!r} (expected {MAGIC!r})"
            )
        if version != VERSION:
            raise UnsupportedVersionError(
                f"peer speaks wire protocol v{version}; this build speaks "
                f"v{VERSION} only"
            )
        if ftype not in FRAME_NAMES:
            raise FramingError(f"unknown frame type {ftype}")
        if length > self._max:
            raise FramingError(
                f"oversized frame: {length} payload bytes exceeds the "
                f"{self._max}-byte limit"
            )
        if len(self._buffer) < HEADER_BYTES + length:
            return None
        payload = bytes(self._buffer[HEADER_BYTES : HEADER_BYTES + length])
        del self._buffer[: HEADER_BYTES + length]
        return ftype, payload


# -- value codec --------------------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT64 = 0x03
_T_BIGINT = 0x04
_T_FLOAT = 0x05
_T_STR = 0x06
_T_BYTES = 0x07
_T_DATE = 0x08
_T_TUPLE = 0x09
_T_LIST = 0x0A
_T_FROZENSET = 0x0B
_T_DICT = 0x0C
_T_HOMAGG = 0x0D
_T_LAYOUT = 0x0E
_T_NODE = 0x0F

_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")
_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

#: Nesting ceiling for encoded values.  Left-deep AND chains and CASE
#: arms go a few dozen deep on real workloads; 200 is far past anything
#: the planner emits while keeping hostile deeply-nested payloads from
#: exhausting the decoder's stack.
MAX_DEPTH = 200

# AST whitelist: every dataclass the repro.sql.ast module defines, by
# name.  Structural encoding over this table round-trips query trees
# without an SQL-text detour (printing + re-parsing would have to prove
# itself bijective for huge ciphertext literals and rewritten LIKEs).
_AST_CLASSES: dict[str, type] = {
    name: obj
    for name, obj in vars(ast).items()
    if isinstance(obj, type) and dataclasses.is_dataclass(obj)
}
_AST_FIELDS: dict[str, tuple[str, ...]] = {
    name: tuple(f.name for f in dataclasses.fields(cls))
    for name, cls in _AST_CLASSES.items()
}


def _encode_into(out: bytearray, value: object, depth: int) -> None:
    if depth > MAX_DEPTH:
        raise CodecError(f"value nesting exceeds {MAX_DEPTH} levels")
    kind = type(value)
    if value is None:
        out.append(_T_NONE)
    elif kind is bool:
        out.append(_T_TRUE if value else _T_FALSE)
    elif kind is int:
        if _I64_MIN <= value <= _I64_MAX:
            out.append(_T_INT64)
            out += _I64.pack(value)
        else:
            magnitude = abs(value)
            raw = magnitude.to_bytes((magnitude.bit_length() + 7) // 8, "big")
            out.append(_T_BIGINT)
            out.append(1 if value < 0 else 0)
            out += _U32.pack(len(raw))
            out += raw
    elif kind is float:
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif kind is str:
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += _U32.pack(len(raw))
        out += raw
    elif kind is bytes:
        out.append(_T_BYTES)
        out += _U32.pack(len(value))
        out += value
    elif kind is date:
        out.append(_T_DATE)
        out += _U32.pack(value.toordinal())
    elif kind is tuple or kind is list:
        out.append(_T_TUPLE if kind is tuple else _T_LIST)
        out += _U32.pack(len(value))
        for item in value:
            _encode_into(out, item, depth + 1)
    elif kind is frozenset:
        # Sort by encoded bytes: set iteration order is arbitrary, and a
        # deterministic wire image keeps captures/replays stable.
        encoded: list[bytes] = []
        for item in value:
            piece = bytearray()
            _encode_into(piece, item, depth + 1)
            encoded.append(bytes(piece))
        encoded.sort()
        out.append(_T_FROZENSET)
        out += _U32.pack(len(encoded))
        for piece in encoded:
            out += piece
    elif kind is dict:
        out.append(_T_DICT)
        out += _U32.pack(len(value))
        for key, item in value.items():
            if type(key) is not str:
                raise CodecError(
                    f"dict keys must be str, got {type(key).__name__}"
                )
            _encode_into(out, key, depth + 1)
            _encode_into(out, item, depth + 1)
    elif kind is HomAggResult:
        out.append(_T_HOMAGG)
        _encode_into(out, value.file_name, depth + 1)
        _encode_into(out, value.column_names, depth + 1)
        _encode_into(out, value.product, depth + 1)
        _encode_into(out, value.partials, depth + 1)
        _encode_into(out, value.multiplications, depth + 1)
        _encode_into(out, value.ciphertext_bytes, depth + 1)
        _encode_into(out, value.layout, depth + 1)
    elif kind is PackedLayout:
        out.append(_T_LAYOUT)
        _encode_into(out, value.column_bits, depth + 1)
        _encode_into(out, value.pad_bits, depth + 1)
        _encode_into(out, value.plaintext_bits, depth + 1)
    elif kind.__name__ in _AST_CLASSES and _AST_CLASSES[kind.__name__] is kind:
        name = kind.__name__
        raw_name = name.encode("ascii")
        fields = _AST_FIELDS[name]
        out.append(_T_NODE)
        out.append(len(raw_name))
        out += raw_name
        out.append(len(fields))
        for field_name in fields:
            _encode_into(out, getattr(value, field_name), depth + 1)
    else:
        raise CodecError(f"cannot encode value of type {kind.__name__}")


def encode_value(value: object) -> bytes:
    """Encode one value (scalar, container, AST node, message dict)."""
    out = bytearray()
    _encode_into(out, value, 0)
    return bytes(out)


class _Reader:
    """Bounds-checked cursor over an encoded payload."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def remaining(self) -> int:
        return len(self.data) - self.pos

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise CodecError(
                f"truncated value: wanted {count} bytes, "
                f"{len(self.data) - self.pos} remain"
            )
        piece = self.data[self.pos : end]
        self.pos = end
        return piece

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def count(self, per_item_min: int = 1) -> int:
        """A container length prefix, sanity-bounded by the bytes left:
        every element needs at least ``per_item_min`` bytes, so a count
        the payload cannot possibly hold is rejected before allocation."""
        n = self.u32()
        if n * per_item_min > self.remaining():
            raise CodecError(
                f"container count {n} exceeds the {self.remaining()} "
                "payload bytes remaining"
            )
        return n


def _decode_from(reader: _Reader, depth: int) -> object:
    if depth > MAX_DEPTH:
        raise CodecError(f"value nesting exceeds {MAX_DEPTH} levels")
    tag = reader.u8()
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT64:
        return _I64.unpack(reader.take(8))[0]
    if tag == _T_BIGINT:
        sign = reader.u8()
        if sign not in (0, 1):
            raise CodecError(f"bad bigint sign byte {sign}")
        magnitude = int.from_bytes(reader.take(reader.u32()), "big")
        return -magnitude if sign else magnitude
    if tag == _T_FLOAT:
        return _F64.unpack(reader.take(8))[0]
    if tag == _T_STR:
        raw = reader.take(reader.u32())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid utf-8 in string value: {exc}") from None
    if tag == _T_BYTES:
        return reader.take(reader.u32())
    if tag == _T_DATE:
        ordinal = reader.u32()
        try:
            return date.fromordinal(ordinal)
        except (ValueError, OverflowError):
            raise CodecError(f"bad date ordinal {ordinal}") from None
    if tag == _T_TUPLE:
        n = reader.count()
        return tuple(_decode_from(reader, depth + 1) for _ in range(n))
    if tag == _T_LIST:
        n = reader.count()
        return [_decode_from(reader, depth + 1) for _ in range(n)]
    if tag == _T_FROZENSET:
        n = reader.count()
        try:
            return frozenset(_decode_from(reader, depth + 1) for _ in range(n))
        except TypeError as exc:
            raise CodecError(f"unhashable frozenset member: {exc}") from None
    if tag == _T_DICT:
        n = reader.count(per_item_min=2)
        items = {}
        for _ in range(n):
            key = _decode_from(reader, depth + 1)
            if type(key) is not str:
                raise CodecError(
                    f"dict keys must be str, got {type(key).__name__}"
                )
            items[key] = _decode_from(reader, depth + 1)
        return items
    if tag == _T_HOMAGG:
        fields = [_decode_from(reader, depth + 1) for _ in range(7)]
        file_name, column_names, product, partials, mults, ct_bytes, layout = fields
        if (
            type(file_name) is not str
            or type(column_names) is not tuple
            or not (product is None or type(product) is int)
            or type(partials) is not tuple
            or type(mults) is not int
            or type(ct_bytes) is not int
            or not (layout is None or type(layout) is PackedLayout)
        ):
            raise CodecError("malformed hom_agg result payload")
        return HomAggResult(
            file_name, column_names, product, partials, mults, ct_bytes, layout
        )
    if tag == _T_LAYOUT:
        column_bits = _decode_from(reader, depth + 1)
        pad_bits = _decode_from(reader, depth + 1)
        plaintext_bits = _decode_from(reader, depth + 1)
        try:
            return PackedLayout(column_bits, pad_bits, plaintext_bits)
        except (ReproError, TypeError) as exc:
            raise CodecError(f"invalid packed layout: {exc}") from None
    if tag == _T_NODE:
        raw_name = reader.take(reader.u8())
        try:
            name = raw_name.decode("ascii")
        except UnicodeDecodeError:
            raise CodecError(f"bad AST node name {raw_name!r}") from None
        cls = _AST_CLASSES.get(name)
        if cls is None:
            raise CodecError(f"unknown AST node type {name!r}")
        arity = reader.u8()
        expected = _AST_FIELDS[name]
        if arity != len(expected):
            raise CodecError(
                f"AST node {name} carries {arity} fields, "
                f"expected {len(expected)}"
            )
        values = [_decode_from(reader, depth + 1) for _ in range(arity)]
        try:
            return cls(*values)
        except (TypeError, ValueError, ReproError) as exc:
            raise CodecError(f"cannot build AST node {name}: {exc}") from None
    raise CodecError(f"unknown value tag 0x{tag:02x}")


def decode_value(payload: bytes) -> object:
    """Decode one encoded value; the payload must be exactly one value."""
    reader = _Reader(payload)
    value = _decode_from(reader, 0)
    if reader.remaining():
        raise CodecError(
            f"{reader.remaining()} trailing bytes after the encoded value"
        )
    return value


def encode_message(ftype: int, message: dict) -> bytes:
    """One complete frame whose payload is an encoded message dict."""
    return encode_frame(ftype, encode_value(message))


def decode_message(payload: bytes) -> dict:
    message = decode_value(payload)
    if type(message) is not dict:
        raise CodecError(
            f"frame payload must be a message dict, "
            f"got {type(message).__name__}"
        )
    return message


# -- error mapping ------------------------------------------------------------

# Every concrete error class the taxonomy exports, by name.  Both sides
# share this table, so a typed error raised server-side re-raises as the
# *same type* client-side and the retry/resume layers behave as they do
# in-process.
_ERROR_CLASSES: dict[str, type] = {
    name: obj
    for name, obj in vars(_errors).items()
    if isinstance(obj, type) and issubclass(obj, ReproError)
}


def encode_error(exc: BaseException, bytes_scanned: int | None = None) -> dict:
    """The ERROR frame body for one exception."""
    name = type(exc).__name__
    if name not in _ERROR_CLASSES:
        name = "TransientError" if isinstance(exc, TransientError) else "RemoteError"
    body: dict = {
        "code": name,
        "message": str(exc),
        "transient": isinstance(exc, TransientError),
    }
    if bytes_scanned is not None:
        body["bytes_scanned"] = bytes_scanned
    return body


def decode_error(message: dict) -> ReproError:
    """Rebuild the typed exception an ERROR frame carries."""
    code = message.get("code")
    text = str(message.get("message", "remote error"))
    cls = _ERROR_CLASSES.get(code) if type(code) is str else None
    if cls is not None:
        try:
            return cls(text)
        except TypeError:
            pass  # Non-standard constructor (LexError): fall through.
    if message.get("transient"):
        return TransientError(text)
    return RemoteError(f"{code}: {text}" if code else text)


# -- socket helpers -----------------------------------------------------------


def send_message(sock: socket.socket, ftype: int, message: dict) -> None:
    """Send one frame.  ``sendall`` blocks until the kernel accepts every
    byte — that synchronous push **is** the protocol's backpressure: a
    server streaming blocks to a slow consumer parks here once the TCP
    window fills, holding O(1) blocks in memory, and resumes exactly as
    fast as the client drains (the PR 3 bounded-queue contract, enforced
    by the transport instead of a queue)."""
    try:
        sock.sendall(encode_message(ftype, message))
    except (BrokenPipeError, ConnectionResetError, OSError) as exc:
        raise ConnectionLostError(f"connection lost while sending: {exc}") from exc


def recv_frame(
    sock: socket.socket, decoder: FrameDecoder, eof_ok: bool = False
) -> tuple[int, bytes] | None:
    """Read bytes until ``decoder`` surfaces one frame.

    Returns ``None`` on a clean EOF at a frame boundary when ``eof_ok``
    (how idle peers hang up); EOF anywhere else is
    :class:`ConnectionLostError` — the transport's version of a
    truncated stream, and transient for the same reason.
    """
    while True:
        frame = decoder.next_frame()
        if frame is not None:
            return frame
        try:
            data = sock.recv(1 << 16)
        except TimeoutError as exc:
            raise ConnectionLostError(
                "timed out waiting for a frame"
            ) from exc
        except (ConnectionResetError, OSError) as exc:
            raise ConnectionLostError(f"connection lost: {exc}") from exc
        if not data:
            if eof_ok and decoder.pending == 0:
                return None
            raise ConnectionLostError(
                "connection closed mid-frame"
                if decoder.pending
                else "connection closed before a response arrived"
            )
        decoder.feed(data)


def recv_message(
    sock: socket.socket, decoder: FrameDecoder, eof_ok: bool = False
) -> tuple[int, dict] | None:
    """One frame, payload decoded to its message dict."""
    frame = recv_frame(sock, decoder, eof_ok=eof_ok)
    if frame is None:
        return None
    ftype, payload = frame
    return ftype, decode_message(payload)
