"""The network layer: MONOMI's trust boundary, actually on a socket.

``wire`` defines the length-prefixed frame protocol and value codec,
``server`` hosts any :class:`~repro.server.backend.ServerBackend` over
TCP, and ``client`` provides :class:`RemoteBackend` — the same backend
seam, dialed instead of imported.  ``MonomiClient.connect(address, ...)``
is the front door.
"""

from repro.net.client import RemoteBackend, parse_address
from repro.net.server import MonomiServer
from repro.net.sharded import ShardCluster, serve_shards
from repro.net.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecoder,
    VERSION,
    decode_error,
    decode_message,
    decode_value,
    encode_error,
    encode_frame,
    encode_message,
    encode_value,
)

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameDecoder",
    "MonomiServer",
    "RemoteBackend",
    "ShardCluster",
    "VERSION",
    "decode_error",
    "decode_message",
    "decode_value",
    "encode_error",
    "encode_frame",
    "encode_message",
    "encode_value",
    "parse_address",
    "serve_shards",
]
