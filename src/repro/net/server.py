"""MonomiServer: the untrusted server actually behind a socket.

Hosts any :class:`~repro.server.backend.ServerBackend` over TCP,
thread-per-connection.  Each connection is one *session*: it gets its
own ``worker_view()`` of the backend (the same isolation the in-process
service layer gives each worker thread) and a cumulative server-side
:class:`~repro.common.ledger.CostLedger` whose transfer/scan byte counts
are computed with exactly the client's accounting rules — on a
fault-free run the server's ledger for a session matches the client's
ledger for the same queries byte-for-byte.

Backpressure is the transport: blocks are pushed with ``sendall``, so a
consumer that stops pulling parks the producer on a full TCP window with
O(1) blocks of server memory — the PR 3 bounded-queue contract, enforced
by the kernel's socket buffers instead of a queue.  Between blocks the
server polls the connection for a CANCEL frame, so a client closing its
stream early releases the server cursor promptly.

Fault injection: pass ``chaos=(seed, rate)`` to wrap the hosted backend
in the PR 6 :class:`~repro.server.chaos.FaultInjectingBackend` (or set
``MONOMI_CHAOS`` — the server arms it like any other client of the
backend), and ``drop_rate``/``drop_seed`` to sever connections abruptly
after a block send — the failure mode only a real socket has, which the
client maps to a transient :class:`ConnectionLostError` and resumes
across a reconnect.
"""

from __future__ import annotations

import random
import select
import socket
import threading

from repro.common.errors import (
    ConfigError,
    ConnectionLostError,
    ReproError,
    WireError,
)
from repro.common.ledger import CostLedger, NetworkModel
from repro.common.retry import Deadline
from repro.engine.rowblock import (
    DEFAULT_BLOCK_ROWS,
    BlockStream,
    blocks_from_rows,
    result_header_bytes,
)
from repro.net import wire
from repro.server.backend import ServerBackend, as_backend, supports_partitions
from repro.server.chaos import FaultInjectingBackend, maybe_wrap_chaos
from repro.sql import ast

#: Cap on prepared statements one session may hold.
MAX_PREPARED_PER_SESSION = 4096


class _DropConnection(Exception):
    """Internal: the drop injector decided to sever this connection."""


class _Session:
    """One connection's server-side state."""

    def __init__(self, session_id: int, view: ServerBackend) -> None:
        self.id = session_id
        self.view = view
        self.ledger = CostLedger()
        self.prepared: dict[int, ast.Select] = {}
        self.next_statement = 1
        self.queries = 0
        self.blocks_sent = 0
        self.errors_sent = 0
        self.cancels = 0


class MonomiServer:
    """Serve one backend's encrypted tables over a TCP wire protocol."""

    def __init__(
        self,
        backend: object,
        host: str = "127.0.0.1",
        port: int = 0,
        chaos: tuple[int, float] | None = None,
        drop_rate: float = 0.0,
        drop_seed: int = 0,
        max_frame_bytes: int = wire.DEFAULT_MAX_FRAME_BYTES,
        network: NetworkModel | None = None,
        backlog: int = 64,
    ) -> None:
        base = as_backend(backend)
        if chaos is not None:
            seed, rate = chaos
            base = FaultInjectingBackend(base, seed=seed, rate=rate)
        else:
            base = maybe_wrap_chaos(base)
        self.backend = base
        self._host = host
        self._port = port
        self._backlog = backlog
        self._max_frame_bytes = max_frame_bytes
        self._network = network if network is not None else NetworkModel()
        if not 0.0 <= drop_rate <= 1.0:
            raise ConfigError(f"drop_rate must be in [0, 1], got {drop_rate}")
        self._drop_rate = drop_rate
        self._drop_rng = random.Random(drop_seed)
        self._lock = threading.Lock()
        # One server-wide write lock: DML and hom maintenance from
        # concurrent sessions serialize here (worker views delegate
        # writes to the one parent backend, which has a single write
        # connection/state; reads keep their per-view concurrency).
        self._write_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._closed = False
        self._next_session = 1
        self._sessions: dict[int, _Session] = {}
        self._connections: dict[int, tuple[socket.socket, threading.Thread]] = {}
        self._connections_total = 0
        self._drops_injected = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "MonomiServer":
        if self._listener is not None:
            raise ConfigError("server already started")
        self._listener = socket.create_server(
            (self._host, self._port), backlog=self._backlog
        )
        self._host, self._port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="monomi-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            listener = self._listener
            open_connections = list(self._connections.values())
        if listener is not None:
            try:
                # close() alone does not wake a thread blocked in
                # accept() on Linux; shutdown() does.
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            listener.close()
        for sock, _thread in open_connections:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for _sock, thread in open_connections:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MonomiServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        if self._listener is None:
            raise ConfigError("server not started")
        return self._port

    @property
    def address(self) -> str:
        """``host:port``, the string :meth:`MonomiClient.connect` takes."""
        return f"{self.host}:{self.port}"

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """Server-wide counters (plus chaos counters when armed)."""
        with self._lock:
            sessions = list(self._sessions.values())
            body: dict = {
                "connections_total": self._connections_total,
                "connections_open": len(self._connections),
                "sessions": len(sessions),
                "drops_injected": self._drops_injected,
            }
        body["queries"] = sum(s.queries for s in sessions)
        body["blocks_sent"] = sum(s.blocks_sent for s in sessions)
        body["errors_sent"] = sum(s.errors_sent for s in sessions)
        body["cancels"] = sum(s.cancels for s in sessions)
        body["transfer_bytes"] = sum(s.ledger.transfer_bytes for s in sessions)
        body["server_bytes_scanned"] = sum(
            s.ledger.server_bytes_scanned for s in sessions
        )
        if isinstance(self.backend, FaultInjectingBackend):
            body["chaos"] = self.backend.stats()
        return body

    def session_ledgers(self) -> list[CostLedger]:
        """Per-session cumulative ledgers (every session ever opened)."""
        with self._lock:
            return [s.ledger for s in self._sessions.values()]

    # -- accept/serve --------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        assert listener is not None
        while True:
            try:
                sock, _addr = listener.accept()
            except OSError:
                return  # Listener closed: shutting down.
            with self._lock:
                if self._closed:
                    sock.close()
                    return
                self._connections_total += 1
                conn_id = self._connections_total
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn_id, sock),
                name=f"monomi-server-conn-{conn_id}",
                daemon=True,
            )
            with self._lock:
                self._connections[conn_id] = (sock, thread)
            thread.start()

    def _serve_connection(self, conn_id: int, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        decoder = wire.FrameDecoder(self._max_frame_bytes)
        session: _Session | None = None
        try:
            while True:
                incoming = wire.recv_message(sock, decoder, eof_ok=True)
                if incoming is None:
                    return  # Client hung up cleanly between requests.
                ftype, body = incoming
                if ftype == wire.HELLO:
                    session = self._open_session()
                    wire.send_message(sock, wire.HELLO, self._hello_body(session))
                elif session is None:
                    raise wire.FramingError(
                        f"first frame must be HELLO, "
                        f"got {wire.FRAME_NAMES[ftype]}"
                    )
                elif ftype == wire.PREPARE:
                    self._handle_prepare(sock, session, body)
                elif ftype == wire.EXECUTE:
                    self._handle_execute(sock, decoder, session, body)
                elif ftype == wire.WRITE:
                    self._handle_write(sock, session, body)
                elif ftype == wire.CANCEL:
                    pass  # Stale cancel for a stream that already ended.
                else:
                    raise wire.FramingError(
                        f"unexpected {wire.FRAME_NAMES[ftype]} frame"
                    )
        except _DropConnection:
            with self._lock:
                self._drops_injected += 1
        except WireError as exc:
            # Protocol violation: tell the peer (best effort), then close.
            try:
                wire.send_message(sock, wire.ERROR, wire.encode_error(exc))
            except ReproError:
                pass
        except ConnectionLostError:
            pass  # Peer vanished; nothing to report to.
        finally:
            if session is not None:
                close_view = getattr(session.view, "close", None)
                if close_view is not None:
                    close_view()
            try:
                sock.close()
            except OSError:
                pass
            with self._lock:
                self._connections.pop(conn_id, None)

    # -- request handlers ----------------------------------------------------

    def _open_session(self) -> _Session:
        with self._lock:
            session_id = self._next_session
            self._next_session += 1
        view = self.backend.worker_view()
        session = _Session(session_id, view)
        with self._lock:
            self._sessions[session_id] = session
        return session

    def _catalog_body(self) -> dict:
        """Table heap sizes + ciphertext-file metadata: shipped in HELLO
        and refreshed in every WRITE_RESULT (writes change both)."""
        backend = self.backend
        store = backend.ciphertext_store
        files = []
        for name in store.names():
            file = store.get(name)
            files.append(
                {
                    "name": name,
                    "rows_per_ciphertext": file.rows_per_ciphertext,
                    "ciphertext_bytes": file.ciphertext_bytes,
                    "total_bytes": file.total_bytes,
                }
            )
        return {
            "tables": {
                name: backend.table_bytes(name)
                for name in backend.table_names()
            },
            "ciphertext_files": files,
        }

    def _hello_body(self, session: _Session) -> dict:
        body = {
            "server": "monomi",
            "kind": self.backend.kind,
            "session": session.id,
        }
        body.update(self._catalog_body())
        return body

    def _handle_prepare(
        self, sock: socket.socket, session: _Session, body: dict
    ) -> None:
        query = body.get("query")
        if not isinstance(query, ast.Select):
            session.errors_sent += 1
            wire.send_message(
                sock,
                wire.ERROR,
                wire.encode_error(
                    wire.CodecError("PREPARE payload carries no Select query")
                ),
            )
            return
        if len(session.prepared) >= MAX_PREPARED_PER_SESSION:
            session.errors_sent += 1
            wire.send_message(
                sock,
                wire.ERROR,
                wire.encode_error(
                    ConfigError(
                        f"session holds {len(session.prepared)} prepared "
                        "statements; limit reached"
                    )
                ),
            )
            return
        statement_id = session.next_statement
        session.next_statement += 1
        session.prepared[statement_id] = query
        wire.send_message(sock, wire.PREPARE, {"statement": statement_id})

    def _apply_write(self, view: ServerBackend, body: dict) -> dict:
        """Dispatch one WRITE body to the backend write surface."""
        op = body.get("op")
        table = body.get("table")
        file_name = body.get("file")
        if op == "insert":
            rows = [tuple(r) for r in body.get("rows") or []]
            view.insert_rows(table, rows)
            return {"count": len(rows)}
        if op == "delete":
            rows = [tuple(r) for r in body.get("rows") or []]
            return {"count": view.delete_rows(table, rows)}
        if op == "replace":
            pairs = [
                (tuple(old), tuple(new))
                for old, new in body.get("pairs") or []
            ]
            return {"count": view.replace_rows(table, pairs)}
        if op == "hom_apply":
            view.hom_apply(
                file_name,
                updates=[
                    (int(i), int(f)) for i, f in body.get("updates") or []
                ],
                appended=[int(c) for c in body.get("appended") or []],
                num_rows=body.get("num_rows"),
                token=body.get("token"),
            )
            return {"count": 0}
        if op == "hom_info":
            return {"count": 0, "info": view.hom_file_info(file_name)}
        if op == "hom_read":
            indices = [int(i) for i in body.get("indices") or []]
            return {
                "count": 0,
                "ciphertexts": view.hom_read(file_name, indices),
            }
        if op == "row_count":
            return {"count": view.row_count(table)}
        raise ConfigError(f"unknown write op {op!r}")

    def _handle_write(
        self, sock: socket.socket, session: _Session, body: dict
    ) -> None:
        session.queries += 1
        try:
            with self._write_lock:
                result = self._apply_write(session.view, body)
        except (ReproError, TypeError, ValueError, KeyError) as exc:
            session.errors_sent += 1
            wire.send_message(sock, wire.ERROR, wire.encode_error(exc))
            return
        result.update(self._catalog_body())
        # Drop *before* acking: the write applied but the client never
        # hears so — the lost-ack fault a real network makes possible,
        # which the client-side idempotent retry must absorb.
        self._maybe_drop()
        wire.send_message(sock, wire.WRITE_RESULT, result)

    def _resolve_query(self, session: _Session, body: dict) -> ast.Select:
        query = body.get("query")
        if query is None:
            statement = body.get("statement")
            query = session.prepared.get(statement)
            if query is None:
                raise ConfigError(f"unknown prepared statement {statement!r}")
        if not isinstance(query, ast.Select):
            raise wire.CodecError("EXECUTE payload carries no Select query")
        return query

    def _open_stream(
        self, view: ServerBackend, query: ast.Select, body: dict
    ) -> tuple[BlockStream, bool]:
        """The backend call for one EXECUTE.  Returns (stream, streamed)."""
        params = body.get("params")
        block_rows = int(body.get("block_rows") or DEFAULT_BLOCK_ROWS)
        partitions = int(body.get("partitions") or 1)
        if body.get("stream", True):
            if supports_partitions(view):
                stream = view.execute_stream(
                    query,
                    params=params,
                    block_rows=block_rows,
                    partitions=partitions,
                )
            else:
                if partitions > 1:
                    raise ConfigError(
                        f"backend {view.kind!r} does not accept partitions; "
                        f"cannot run partitions={partitions}"
                    )
                stream = view.execute_stream(
                    query, params=params, block_rows=block_rows
                )
            return stream, True
        result = view.execute(query, params=params)
        stream = BlockStream(
            result.columns,
            blocks_from_rows(result.rows, len(result.columns), block_rows),
            view.last_stats,
        )
        return stream, False

    def _handle_execute(
        self,
        sock: socket.socket,
        decoder: wire.FrameDecoder,
        session: _Session,
        body: dict,
    ) -> None:
        session.queries += 1
        timeout = body.get("timeout")
        deadline = Deadline.after(timeout) if timeout else None
        try:
            query = self._resolve_query(session, body)
            if deadline is not None:
                deadline.check("query")
            stream, streamed = self._open_stream(session.view, query, body)
        except ReproError as exc:
            session.errors_sent += 1
            wire.send_message(sock, wire.ERROR, wire.encode_error(exc))
            return

        ledger = session.ledger
        header_bytes = result_header_bytes(stream.columns)
        payload_total = 0
        cancelled = False
        try:
            wire.send_message(sock, wire.BLOCK, {"columns": stream.columns})
            if streamed:
                # Streamed accounting, the client's rules exactly: one
                # round trip, then header + per-block payload bytes.
                ledger.begin_round_trip(self._network)
                ledger.add_block_transfer(header_bytes, self._network)
            iterator = iter(stream)
            while True:
                if deadline is not None:
                    deadline.check("query stream")
                if self._poll_cancel(sock, decoder):
                    cancelled = True
                    session.cancels += 1
                    break
                block = next(iterator, None)
                if block is None:
                    break
                payload = block.payload_bytes()
                wire.send_message(
                    sock,
                    wire.BLOCK,
                    {"data": block.columns, "rows": block.num_rows},
                )
                session.blocks_sent += 1
                payload_total += payload
                if streamed:
                    ledger.add_block_transfer(payload, self._network)
                self._maybe_drop()
        except ReproError as exc:
            # Typed failure mid-stream (injected chaos, engine error,
            # deadline): close the producer so its scan accounting is
            # final, then relay the typed error — with the scan bytes the
            # attempt charged, so the client can ledger the redone work.
            stream.close()
            stats = stream.stats
            scanned = stats.bytes_scanned if stats is not None else None
            session.errors_sent += 1
            wire.send_message(
                sock, wire.ERROR, wire.encode_error(exc, bytes_scanned=scanned)
            )
            return
        finally:
            stream.close()
        stats = stream.stats
        scanned = stats.bytes_scanned if stats is not None else 0
        rows_output = stats.rows_output if stats is not None else 0
        ledger.server_bytes_scanned += scanned
        if not streamed:
            # Materialized accounting: one add_transfer of the whole
            # result image (header + rows), as the client charges it.
            ledger.add_transfer(header_bytes + payload_total, self._network)
        wire.send_message(
            sock,
            wire.LEDGER,
            {
                "bytes_scanned": scanned,
                "rows_output": rows_output,
                "cancelled": cancelled,
                "session_queries": session.queries,
                "session_transfer_bytes": ledger.transfer_bytes,
                "session_bytes_scanned": ledger.server_bytes_scanned,
            },
        )

    def _poll_cancel(
        self, sock: socket.socket, decoder: wire.FrameDecoder
    ) -> bool:
        """Between block sends: has the client sent a CANCEL frame?"""
        if decoder.pending == 0:
            readable, _, _ = select.select([sock], [], [], 0)
            if not readable:
                return False
            try:
                data = sock.recv(1 << 16)
            except OSError as exc:
                raise ConnectionLostError(f"connection lost: {exc}") from exc
            if not data:
                raise ConnectionLostError("client closed connection mid-stream")
            decoder.feed(data)
        frame = decoder.next_frame()
        if frame is None:
            return False
        ftype, _payload = frame
        if ftype == wire.CANCEL:
            return True
        raise wire.FramingError(
            f"unexpected {wire.FRAME_NAMES[ftype]} frame while a stream "
            "is in flight"
        )

    def _maybe_drop(self) -> None:
        if self._drop_rate <= 0.0:
            return
        with self._lock:
            fire = self._drop_rng.random() < self._drop_rate
        if fire:
            raise _DropConnection()
