"""RemoteBackend: a ServerBackend whose engine is across the network.

The trusted client's entire server interface —
:class:`~repro.server.backend.ServerBackend` — re-implemented over the
wire protocol, so the plan executor, cost model, service layer, and
chaos wrapper all work unchanged against a
:class:`~repro.net.server.MonomiServer` on the far side of a socket.

Design points:

* **Connection pool.**  One connection carries one in-flight request at
  a time (frames of concurrent streams would interleave); the pool hands
  an idle connection to each request and dials a fresh one when none is
  free, so `worker_view()` sessions and overlapping `execute_iter()`
  streams each get their own socket without the caller managing any of
  it.
* **Typed transience.**  Socket death at any point maps to
  :class:`~repro.common.errors.ConnectionLostError` (transient) and
  ERROR frames decode to their in-process exception types, so the PR 6
  resilience layer — ``retry_call`` around materialized requests,
  ``_ResilientStream`` resume around streams — drives reconnects with no
  network-specific code.
* **Catalog from HELLO.**  Table heap sizes and packed-ciphertext file
  metadata arrive in the handshake; the cost model and planner read them
  through the normal ``table_bytes()`` / ``ciphertext_store`` surface.
  The store is metadata-only — ciphertext payloads stay server-side,
  which is the paper's whole point.
* **Prepared statements.**  A query AST seen ``prepare_threshold`` times
  on one connection is PREPAREd server-side and referenced by id from
  then on, so the service layer's prepared/plan-cached hot path stops
  re-shipping identical (large) encrypted ASTs.
"""

from __future__ import annotations

import socket
import threading

from repro.common.errors import (
    ConfigError,
    ConnectionLostError,
    DeadlineExceededError,
    EngineError,
    FramingError,
    ReproError,
)
from repro.common.retry import Deadline
from repro.engine.executor import ExecStats, ResultSet
from repro.engine.rowblock import DEFAULT_BLOCK_ROWS, BlockStream, RowBlock
from repro.net import wire
from repro.server.backend import ServerBackend
from repro.sql import ast

#: Idle connections kept per backend; extras dialed under load are closed
#: on check-in instead of pooled.
DEFAULT_POOL_SIZE = 8

#: Executions of one query AST on one connection before it is PREPAREd.
DEFAULT_PREPARE_THRESHOLD = 2

#: Distinct query ASTs memoized per connection for the prepare path.
_PREPARE_MEMO_LIMIT = 512


def parse_address(address: str) -> tuple[str, int]:
    """Split ``"host:port"``; :class:`ConfigError` on anything else."""
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ConfigError(
            f"server address must look like 'host:port', got {address!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigError(
            f"server address port must be an integer, got {port_text!r}"
        ) from None
    return host, port


class _RemoteCiphertextFile:
    """Metadata stand-in for one server-side packed-ciphertext file."""

    __slots__ = ("name", "rows_per_ciphertext", "ciphertext_bytes", "total_bytes")

    def __init__(self, info: dict) -> None:
        self.name = info["name"]
        self.rows_per_ciphertext = info["rows_per_ciphertext"]
        self.ciphertext_bytes = info["ciphertext_bytes"]
        self.total_bytes = info["total_bytes"]


class _RemoteCiphertextStore:
    """The ciphertext store's read surface, backed by HELLO metadata."""

    def __init__(self, files: list[dict]) -> None:
        self._files = {info["name"]: _RemoteCiphertextFile(info) for info in files}

    def names(self) -> list[str]:
        return sorted(self._files)

    def get(self, name: str) -> _RemoteCiphertextFile:
        try:
            return self._files[name]
        except KeyError:
            raise EngineError(f"unknown ciphertext file {name!r}") from None

    @property
    def total_bytes(self) -> int:
        return sum(f.total_bytes for f in self._files.values())

    def add(self, file: object) -> None:
        raise ConfigError(
            "remote backend is read-only: load ciphertext files on the "
            "server side"
        )


class _Connection:
    """One TCP connection: framing state plus its prepare memo."""

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float,
        socket_timeout: float,
        max_frame_bytes: int,
    ) -> None:
        self.socket_timeout = socket_timeout
        try:
            self.sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as exc:
            raise ConnectionLostError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from exc
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.sock.settimeout(socket_timeout)
        self.decoder = wire.FrameDecoder(max_frame_bytes)
        self.alive = True
        self.hello: dict = {}
        # encoded-query-bytes -> (times seen, statement id or None)
        self.prepare_counts: dict[bytes, int] = {}
        self.prepared: dict[bytes, int] = {}

    def handshake(self) -> None:
        self.send(wire.HELLO, {"client": "monomi", "version": wire.VERSION})
        ftype, body = self.recv()
        if ftype == wire.ERROR:
            raise wire.decode_error(body)
        if ftype != wire.HELLO:
            raise FramingError(
                f"expected HELLO response, got {wire.FRAME_NAMES[ftype]}"
            )
        self.hello = body

    def send(self, ftype: int, body: dict) -> None:
        try:
            wire.send_message(self.sock, ftype, body)
        except ReproError:
            self.alive = False
            raise

    def recv(self, deadline: Deadline | None = None) -> tuple[int, dict]:
        """One frame; socket timeouts are capped by the deadline so an
        expiry surfaces as :class:`DeadlineExceededError` even when the
        server stalls mid-response."""
        if deadline is not None:
            remaining = deadline.remaining()
            if remaining <= 0:
                self.destroy()
                raise DeadlineExceededError(
                    "query deadline expired while awaiting a server frame"
                )
            self.sock.settimeout(min(remaining, self.socket_timeout))
        else:
            self.sock.settimeout(self.socket_timeout)
        try:
            message = wire.recv_message(self.sock, self.decoder)
        except ConnectionLostError as exc:
            self.alive = False
            if deadline is not None and deadline.expired:
                raise DeadlineExceededError(
                    "query deadline expired while awaiting a server frame"
                ) from exc
            raise
        except ReproError:
            self.alive = False
            raise
        assert message is not None  # eof_ok=False: EOF raised above.
        return message

    def destroy(self) -> None:
        self.alive = False
        try:
            self.sock.close()
        except OSError:
            pass


class _RemoteBlockIterator:
    """Block iterator for one in-flight streamed EXECUTE.

    Yields decoded RowBlocks until the LEDGER frame, folding the server's
    final scan statistics into ``stats`` and returning the connection to
    the pool.  ``close()`` before exhaustion sends CANCEL and drains to
    the LEDGER so the connection stays reusable; any transport death
    instead discards the connection and (on the iteration path) raises
    transient :class:`ConnectionLostError` for the resume layer.
    """

    def __init__(
        self,
        backend: "RemoteBackend",
        conn: _Connection,
        stats: ExecStats,
        width: int,
        deadline: Deadline | None,
    ) -> None:
        self._backend = backend
        self._conn = conn
        self._stats = stats
        self._width = width
        self._deadline = deadline
        self._finished = False

    def __iter__(self) -> "_RemoteBlockIterator":
        return self

    def __next__(self) -> RowBlock:
        if self._finished:
            raise StopIteration
        try:
            ftype, body = self._conn.recv(self._deadline)
        except ReproError:
            self._finished = True  # Connection already destroyed/marked.
            raise
        if ftype == wire.BLOCK and "data" in body:
            try:
                return _decode_block(body, self._width)
            except ReproError:
                self._finished = True
                self._conn.destroy()
                raise
        if ftype == wire.LEDGER:
            self._finished = True
            self._stats.bytes_scanned = body.get("bytes_scanned", 0)
            self._stats.rows_output = body.get("rows_output", 0)
            self._backend._checkin(self._conn)
            raise StopIteration
        if ftype == wire.ERROR:
            # A typed server-side failure: the connection itself is fine
            # (the server sent the frame and kept the session).  Record
            # the aborted attempt's scan bytes so the resume layer can
            # charge the redone work to retry_bytes.
            self._finished = True
            scanned = body.get("bytes_scanned")
            if isinstance(scanned, int):
                self._stats.bytes_scanned = scanned
            self._backend._checkin(self._conn)
            raise wire.decode_error(body)
        self._finished = True
        self._conn.destroy()
        raise FramingError(
            f"unexpected {wire.FRAME_NAMES[ftype]} frame in a result stream"
        )

    def close(self) -> None:
        if self._finished:
            return
        self._finished = True
        try:
            self._conn.send(wire.CANCEL, {})
            while True:
                # Drain without the query deadline: cancellation is
                # cooperative cleanup, bounded by the socket timeout.
                ftype, body = self._conn.recv()
                if ftype == wire.LEDGER:
                    self._stats.bytes_scanned = body.get("bytes_scanned", 0)
                    self._stats.rows_output = body.get("rows_output", 0)
                    self._backend._checkin(self._conn)
                    return
                if ftype == wire.ERROR:
                    self._backend._checkin(self._conn)
                    return
                if ftype != wire.BLOCK:
                    self._conn.destroy()
                    return
        except ReproError:
            self._conn.destroy()


def _decode_block(body: dict, width: int) -> RowBlock:
    columns = body.get("data")
    num_rows = body.get("rows")
    if (
        type(columns) is not list
        or type(num_rows) is not int
        or len(columns) != width
        or any(type(c) is not list or len(c) != num_rows for c in columns)
    ):
        raise wire.CodecError("malformed BLOCK frame body")
    return RowBlock(columns, num_rows)


class RemoteBackend(ServerBackend):
    """The client half of the wire protocol, as a ServerBackend."""

    kind = "remote"

    def __init__(
        self,
        address: str,
        connect_timeout: float = 10.0,
        socket_timeout: float = 120.0,
        max_frame_bytes: int = wire.DEFAULT_MAX_FRAME_BYTES,
        pool_size: int = DEFAULT_POOL_SIZE,
        prepare_threshold: int = DEFAULT_PREPARE_THRESHOLD,
    ) -> None:
        self.address = address
        self._host, self._port = parse_address(address)
        self._connect_timeout = connect_timeout
        self._socket_timeout = socket_timeout
        self._max_frame_bytes = max_frame_bytes
        self._pool_size = pool_size
        self._prepare_threshold = prepare_threshold
        self._lock = threading.Lock()
        self._pool: list[_Connection] = []
        self._closed = False
        self.last_stats = ExecStats()
        # Eager handshake: the planner and cost model read the catalog at
        # client construction time, before any query runs.
        conn = self._dial()
        self.server_kind = conn.hello.get("kind", "unknown")
        self._table_bytes = dict(conn.hello.get("tables", {}))
        self.ciphertext_store = _RemoteCiphertextStore(
            conn.hello.get("ciphertext_files", [])
        )
        self._checkin(conn)

    # -- pool ----------------------------------------------------------------

    def _dial(self) -> _Connection:
        conn = _Connection(
            self._host,
            self._port,
            self._connect_timeout,
            self._socket_timeout,
            self._max_frame_bytes,
        )
        try:
            conn.handshake()
        except BaseException:
            conn.destroy()
            raise
        return conn

    def _checkout(self) -> _Connection:
        with self._lock:
            if self._closed:
                raise ConfigError("remote backend is closed")
            while self._pool:
                conn = self._pool.pop()
                if conn.alive:
                    return conn
                conn.destroy()
        return self._dial()

    def _checkin(self, conn: _Connection) -> None:
        if not conn.alive:
            conn.destroy()
            return
        with self._lock:
            if not self._closed and len(self._pool) < self._pool_size:
                self._pool.append(conn)
                return
        conn.destroy()

    def close(self) -> None:
        """Close every pooled connection; in-flight ones close on check-in."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, []
        for conn in pool:
            conn.destroy()

    def open_connections(self) -> int:
        """Idle pooled connections (observability for leak tests)."""
        with self._lock:
            return len(self._pool)

    # -- ServerBackend: loading (unsupported — the server loads locally) -----

    def create_table(self, schema: object) -> None:
        raise ConfigError(
            "remote backend cannot create tables: run the encrypted load "
            "on the server side, then connect"
        )

    # -- ServerBackend: writes (the WRITE frame) ------------------------------
    #
    # Incremental DML and hom maintenance cross the wire as WRITE frames;
    # the bulk load still happens server-side (``create_table`` above).
    # Every WRITE_RESULT carries a fresh catalog (table heap sizes and
    # ciphertext-file metadata), so the cost model keeps planning against
    # the server's post-write state without a reconnect.

    def _write(self, body: dict) -> dict:
        conn = self._checkout()
        try:
            conn.send(wire.WRITE, body)
            ftype, reply = conn.recv()
            if ftype == wire.ERROR:
                raise wire.decode_error(reply)
            if ftype != wire.WRITE_RESULT:
                conn.destroy()
                raise FramingError(
                    f"expected WRITE_RESULT, got {wire.FRAME_NAMES[ftype]}"
                )
        except BaseException:
            self._discard_or_checkin(conn)
            raise
        self._checkin(conn)
        tables = reply.get("tables")
        if type(tables) is dict:
            self._table_bytes = dict(tables)
        files = reply.get("ciphertext_files")
        if type(files) is list:
            self.ciphertext_store = _RemoteCiphertextStore(files)
        return reply

    def insert_rows(self, table_name: str, rows: object) -> None:
        self._write(
            {
                "op": "insert",
                "table": table_name,
                "rows": [tuple(r) for r in rows],
            }
        )

    def delete_rows(self, table_name: str, rows: object) -> int:
        reply = self._write(
            {
                "op": "delete",
                "table": table_name,
                "rows": [tuple(r) for r in rows],
            }
        )
        return int(reply.get("count", 0))

    def replace_rows(self, table_name: str, pairs: object) -> int:
        reply = self._write(
            {
                "op": "replace",
                "table": table_name,
                "pairs": [(tuple(old), tuple(new)) for old, new in pairs],
            }
        )
        return int(reply.get("count", 0))

    def hom_apply(
        self,
        file_name: str,
        updates: object = (),
        appended: object = (),
        num_rows: int | None = None,
        token: str | None = None,
    ) -> None:
        self._write(
            {
                "op": "hom_apply",
                "file": file_name,
                "updates": [tuple(u) for u in updates],
                "appended": list(appended),
                "num_rows": num_rows,
                "token": token,
            }
        )

    def hom_file_info(self, file_name: str) -> dict:
        reply = self._write({"op": "hom_info", "file": file_name})
        info = reply.get("info")
        if type(info) is not dict:
            raise wire.CodecError("WRITE_RESULT carries no hom file info")
        return info

    def hom_read(self, file_name: str, indices: object) -> list[int]:
        reply = self._write(
            {
                "op": "hom_read",
                "file": file_name,
                "indices": [int(i) for i in indices],
            }
        )
        cts = reply.get("ciphertexts")
        if type(cts) is not list:
            raise wire.CodecError("WRITE_RESULT carries no ciphertexts")
        return cts

    def row_count(self, table_name: str) -> int:
        reply = self._write({"op": "row_count", "table": table_name})
        return int(reply.get("count", 0))

    # -- ServerBackend: introspection (HELLO catalog) ------------------------

    def table_names(self) -> list[str]:
        return sorted(self._table_bytes)

    def table_bytes(self, table_name: str) -> int:
        try:
            return self._table_bytes[table_name]
        except KeyError:
            raise EngineError(f"unknown table {table_name!r}") from None

    # -- ServerBackend: execution --------------------------------------------

    def _query_body(
        self, conn: _Connection, query: ast.Select, body: dict
    ) -> dict:
        """Attach ``query`` to a request — by prepared-statement id when
        this connection has seen it enough times, inline otherwise."""
        key = wire.encode_value(query)
        statement = conn.prepared.get(key)
        if statement is not None:
            body["statement"] = statement
            return body
        seen = conn.prepare_counts.get(key, 0) + 1
        if (
            seen >= self._prepare_threshold
            and len(conn.prepared) < _PREPARE_MEMO_LIMIT
        ):
            conn.send(wire.PREPARE, {"query": query})
            ftype, reply = conn.recv()
            if ftype == wire.ERROR:
                raise wire.decode_error(reply)
            if ftype != wire.PREPARE:
                conn.destroy()
                raise FramingError(
                    f"expected PREPARE response, "
                    f"got {wire.FRAME_NAMES[ftype]}"
                )
            statement = reply.get("statement")
            if type(statement) is not int:
                conn.destroy()
                raise wire.CodecError("PREPARE response carries no statement id")
            conn.prepared[key] = statement
            conn.prepare_counts.pop(key, None)
            body["statement"] = statement
            return body
        if len(conn.prepare_counts) < _PREPARE_MEMO_LIMIT:
            conn.prepare_counts[key] = seen
        body["query"] = query
        return body

    def execute(
        self,
        query: ast.Select,
        params: dict[str, object] | None = None,
        deadline: Deadline | None = None,
    ) -> ResultSet:
        conn = self._checkout()
        try:
            request: dict = {"stream": False}
            if params:
                request["params"] = params
            if deadline is not None:
                deadline.check("query")
                request["timeout"] = deadline.remaining()
            self._query_body(conn, query, request)
            conn.send(wire.EXECUTE, request)
            columns: list[str] | None = None
            rows: list[tuple] = []
            stats = ExecStats()
            while True:
                ftype, body = conn.recv(deadline)
                if ftype == wire.BLOCK:
                    # Local protocol-violation checks destroy the
                    # connection before raising: unknown bytes may still
                    # be in flight, so it must not return to the pool.
                    if "data" in body:
                        if columns is None:
                            conn.destroy()
                            raise FramingError("data BLOCK before the header")
                        try:
                            block = _decode_block(body, len(columns))
                        except ReproError:
                            conn.destroy()
                            raise
                        rows.extend(block.rows())
                    else:
                        columns = body.get("columns")
                        if type(columns) is not list:
                            conn.destroy()
                            raise wire.CodecError("malformed header BLOCK")
                elif ftype == wire.LEDGER:
                    stats.bytes_scanned = body.get("bytes_scanned", 0)
                    stats.rows_output = body.get("rows_output", 0)
                    break
                elif ftype == wire.ERROR:
                    raise wire.decode_error(body)
                else:
                    conn.destroy()
                    raise FramingError(
                        f"unexpected {wire.FRAME_NAMES[ftype]} frame in an "
                        "execute response"
                    )
            if columns is None:
                conn.destroy()
                raise FramingError("response ended without a result header")
        except BaseException:
            self._discard_or_checkin(conn)
            raise
        self._checkin(conn)
        self.last_stats = stats
        return ResultSet(columns, rows)

    def _discard_or_checkin(self, conn: _Connection) -> None:
        """After a failed request: a dead connection is destroyed; a live
        one (typed ERROR response — the protocol state is clean) pools."""
        if conn.alive:
            # ERROR frames end the exchange; framing/codec failures mark
            # the connection dead before reaching here, via recv/send.
            self._checkin(conn)
        else:
            conn.destroy()

    def execute_stream(
        self,
        query: ast.Select,
        params: dict[str, object] | None = None,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        partitions: int = 1,
        deadline: Deadline | None = None,
    ) -> BlockStream:
        conn = self._checkout()
        try:
            request: dict = {
                "stream": True,
                "block_rows": block_rows,
                "partitions": partitions,
            }
            if params:
                request["params"] = params
            if deadline is not None:
                deadline.check("query")
                request["timeout"] = deadline.remaining()
            self._query_body(conn, query, request)
            conn.send(wire.EXECUTE, request)
            ftype, body = conn.recv(deadline)
            if ftype == wire.ERROR:
                raise wire.decode_error(body)
            if ftype != wire.BLOCK or "columns" not in body:
                conn.destroy()
                raise FramingError(
                    "expected a result header BLOCK, "
                    f"got {wire.FRAME_NAMES[ftype]}"
                )
            columns = body["columns"]
            if type(columns) is not list or any(
                type(c) is not str for c in columns
            ):
                conn.destroy()
                raise wire.CodecError("malformed header BLOCK")
        except BaseException:
            self._discard_or_checkin(conn)
            raise
        stats = ExecStats()
        blocks = _RemoteBlockIterator(self, conn, stats, len(columns), deadline)
        self.last_stats = stats
        return BlockStream(columns, blocks, stats)

    # -- concurrent service access -------------------------------------------

    def worker_view(self) -> "RemoteBackend":
        """A service worker's view: its own connections to the same server
        (each connection is its own server-side session)."""
        return RemoteBackend(
            self.address,
            connect_timeout=self._connect_timeout,
            socket_timeout=self._socket_timeout,
            max_frame_bytes=self._max_frame_bytes,
            pool_size=self._pool_size,
            prepare_threshold=self._prepare_threshold,
        )
