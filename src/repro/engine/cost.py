"""Server-side cost estimation, in the style of the Postgres optimizer.

The paper's planner "estimates the execution time on the server by asking
the Postgres query optimizer for cost estimates" (§6.4) and separately asks
for result cardinality and row width to price network transfer and client
decryption.  This module is that oracle for our engine: abstract cost units
from page/tuple constants, System-R style selectivity estimation, and
result-size estimates, computed from table statistics without running the
query.

It prices MONOMI's UDFs specially, because the planner's whole job is to
weigh them:

* ``hom_agg``   — charges one modular multiplication per input row (orders
  of magnitude above ``cpu_operator_cost``) and returns ciphertext-sized
  result rows;
* ``grp``       — cheap to compute but returns the *entire group's values*,
  so its result width scales with rows/groups.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.catalog import Database
from repro.sql import ast

# Postgres-flavoured cost constants (seq_page_cost = 1.0 baseline).
SEQ_PAGE_COST = 1.0
CPU_TUPLE_COST = 0.01
CPU_OPERATOR_COST = 0.0025
# One Paillier modular multiplication in page-cost units.  A page fetch is
# ~27 us at 300 MB/s; a 2048-bit modular multiply is a few microseconds, so
# the default sits well below one page.  MonomiCostModel recalibrates this
# from a measured profile at client startup (§6.4's profiler).
MODMUL_COST = 0.15
PAGE_BYTES = 8192

_DEFAULT_NDV = 200
_DEFAULT_WIDTH = 8.0


@dataclass
class PlanEstimate:
    """What the optimizer tells the MONOMI planner about one server query."""

    cost_units: float  # Abstract execution cost (page-fetch units).
    rows: float  # Estimated result cardinality.
    row_bytes: float  # Estimated result row width in bytes.
    input_rows: float = 0.0  # Rows feeding grouping (for group-size costs).
    selectivity: float = 1.0  # WHERE selectivity (for hom partial estimates).

    @property
    def result_bytes(self) -> float:
        return self.rows * self.row_bytes

    @property
    def group_size(self) -> float:
        return max(1.0, self.input_rows / max(self.rows, 1.0))


@dataclass(frozen=True)
class HomFileInfo:
    """Layout facts for a (possibly not yet materialized) ciphertext file."""

    rows_per_ciphertext: int
    ciphertext_bytes: int


class CostEstimator:
    """Estimates server cost without executing.

    ``table_bytes_override`` substitutes table sizes (the MONOMI designer
    estimates costs of *candidate* encrypted layouts against the plaintext
    database's statistics, scaling scan costs to the projected encrypted
    sizes).  ``hom_info_override`` supplies packing facts for candidate
    homomorphic files that do not exist yet.
    """

    def __init__(
        self,
        db: Database,
        table_bytes_override: dict[str, float] | None = None,
        hom_info_override: dict[str, HomFileInfo] | None = None,
        modmul_cost: float = MODMUL_COST,
    ) -> None:
        self.db = db
        self.table_bytes_override = table_bytes_override or {}
        self.hom_info_override = hom_info_override or {}
        self.modmul_cost = modmul_cost

    # -- public -----------------------------------------------------------------

    def estimate(
        self, query: ast.Select, selectivity_override: float | None = None
    ) -> PlanEstimate:
        scan_cost = 0.0
        input_rows = 1.0
        tables: list[str] = []
        for ref in query.from_items:
            cost, rows, names = self._from_cost(ref)
            scan_cost += cost
            input_rows *= max(rows, 1.0)
            tables.extend(names)
        if selectivity_override is not None:
            # Trusted-side hint, but join predicates must still be priced
            # here: scale the structural estimate by the hint's ratio to
            # the non-join filter estimate... in practice the hint already
            # includes join conjuncts, so use it directly.
            selectivity = selectivity_override
        else:
            selectivity = self._selectivity(query.where, tables)
        rows = max(input_rows * selectivity, 1.0)
        cpu_cost = rows * CPU_TUPLE_COST
        udf_cost = self._udf_cost(query, rows)
        out_rows = rows
        if query.group_by or self._has_aggregates(query):
            groups = self._estimate_groups(query, tables, rows)
            out_rows = groups
            cpu_cost += rows * CPU_OPERATOR_COST * max(1, len(query.group_by))
        if query.having is not None:
            out_rows = max(out_rows * 0.5, 1.0)
        if query.order_by and out_rows > 1:
            import math

            cpu_cost += out_rows * math.log2(out_rows) * CPU_OPERATOR_COST
        if query.limit is not None:
            out_rows = min(out_rows, float(query.limit))
        row_bytes = self._row_width(query, tables, rows, out_rows, selectivity)
        subquery_cost = self._subquery_costs(query)
        total = scan_cost + cpu_cost + udf_cost + subquery_cost
        return PlanEstimate(
            cost_units=total,
            rows=out_rows,
            row_bytes=row_bytes,
            input_rows=rows,
            selectivity=selectivity,
        )

    # -- FROM -------------------------------------------------------------------

    def _from_cost(self, ref: ast.TableRef) -> tuple[float, float, list[str]]:
        if isinstance(ref, ast.TableName):
            table = self.db.table(ref.name)
            total_bytes = self.table_bytes_override.get(ref.name, table.total_bytes)
            pages = max(1.0, total_bytes / PAGE_BYTES)
            cost = pages * SEQ_PAGE_COST + table.num_rows * CPU_TUPLE_COST
            return cost, float(table.num_rows), [ref.name]
        if isinstance(ref, ast.SubqueryRef):
            inner = self.estimate(ref.query)
            return inner.cost_units, inner.rows, []
        if isinstance(ref, ast.Join):
            left_cost, left_rows, left_names = self._from_cost(ref.left)
            right_cost, right_rows, right_names = self._from_cost(ref.right)
            names = left_names + right_names
            sel = self._selectivity(ref.condition, names)
            rows = max(left_rows * right_rows * sel, 1.0)
            return left_cost + right_cost + rows * CPU_TUPLE_COST, rows, names
        return 0.0, 1.0, []

    # -- selectivity -----------------------------------------------------------

    def _selectivity(self, expr: ast.Expr | None, tables: list[str]) -> float:
        if expr is None:
            return 1.0
        if isinstance(expr, ast.BinOp):
            if expr.op == "and":
                return self._selectivity(expr.left, tables) * self._selectivity(
                    expr.right, tables
                )
            if expr.op == "or":
                a = self._selectivity(expr.left, tables)
                b = self._selectivity(expr.right, tables)
                return min(1.0, a + b - a * b)
            if expr.op == "=":
                return self._equality_selectivity(expr, tables)
            if expr.op in ("<", "<=", ">", ">="):
                return 0.33
            if expr.op == "<>":
                return 1.0 - self._equality_selectivity(expr, tables)
        if isinstance(expr, ast.UnaryOp) and expr.op == "not":
            return max(0.0, 1.0 - self._selectivity(expr.operand, tables))
        if isinstance(expr, ast.Between):
            return 0.05 if not expr.negated else 0.95
        if isinstance(expr, ast.Like):
            return 0.05 if not expr.negated else 0.95
        if isinstance(expr, ast.InList):
            column = self._single_column(expr.needle)
            ndv = self._column_ndv(column, tables)
            sel = min(1.0, len(expr.items) / ndv)
            return 1.0 - sel if expr.negated else sel
        if isinstance(expr, (ast.InSubquery, ast.Exists)):
            return 0.5
        if isinstance(expr, ast.IsNull):
            return 0.02 if not expr.negated else 0.98
        return 0.5

    def _equality_selectivity(self, expr: ast.BinOp, tables: list[str]) -> float:
        left_col = self._single_column(expr.left)
        right_col = self._single_column(expr.right)
        if left_col is not None and right_col is not None:
            # Join predicate: 1 / max(ndv of either side).
            ndv = max(
                self._column_ndv(left_col, tables),
                self._column_ndv(right_col, tables),
            )
            return 1.0 / ndv
        column = left_col or right_col
        return 1.0 / self._column_ndv(column, tables)

    @staticmethod
    def _single_column(expr: ast.Expr) -> ast.Column | None:
        columns = ast.find_columns(expr)
        return columns[0] if len(columns) == 1 else None

    def _column_ndv(self, column: ast.Column | None, tables: list[str]) -> float:
        stats = self._column_stats(column, tables)
        if stats is None or stats.num_distinct == 0:
            return float(_DEFAULT_NDV)
        return float(stats.num_distinct)

    def _column_stats(self, column: ast.Column | None, tables: list[str]):
        if column is None:
            return None
        for name in tables:
            if not self.db.has_table(name):
                continue
            table = self.db.table(name)
            target = _strip_suffix(column.name)
            for candidate in (column.name, target):
                if table.schema.has_column(candidate):
                    return table.analyze()[candidate]
        return None

    # -- output size ------------------------------------------------------------

    def _estimate_groups(self, query: ast.Select, tables: list[str], rows: float) -> float:
        if not query.group_by:
            return 1.0
        ndv = 1.0
        for key in query.group_by:
            column = self._single_column(key)
            ndv *= self._column_ndv(column, tables)
        return max(1.0, min(ndv, rows / 2.0 if rows > 2 else rows))

    def _row_width(
        self,
        query: ast.Select,
        tables: list[str],
        in_rows: float,
        out_rows: float,
        selectivity: float = 1.0,
    ) -> float:
        group_size = max(1.0, in_rows / max(out_rows, 1.0))
        width = 8.0  # Row header share.
        for item in query.items:
            width += self._expr_width(item.expr, tables, group_size, out_rows, selectivity)
        return width

    def _expr_width(
        self,
        expr: ast.Expr,
        tables: list[str],
        group_size: float,
        group_count: float = 1.0,
        selectivity: float = 1.0,
    ) -> float:
        if isinstance(expr, ast.Column):
            stats = self._column_stats(expr, tables)
            return stats.avg_width if stats and stats.avg_width else _DEFAULT_WIDTH
        if isinstance(expr, ast.FuncCall):
            if expr.name == "grp":
                inner = sum(
                    self._expr_width(a, tables, group_size) for a in expr.args
                ) or _DEFAULT_WIDTH
                return inner * group_size
            if expr.name in ("hom_agg", "paillier_sum"):
                return self._hom_width(expr, group_size, group_count, selectivity)
            if expr.name == "count":
                return 8.0
            if expr.args:
                return max(self._expr_width(a, tables, group_size) for a in expr.args)
            return _DEFAULT_WIDTH
        if isinstance(expr, ast.Literal):
            if isinstance(expr.value, str):
                return float(len(expr.value) + 1)
            if isinstance(expr.value, bytes):
                return float(len(expr.value) + 1)
            return _DEFAULT_WIDTH
        children = expr.children()
        if children:
            return max(self._expr_width(c, tables, group_size) for c in children)
        return _DEFAULT_WIDTH

    def _hom_width(
        self, expr: ast.FuncCall, group_size: float, group_count: float, selectivity: float
    ) -> float:
        file = self._hom_file(expr)
        if file is None:
            return 256.0
        return float(file.ciphertext_bytes) * estimate_hom_ciphertexts(
            file.rows_per_ciphertext, group_size, group_count, selectivity
        )

    def _hom_file(self, expr: ast.FuncCall) -> HomFileInfo | None:
        if expr.args and isinstance(expr.args[0], ast.Literal):
            name = expr.args[0].value
            if isinstance(name, str):
                if name in self.hom_info_override:
                    return self.hom_info_override[name]
                try:
                    file = self.db.ciphertext_store.get(name)
                except Exception:
                    return None
                return HomFileInfo(file.rows_per_ciphertext, file.ciphertext_bytes)
        return None

    # -- misc -------------------------------------------------------------------

    def _udf_cost(self, query: ast.Select, rows: float) -> float:
        cost = 0.0
        for expr in self._all_exprs(query):
            for call in ast.find_aggregates(expr):
                if call.name in ("hom_agg", "paillier_sum"):
                    cost += rows * self.modmul_cost
        return cost

    def _subquery_costs(self, query: ast.Select) -> float:
        cost = 0.0
        for expr in self._all_exprs(query):
            for sub in ast.find_subqueries(expr):
                cost += self.estimate(sub).cost_units
        return cost

    def _all_exprs(self, query: ast.Select) -> list[ast.Expr]:
        exprs = [item.expr for item in query.items]
        if query.where is not None:
            exprs.append(query.where)
        if query.having is not None:
            exprs.append(query.having)
        exprs.extend(o.expr for o in query.order_by)
        exprs.extend(query.group_by)
        return exprs

    @staticmethod
    def _has_aggregates(query: ast.Select) -> bool:
        exprs = [item.expr for item in query.items]
        if query.having is not None:
            exprs.append(query.having)
        return any(ast.contains_aggregate(e) for e in exprs)


def estimate_hom_ciphertexts(
    rows_per_ct: int, group_size: float, group_count: float, selectivity: float = 1.0
) -> float:
    """Expected ciphertexts shipped per group for one hom_agg result.

    Per-row packing (k = 1): the whole group folds into one running
    product — a single ciphertext regardless of group size.

    Columnar packing (k > 1): a packed ciphertext folds into the product
    only if *all* of its rows belong to this group and pass the filter;
    every other touched ciphertext is partial and ships individually.
    Modeling rows as scattered (tables cluster by key, not by group key),
    a ciphertext's rows land in this group independently with probability
    ``s_g = selectivity / group_count``:

    * ciphertexts touched per group ≈ m / max(1, k * s_g) capped at m;
    * a touched ciphertext is fully covered with probability s_g^(k-1).

    High-selectivity single-group scans keep near-full coverage (the §5.2
    win: fewer, mostly-foldable ciphertexts read from a k-times smaller
    file); grouped or selective queries degrade to ~one ciphertext per
    matching row, which is why the planner pairs them with per-row packing.
    """
    if rows_per_ct <= 1:
        return 1.0
    group_size = max(1.0, group_size)
    s_g = min(1.0, max(1e-6, selectivity / max(1.0, group_count)))
    touched = min(group_size, group_size / max(1.0, rows_per_ct * s_g))
    partial = touched * (1.0 - s_g ** (rows_per_ct - 1))
    return 1.0 + partial


def _strip_suffix(name: str) -> str:
    """Map an encrypted column name back to its base column for stats
    (``l_quantity_det`` -> ``l_quantity``)."""
    for suffix in ("_det", "_ope", "_rnd", "_search", "_ffx"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name
