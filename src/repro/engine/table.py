"""In-memory tables with byte-accurate size accounting and statistics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import CatalogError
from repro.engine.schema import TableSchema
from repro.storage.rowcodec import row_bytes, value_bytes


@dataclass
class ColumnStats:
    """Per-column statistics used by the cost estimator (ANALYZE output)."""

    num_distinct: int = 0
    num_nulls: int = 0
    min_value: object = None
    max_value: object = None
    avg_width: float = 0.0


class Table:
    """A heap of rows plus maintained size statistics."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.rows: list[tuple] = []
        self.total_bytes = 0
        self._stats: dict[str, ColumnStats] | None = None

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    def insert(self, row: tuple) -> None:
        self._validate(row)
        self.rows.append(row)
        self.total_bytes += row_bytes(row)
        self._stats = None

    def insert_many(self, rows) -> None:
        for row in rows:
            self.insert(row)

    def _validate(self, row: tuple) -> None:
        if len(row) != len(self.schema.columns):
            raise CatalogError(
                f"row has {len(row)} values, table {self.name!r} has "
                f"{len(self.schema.columns)} columns"
            )
        for value, col in zip(row, self.schema.columns):
            if not col.accepts(value):
                raise CatalogError(
                    f"value {value!r} not valid for column "
                    f"{self.name}.{col.name} ({col.type})"
                )

    def delete_exact(self, rows) -> int:
        """Remove one stored match per requested tuple; return the count
        removed.  Requests with no stored match are skipped, which is what
        makes a retried delete converge instead of over-deleting."""
        wanted: dict[tuple, int] = {}
        for row in rows:
            key = tuple(row)
            wanted[key] = wanted.get(key, 0) + 1
        if not wanted:
            return 0
        kept: list[tuple] = []
        removed = 0
        for row in self.rows:
            count = wanted.get(row, 0)
            if count:
                wanted[row] = count - 1
                removed += 1
                self.total_bytes -= row_bytes(row)
            else:
                kept.append(row)
        if removed:
            self.rows[:] = kept
            self._stats = None
        return removed

    def replace_exact(self, pairs) -> int:
        """Replace, in place, one stored match of ``old`` with ``new`` per
        ``(old, new)`` pair; return the count replaced.  Matching is by
        value, so the final row multiset is the same under any apply
        order — the property retried partial applies rely on."""
        pending: dict[tuple, list[tuple]] = {}
        total = 0
        for old, new in pairs:
            pending.setdefault(tuple(old), []).append(tuple(new))
            total += 1
        if not total:
            return 0
        replaced = 0
        for i, row in enumerate(self.rows):
            queue = pending.get(row)
            if queue:
                new = queue.pop(0)
                self._validate(new)
                self.rows[i] = new
                self.total_bytes += row_bytes(new) - row_bytes(row)
                replaced += 1
        if replaced:
            self._stats = None
        return replaced

    def analyze(self) -> dict[str, ColumnStats]:
        """Compute (and cache) per-column statistics."""
        if self._stats is not None:
            return self._stats
        stats: dict[str, ColumnStats] = {}
        for i, col in enumerate(self.schema.columns):
            values = [row[i] for row in self.rows]
            non_null = [v for v in values if v is not None]
            cs = ColumnStats(num_nulls=len(values) - len(non_null))
            if non_null:
                try:
                    cs.num_distinct = len(set(non_null))
                except TypeError:
                    cs.num_distinct = len(non_null)
                try:
                    cs.min_value = min(non_null)
                    cs.max_value = max(non_null)
                except TypeError:
                    pass  # Mixed/unorderable (e.g. tag sets): no min/max.
                cs.avg_width = sum(value_bytes(v) for v in non_null) / len(non_null)
            stats[col.name] = cs
        self._stats = stats
        return stats
