"""In-memory tables with byte-accurate size accounting and statistics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import CatalogError
from repro.engine.schema import TableSchema
from repro.storage.rowcodec import row_bytes, value_bytes


@dataclass
class ColumnStats:
    """Per-column statistics used by the cost estimator (ANALYZE output)."""

    num_distinct: int = 0
    num_nulls: int = 0
    min_value: object = None
    max_value: object = None
    avg_width: float = 0.0


class Table:
    """A heap of rows plus maintained size statistics."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.rows: list[tuple] = []
        self.total_bytes = 0
        self._stats: dict[str, ColumnStats] | None = None

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    def insert(self, row: tuple) -> None:
        if len(row) != len(self.schema.columns):
            raise CatalogError(
                f"row has {len(row)} values, table {self.name!r} has "
                f"{len(self.schema.columns)} columns"
            )
        for value, col in zip(row, self.schema.columns):
            if not col.accepts(value):
                raise CatalogError(
                    f"value {value!r} not valid for column "
                    f"{self.name}.{col.name} ({col.type})"
                )
        self.rows.append(row)
        self.total_bytes += row_bytes(row)
        self._stats = None

    def insert_many(self, rows) -> None:
        for row in rows:
            self.insert(row)

    def analyze(self) -> dict[str, ColumnStats]:
        """Compute (and cache) per-column statistics."""
        if self._stats is not None:
            return self._stats
        stats: dict[str, ColumnStats] = {}
        for i, col in enumerate(self.schema.columns):
            values = [row[i] for row in self.rows]
            non_null = [v for v in values if v is not None]
            cs = ColumnStats(num_nulls=len(values) - len(non_null))
            if non_null:
                try:
                    cs.num_distinct = len(set(non_null))
                except TypeError:
                    cs.num_distinct = len(non_null)
                try:
                    cs.min_value = min(non_null)
                    cs.max_value = max(non_null)
                except TypeError:
                    pass  # Mixed/unorderable (e.g. tag sets): no min/max.
                cs.avg_width = sum(value_bytes(v) for v in non_null) / len(non_null)
            stats[col.name] = cs
        self._stats = stats
        return stats
