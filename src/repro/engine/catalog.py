"""Database catalog: named tables plus the server's ciphertext store."""

from __future__ import annotations

from repro.common.errors import CatalogError
from repro.engine.schema import TableSchema
from repro.engine.table import Table
from repro.storage.ciphertext_store import CiphertextStore


class Database:
    """The untrusted server's state: tables and packed-ciphertext files."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self.tables: dict[str, Table] = {}
        self.ciphertext_store = CiphertextStore()

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self.tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self.tables[schema.name] = table
        return table

    def drop_table(self, name: str) -> None:
        self.tables.pop(name, None)

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self.tables

    @property
    def total_bytes(self) -> int:
        """Total server-side footprint: table heaps + ciphertext files."""
        tables = sum(t.total_bytes for t in self.tables.values())
        return tables + self.ciphertext_store.total_bytes
