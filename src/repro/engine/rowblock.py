"""RowBlock: the streaming pipeline's unit of data movement.

MONOMI's split execution (§6) is a dataflow — server scan → network
transfer → client decrypt → residual query — and every hop in this
reproduction moves :class:`RowBlock` batches instead of whole
materialized tables.  A block is a **column-major** slice of at most
``capacity`` rows (default 4,096): column-major because every consumer
on the hot path wants columns, not rows — the SQLite cursor decodes per
column, the client decrypts each server output column through one
``*_decrypt_batch`` call per block, and byte accounting sums
:func:`~repro.storage.rowcodec.value_bytes` column-wise.  Row-major
views (:meth:`rows`) exist for the relational operators that are
inherently row-at-a-time (predicates, projection closures).

Byte accounting is designed so a stream of blocks charges **exactly**
what the materializing path charges: ``ResultSet.byte_size()`` equals
``result_header_bytes(columns)`` plus the sum of every block's
:meth:`payload_bytes` — the ledger equivalence tests assert this.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.storage.rowcodec import value_bytes

#: Default block capacity (rows) used everywhere a caller does not choose.
DEFAULT_BLOCK_ROWS = 4096


class RowBlock:
    """A fixed-capacity column-major batch of rows.

    ``columns[i]`` is the list of values for output column ``i``; every
    column holds ``num_rows`` values.  Capacity is nominal: producers
    emit blocks of at most their configured size, but consumers must not
    assume it (unnesting grp() lists can legally grow a block).
    """

    __slots__ = ("columns", "num_rows")

    def __init__(self, columns: list[list], num_rows: int | None = None) -> None:
        self.columns = columns
        self.num_rows = num_rows if num_rows is not None else (
            len(columns[0]) if columns else 0
        )

    @classmethod
    def from_rows(cls, rows: list[tuple], width: int) -> "RowBlock":
        """Transpose row tuples into a block (``width`` covers the empty case)."""
        if not rows:
            return cls([[] for _ in range(width)], 0)
        return cls([list(column) for column in zip(*rows)], len(rows))

    def rows(self) -> list[tuple]:
        """Row-major view (transposes; use sparingly on hot paths)."""
        if not self.columns:
            return [()] * self.num_rows
        return list(zip(*self.columns))

    def payload_bytes(self) -> int:
        """Logical wire bytes of this block's rows (framing + values).

        Matches the per-row body of ``ResultSet.byte_size`` — 4 framing
        bytes per row plus the rowcodec size of every value — so block
        streams and materialized results charge identical transfer bytes.
        """
        total = 4 * self.num_rows
        for column in self.columns:
            total += sum(value_bytes(v) for v in column)
        return total

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RowBlock({len(self.columns)} cols x {self.num_rows} rows)"


def result_header_bytes(columns: list[str]) -> int:
    """Wire bytes of the result-set header (column names + framing).

    The header half of ``ResultSet.byte_size``; a stream charges it once
    per result, before any block.
    """
    return sum(len(c) + 4 for c in columns)


def blocks_from_rows(
    rows: list[tuple], width: int, block_rows: int = DEFAULT_BLOCK_ROWS
) -> Iterator[RowBlock]:
    """Chunk a materialized row list into blocks (the blocking-operator
    boundary: whatever had to materialize re-enters the stream here)."""
    for start in range(0, len(rows), block_rows):
        yield RowBlock.from_rows(rows[start : start + block_rows], width)


def rechunk_rows(
    row_lists: Iterable[list],
    width: int,
    block_rows: int = DEFAULT_BLOCK_ROWS,
    stats=None,
) -> Iterator[RowBlock]:
    """Merge ordered row-list chunks into blocks of exactly ``block_rows``
    (except the last) — the partition-parallel merge point.

    Chunks arrive in partition order and rows concatenate as-is, so the
    output row order and block boundaries match a serial scan of the same
    rows.  When ``stats`` is given, ``rows_output`` accrues per emitted
    block (both partitioned backends share these semantics by sharing
    this function).
    """
    buffer: list[tuple] = []
    for rows in row_lists:
        buffer.extend(rows)
        while len(buffer) >= block_rows:
            head = buffer[:block_rows]
            del buffer[:block_rows]
            if stats is not None:
                stats.rows_output += len(head)
            yield RowBlock.from_rows(head, width)
    if buffer:
        if stats is not None:
            stats.rows_output += len(buffer)
        yield RowBlock.from_rows(buffer, width)


class BlockStream:
    """An iterable of :class:`RowBlock` plus result metadata.

    ``columns`` is known up front; ``stats`` (when the producer supplies
    one) reaches its final totals only once the stream is exhausted or
    closed — producers fold per-block accounting into it as blocks flow.
    Single-shot: iterate it once.
    """

    def __init__(self, columns: list[str], blocks: Iterable[RowBlock], stats=None) -> None:
        self.columns = list(columns)
        self.stats = stats
        self._blocks = iter(blocks)

    def __iter__(self) -> Iterator[RowBlock]:
        return self._blocks

    def close(self) -> None:
        """Release the producer early (runs its finalization/cleanup)."""
        close = getattr(self._blocks, "close", None)
        if close is not None:
            close()

    def drain_rows(self) -> list[tuple]:
        """Pull every block and return the concatenated rows."""
        rows: list[tuple] = []
        for block in self._blocks:
            rows.extend(block.rows())
        return rows
