"""Expression evaluation with SQL semantics (three-valued logic, NULLs).

The evaluator is shared by the untrusted server engine (which sees
ciphertext values: bytes equality for DET, integer order for OPE, tag sets
for SEARCH) and by the trusted client's local operators (which see decrypted
plaintext).  Nothing here is scheme-specific — ciphertext columns are just
ordinary typed values, which is exactly why an *unmodified* DBMS can execute
MONOMI's server queries.
"""

from __future__ import annotations

import datetime
import operator
import re
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ExecutionError
from repro.sql import ast


class Scope:
    """Column-name resolution for one relation's rows."""

    def __init__(self, columns: list[tuple[str | None, str]]) -> None:
        """``columns[i]`` is (binding, column_name) for tuple position i."""
        self.columns = columns
        self._qualified: dict[tuple[str, str], int] = {}
        self._unqualified: dict[str, int | None] = {}
        for i, (binding, name) in enumerate(columns):
            if binding is not None:
                self._qualified[(binding, name)] = i
            if name in self._unqualified:
                self._unqualified[name] = None  # Ambiguous.
            else:
                self._unqualified[name] = i

    def find(self, table: str | None, name: str) -> int | None:
        if table is not None:
            return self._qualified.get((table, name))
        index = self._unqualified.get(name, "missing")
        if index is None:
            raise ExecutionError(f"ambiguous column reference {name!r}")
        if index == "missing":
            return None
        return index

    def merged_with(self, other: "Scope") -> "Scope":
        return Scope(self.columns + other.columns)


class Env:
    """A row bound to a scope, with an optional outer (correlation) env."""

    __slots__ = ("scope", "row", "parent", "used_parent")

    def __init__(self, scope: Scope, row: tuple, parent: "Env | None" = None) -> None:
        self.scope = scope
        self.row = row
        self.parent = parent
        self.used_parent = False

    def lookup(self, table: str | None, name: str) -> object:
        index = self.scope.find(table, name)
        if index is not None:
            return self.row[index]
        if self.parent is not None:
            self.used_parent = True
            value = self.parent.lookup(table, name)
            self.used_parent = self.used_parent or self.parent.used_parent
            return value
        target = f"{table}.{name}" if table else name
        raise ExecutionError(f"unknown column {target!r}")


@dataclass
class EvalContext:
    """Everything evaluation needs beyond the row itself."""

    params: dict[str, object] = field(default_factory=dict)
    functions: dict[str, Callable] = field(default_factory=dict)
    # Called as subquery_executor(select, outer_env) -> ResultSet-like.
    subquery_executor: Callable | None = None
    # Aggregate results for the current group, keyed by the FuncCall node.
    aggregate_values: dict[ast.Expr, object] | None = None
    # Output aliases usable in HAVING / ORDER BY (MONOMI's paper example
    # uses ``HAVING total > 100`` where total is a select alias).
    alias_values: dict[str, object] | None = None
    # Optional fast path for correlated EXISTS (semi-join materialization);
    # called as exists_tester(query, env) -> bool | None (None: no fast path).
    exists_tester: Callable | None = None
    _subquery_cache: dict[int, object] = field(default_factory=dict)


def evaluate(expr: ast.Expr, env: Env | None, ctx: EvalContext) -> object:
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Interval):
        return expr
    if isinstance(expr, ast.Column):
        if env is None:
            raise ExecutionError(f"column {expr.qualified!r} with no row context")
        try:
            return env.lookup(expr.table, expr.name)
        except ExecutionError:
            if ctx.alias_values is not None and expr.table is None:
                if expr.name in ctx.alias_values:
                    return ctx.alias_values[expr.name]
            raise
    if isinstance(expr, ast.Param):
        if expr.name not in ctx.params:
            raise ExecutionError(f"unbound parameter :{expr.name}")
        return ctx.params[expr.name]
    if isinstance(expr, ast.BinOp):
        return _eval_binop(expr, env, ctx)
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "not":
            value = evaluate(expr.operand, env, ctx)
            return None if value is None else (not _truthy(value))
        value = evaluate(expr.operand, env, ctx)
        return None if value is None else -value
    if isinstance(expr, ast.FuncCall):
        return _eval_func(expr, env, ctx)
    if isinstance(expr, ast.CaseWhen):
        for cond, result in expr.whens:
            if _truthy(evaluate(cond, env, ctx)):
                return evaluate(result, env, ctx)
        return evaluate(expr.else_, env, ctx) if expr.else_ is not None else None
    if isinstance(expr, ast.InList):
        return _eval_in(
            evaluate(expr.needle, env, ctx),
            [evaluate(i, env, ctx) for i in expr.items],
            expr.negated,
        )
    if isinstance(expr, ast.Like):
        return _eval_like(expr, env, ctx)
    if isinstance(expr, ast.Between):
        needle = evaluate(expr.needle, env, ctx)
        low = evaluate(expr.low, env, ctx)
        high = evaluate(expr.high, env, ctx)
        if needle is None or low is None or high is None:
            return None
        result = low <= needle <= high
        return (not result) if expr.negated else result
    if isinstance(expr, ast.IsNull):
        value = evaluate(expr.operand, env, ctx)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, ast.Extract):
        value = evaluate(expr.operand, env, ctx)
        if value is None:
            return None
        if not isinstance(value, datetime.date):
            raise ExecutionError(f"EXTRACT from non-date {value!r}")
        return getattr(value, expr.field_name)
    if isinstance(expr, ast.Substring):
        value = evaluate(expr.operand, env, ctx)
        start = evaluate(expr.start, env, ctx)
        if value is None or start is None:
            return None
        begin = max(int(start) - 1, 0)
        if expr.length is None:
            return value[begin:]
        length = evaluate(expr.length, env, ctx)
        return value[begin : begin + int(length)]
    if isinstance(expr, ast.ScalarSubquery):
        result = _run_subquery(expr.query, env, ctx)
        if len(result.rows) > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        if not result.rows:
            return None
        return result.rows[0][0]
    if isinstance(expr, ast.InSubquery):
        needle = evaluate(expr.needle, env, ctx)
        result = _run_subquery(expr.query, env, ctx)
        return _eval_in(needle, [row[0] for row in result.rows], expr.negated)
    if isinstance(expr, ast.Exists):
        if ctx.exists_tester is not None:
            fast = ctx.exists_tester(expr.query, env)
            if fast is not None:
                return (not fast) if expr.negated else fast
        result = _run_subquery(expr.query, env, ctx)
        found = bool(result.rows)
        return (not found) if expr.negated else found
    raise ExecutionError(f"cannot evaluate expression {expr!r}")


def _eval_binop(expr: ast.BinOp, env: Env | None, ctx: EvalContext) -> object:
    op = expr.op
    if op == "and":
        left = evaluate(expr.left, env, ctx)
        if left is False:
            return False
        right = evaluate(expr.right, env, ctx)
        if right is False:
            return False
        if left is None or right is None:
            return None
        return _truthy(left) and _truthy(right)
    if op == "or":
        left = evaluate(expr.left, env, ctx)
        if left is not None and _truthy(left):
            return True
        right = evaluate(expr.right, env, ctx)
        if right is not None and _truthy(right):
            return True
        if left is None or right is None:
            return None
        return False
    left = evaluate(expr.left, env, ctx)
    right = evaluate(expr.right, env, ctx)
    if left is None or right is None:
        return None
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op in ("<", "<=", ">", ">="):
        try:
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            return left >= right
        except TypeError:
            raise ExecutionError(
                f"cannot compare {type(left).__name__} with {type(right).__name__}"
            ) from None
    if op == "||":
        return str(left) + str(right)
    return _eval_arith(op, left, right)


def _eval_arith(op: str, left: object, right: object) -> object:
    # Date +/- interval arithmetic.
    if isinstance(left, datetime.date) and isinstance(right, ast.Interval):
        return _shift_date(left, right, -1 if op == "-" else 1)
    if isinstance(right, datetime.date) and isinstance(left, ast.Interval) and op == "+":
        return _shift_date(right, left, 1)
    if isinstance(left, datetime.date) and isinstance(right, datetime.date) and op == "-":
        return (left - right).days
    if isinstance(left, ast.Interval) or isinstance(right, ast.Interval):
        raise ExecutionError(f"bad interval arithmetic: {left!r} {op} {right!r}")
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise ExecutionError("division by zero")
            return left / right
    except TypeError:
        raise ExecutionError(
            f"bad arithmetic: {type(left).__name__} {op} {type(right).__name__}"
        ) from None
    raise ExecutionError(f"unknown operator {op!r}")


def _shift_date(base: datetime.date, interval: ast.Interval, sign: int) -> datetime.date:
    amount = interval.amount * sign
    if interval.unit == "day":
        return base + datetime.timedelta(days=amount)
    if interval.unit == "month":
        total = base.year * 12 + (base.month - 1) + amount
        year, month = divmod(total, 12)
        day = min(base.day, _days_in_month(year, month + 1))
        return datetime.date(year, month + 1, day)
    if interval.unit == "year":
        day = min(base.day, _days_in_month(base.year + amount, base.month))
        return datetime.date(base.year + amount, base.month, day)
    raise ExecutionError(f"unknown interval unit {interval.unit!r}")


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        return 31
    first_next = datetime.date(year + (month == 12), month % 12 + 1, 1)
    return (first_next - datetime.date(year, month, 1)).days


def _eval_func(expr: ast.FuncCall, env: Env | None, ctx: EvalContext) -> object:
    if ctx.aggregate_values is not None and expr in ctx.aggregate_values:
        return ctx.aggregate_values[expr]
    if ast.is_aggregate_call(expr):
        raise ExecutionError(
            f"aggregate {expr.name}() used outside GROUP BY context"
        )
    fn = ctx.functions.get(expr.name)
    if fn is None:
        raise ExecutionError(f"unknown function {expr.name!r}")
    args = [evaluate(a, env, ctx) for a in expr.args]
    return fn(*args)


def _eval_in(needle: object, items: list, negated: bool) -> object:
    if needle is None:
        return None
    saw_null = False
    for item in items:
        if item is None:
            saw_null = True
        elif item == needle:
            return False if negated else True
    if saw_null:
        return None
    return True if negated else False


_LIKE_CACHE: dict[str, re.Pattern] = {}


def like_matches(text: str, pattern: str) -> bool:
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        regex = "".join(
            ".*" if ch == "%" else "." if ch == "_" else re.escape(ch) for ch in pattern
        )
        compiled = re.compile("^" + regex + "$", re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled.match(text) is not None


def _eval_like(expr: ast.Like, env: Env | None, ctx: EvalContext) -> object:
    needle = evaluate(expr.needle, env, ctx)
    pattern = evaluate(expr.pattern, env, ctx)
    if needle is None or pattern is None:
        return None
    # Server-side searchable encryption: tag-set column LIKE trapdoor bytes.
    if isinstance(needle, frozenset) and isinstance(pattern, bytes):
        found = pattern in needle
    else:
        found = like_matches(str(needle), str(pattern))
    return (not found) if expr.negated else found


# ---------------------------------------------------------------------------
# Compiled expressions
# ---------------------------------------------------------------------------
#
# ``compile_expr`` turns an AST into a closure ``fn(row) -> value`` with all
# dispatch — node type, operator, column index, function pointer — resolved
# once per query instead of once per row.  The executor's hot loops (WHERE
# filtering, hash-join key extraction, group keys, aggregate arguments,
# projection) run these closures directly over raw row tuples, skipping the
# per-row ``Env`` allocation and scope lookups of the tree walker.
#
# Compilation never fails: nodes whose semantics depend on per-row dynamic
# context (subqueries, aggregate references, alias resolution) compile to a
# closure that defers to :func:`evaluate`, so compiled and interpreted
# results are identical by construction.

RowFn = Callable[[tuple], object]

_CMP_OPS = {"<": operator.lt, "<=": operator.le, ">": operator.gt, ">=": operator.ge}


def compile_expr(
    expr: ast.Expr, scope: Scope, ctx: EvalContext, outer: Env | None = None
) -> RowFn:
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, ast.Interval):
        return lambda row: expr
    if isinstance(expr, ast.Column):
        try:
            index = scope.find(expr.table, expr.name)
        except ExecutionError:
            return _compile_fallback(expr, scope, ctx, outer)
        if index is None:
            # Outer (correlated) or alias reference: needs the env chain.
            return _compile_fallback(expr, scope, ctx, outer)
        return lambda row: row[index]
    if isinstance(expr, ast.Param):
        params = ctx.params
        name = expr.name
        def run_param(row):
            if name not in params:
                raise ExecutionError(f"unbound parameter :{name}")
            return params[name]
        return run_param
    if isinstance(expr, ast.BinOp):
        return _compile_binop(expr, scope, ctx, outer)
    if isinstance(expr, ast.UnaryOp):
        operand = compile_expr(expr.operand, scope, ctx, outer)
        if expr.op == "not":
            def run_not(row):
                value = operand(row)
                return None if value is None else (not _truthy(value))
            return run_not
        def run_neg(row):
            value = operand(row)
            return None if value is None else -value
        return run_neg
    if isinstance(expr, ast.FuncCall):
        if ast.is_aggregate_call(expr) or expr.star:
            return _compile_fallback(expr, scope, ctx, outer)
        fn = ctx.functions.get(expr.name)
        if fn is None:
            return _compile_fallback(expr, scope, ctx, outer)
        arg_fns = [compile_expr(a, scope, ctx, outer) for a in expr.args]
        if len(arg_fns) == 1:
            arg0 = arg_fns[0]
            return lambda row: fn(arg0(row))
        return lambda row: fn(*[f(row) for f in arg_fns])
    if isinstance(expr, ast.CaseWhen):
        whens = [
            (compile_expr(c, scope, ctx, outer), compile_expr(r, scope, ctx, outer))
            for c, r in expr.whens
        ]
        else_fn = (
            compile_expr(expr.else_, scope, ctx, outer)
            if expr.else_ is not None
            else None
        )
        def run_case(row):
            for cond_fn, result_fn in whens:
                if _truthy(cond_fn(row)):
                    return result_fn(row)
            return else_fn(row) if else_fn is not None else None
        return run_case
    if isinstance(expr, ast.InList):
        needle_fn = compile_expr(expr.needle, scope, ctx, outer)
        negated = expr.negated
        if all(isinstance(i, ast.Literal) for i in expr.items):
            items = [i.value for i in expr.items]
            return lambda row: _eval_in(needle_fn(row), items, negated)
        item_fns = [compile_expr(i, scope, ctx, outer) for i in expr.items]
        return lambda row: _eval_in(
            needle_fn(row), [f(row) for f in item_fns], negated
        )
    if isinstance(expr, ast.Like):
        needle_fn = compile_expr(expr.needle, scope, ctx, outer)
        pattern_fn = compile_expr(expr.pattern, scope, ctx, outer)
        negated = expr.negated
        def run_like(row):
            needle = needle_fn(row)
            pattern = pattern_fn(row)
            if needle is None or pattern is None:
                return None
            if isinstance(needle, frozenset) and isinstance(pattern, bytes):
                found = pattern in needle
            else:
                found = like_matches(str(needle), str(pattern))
            return (not found) if negated else found
        return run_like
    if isinstance(expr, ast.Between):
        needle_fn = compile_expr(expr.needle, scope, ctx, outer)
        low_fn = compile_expr(expr.low, scope, ctx, outer)
        high_fn = compile_expr(expr.high, scope, ctx, outer)
        negated = expr.negated
        def run_between(row):
            needle = needle_fn(row)
            low = low_fn(row)
            high = high_fn(row)
            if needle is None or low is None or high is None:
                return None
            result = low <= needle <= high
            return (not result) if negated else result
        return run_between
    if isinstance(expr, ast.IsNull):
        operand = compile_expr(expr.operand, scope, ctx, outer)
        if expr.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None
    if isinstance(expr, ast.Extract):
        operand = compile_expr(expr.operand, scope, ctx, outer)
        field_name = expr.field_name
        def run_extract(row):
            value = operand(row)
            if value is None:
                return None
            if not isinstance(value, datetime.date):
                raise ExecutionError(f"EXTRACT from non-date {value!r}")
            return getattr(value, field_name)
        return run_extract
    if isinstance(expr, ast.Substring):
        operand = compile_expr(expr.operand, scope, ctx, outer)
        start_fn = compile_expr(expr.start, scope, ctx, outer)
        length_fn = (
            compile_expr(expr.length, scope, ctx, outer)
            if expr.length is not None
            else None
        )
        def run_substring(row):
            value = operand(row)
            start = start_fn(row)
            if value is None or start is None:
                return None
            begin = max(int(start) - 1, 0)
            if length_fn is None:
                return value[begin:]
            return value[begin : begin + int(length_fn(row))]
        return run_substring
    # Subqueries (scalar / IN / EXISTS) and anything unrecognized need the
    # full dynamic context: defer to the tree walker.
    return _compile_fallback(expr, scope, ctx, outer)


def _compile_fallback(
    expr: ast.Expr, scope: Scope, ctx: EvalContext, outer: Env | None
) -> RowFn:
    return lambda row: evaluate(expr, Env(scope, row, outer), ctx)


def _compile_binop(
    expr: ast.BinOp, scope: Scope, ctx: EvalContext, outer: Env | None
) -> RowFn:
    op = expr.op
    left_fn = compile_expr(expr.left, scope, ctx, outer)
    right_fn = compile_expr(expr.right, scope, ctx, outer)
    if op == "and":
        def run_and(row):
            left = left_fn(row)
            if left is False:
                return False
            right = right_fn(row)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return _truthy(left) and _truthy(right)
        return run_and
    if op == "or":
        def run_or(row):
            left = left_fn(row)
            if left is not None and _truthy(left):
                return True
            right = right_fn(row)
            if right is not None and _truthy(right):
                return True
            if left is None or right is None:
                return None
            return False
        return run_or
    if op == "=":
        def run_eq(row):
            left = left_fn(row)
            right = right_fn(row)
            if left is None or right is None:
                return None
            return left == right
        return run_eq
    if op == "<>":
        def run_ne(row):
            left = left_fn(row)
            right = right_fn(row)
            if left is None or right is None:
                return None
            return left != right
        return run_ne
    if op in ("<", "<=", ">", ">="):
        cmp = _CMP_OPS[op]
        def run_cmp(row):
            left = left_fn(row)
            right = right_fn(row)
            if left is None or right is None:
                return None
            try:
                return cmp(left, right)
            except TypeError:
                raise ExecutionError(
                    f"cannot compare {type(left).__name__} with "
                    f"{type(right).__name__}"
                ) from None
        return run_cmp
    if op == "||":
        def run_concat(row):
            left = left_fn(row)
            right = right_fn(row)
            if left is None or right is None:
                return None
            return str(left) + str(right)
        return run_concat
    def run_arith(row):
        left = left_fn(row)
        right = right_fn(row)
        if left is None or right is None:
            return None
        return _eval_arith(op, left, right)
    return run_arith


def _run_subquery(query: ast.Select, env: Env | None, ctx: EvalContext):
    if ctx.subquery_executor is None:
        raise ExecutionError("subqueries are not available in this context")
    cache_key = id(query)
    if cache_key in ctx._subquery_cache:
        return ctx._subquery_cache[cache_key]
    probe = Env(Scope([]), (), parent=env) if env is not None else None
    result = ctx.subquery_executor(query, probe)
    correlated = probe is not None and probe.used_parent
    if not correlated:
        ctx._subquery_cache[cache_key] = result
    return result


def _truthy(value: object) -> bool:
    return bool(value)
