"""In-memory relational engine: the untrusted server's unmodified DBMS."""

from repro.engine.aggregates import HomAggResult
from repro.engine.catalog import Database
from repro.engine.cost import CostEstimator, PlanEstimate
from repro.engine.executor import ExecStats, Executor, ResultSet, is_streamable
from repro.engine.rowblock import (
    DEFAULT_BLOCK_ROWS,
    BlockStream,
    RowBlock,
    blocks_from_rows,
    result_header_bytes,
)
from repro.engine.schema import ColumnDef, TableSchema, schema
from repro.engine.table import ColumnStats, Table

__all__ = [
    "BlockStream",
    "ColumnDef",
    "ColumnStats",
    "CostEstimator",
    "DEFAULT_BLOCK_ROWS",
    "Database",
    "ExecStats",
    "Executor",
    "HomAggResult",
    "PlanEstimate",
    "ResultSet",
    "RowBlock",
    "Table",
    "TableSchema",
    "blocks_from_rows",
    "is_streamable",
    "result_header_bytes",
    "schema",
]
