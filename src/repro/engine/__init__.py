"""In-memory relational engine: the untrusted server's unmodified DBMS."""

from repro.engine.aggregates import HomAggResult
from repro.engine.catalog import Database
from repro.engine.cost import CostEstimator, PlanEstimate
from repro.engine.executor import ExecStats, Executor, ResultSet
from repro.engine.schema import ColumnDef, TableSchema, schema
from repro.engine.table import ColumnStats, Table

__all__ = [
    "ColumnDef",
    "ColumnStats",
    "CostEstimator",
    "Database",
    "ExecStats",
    "Executor",
    "HomAggResult",
    "PlanEstimate",
    "ResultSet",
    "Table",
    "TableSchema",
    "schema",
]
