"""Query executor: the "unmodified DBMS" the untrusted server runs.

A materializing executor with a small planner, plus a pull-based
streaming layer over the same machinery:

* single-relation WHERE conjuncts are pushed down before joins;
* equi-join conjuncts drive hash joins (greedy join ordering: smallest
  joinable relation next); remaining relations fall back to nested loops;
* explicit JOIN ... ON (incl. LEFT OUTER) handled structurally;
* GROUP BY with arbitrary key expressions and aggregate expressions in
  SELECT / HAVING / ORDER BY, DISTINCT, ORDER BY with alias references, and
  LIMIT;
* correlated subqueries re-execute per outer row (uncorrelated ones are
  cached by the evaluator).

:meth:`Executor.execute_stream` yields fixed-capacity
:class:`~repro.engine.rowblock.RowBlock` batches instead of one
materialized :class:`ResultSet`.  Scan → filter → project → limit plans
(:func:`is_streamable`) move block-at-a-time with O(block) working
memory; everything else — sorts, grouping, DISTINCT, joins — drains its
input through the materializing path and re-enters the stream as one
blocking operator at the root, so both paths return identical rows and
identical scan statistics by construction.  ``Executor(streaming=True)``
routes :meth:`Executor.execute` through the streaming layer.

Execution returns a :class:`ResultSet` plus scan statistics (bytes touched)
so the caller can charge simulated disk time — analytical queries are
I/O bound (§5.2), and our cost ledger mirrors that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ExecutionError
from repro.engine.aggregates import make_aggregate
from repro.engine.catalog import Database
from repro.engine.eval import Env, EvalContext, Scope, compile_expr, evaluate
from repro.engine.functions import default_functions
from repro.engine.rowblock import (
    DEFAULT_BLOCK_ROWS,
    BlockStream,
    RowBlock,
    blocks_from_rows,
)
from repro.sql import ast
from repro.storage.rowcodec import value_bytes


@dataclass
class ResultSet:
    columns: list[str]
    rows: list[tuple]

    def byte_size(self) -> int:
        header = sum(len(c) + 4 for c in self.columns)
        return header + sum(4 + sum(value_bytes(v) for v in row) for row in self.rows)


@dataclass
class ExecStats:
    bytes_scanned: int = 0
    rows_output: int = 0


@dataclass
class _Relation:
    """An intermediate table: scope + materialized rows."""

    scope: Scope
    rows: list[tuple]

    @property
    def bindings(self) -> set[str]:
        return {b for b, _ in self.scope.columns if b is not None}


def is_streamable(query: ast.Select) -> bool:
    """True when the pull-based pipeline can run ``query`` without any
    blocking operator: one base-table scan feeding filter → project →
    limit.  Grouping, aggregation, DISTINCT, ORDER BY, and joins all need
    their full input and therefore materialize."""
    if len(query.from_items) != 1 or not isinstance(
        query.from_items[0], ast.TableName
    ):
        return False
    if query.group_by or query.distinct or query.order_by:
        return False
    if query.having is not None:
        return False
    return not Executor._has_aggregates(query)


class Executor:
    """Executes SELECT statements against a :class:`Database`."""

    def __init__(
        self,
        db: Database,
        use_compiled: bool = True,
        streaming: bool = False,
        block_rows: int = DEFAULT_BLOCK_ROWS,
    ) -> None:
        self.db = db
        self.functions = default_functions()
        self.last_stats = ExecStats()
        self.use_compiled = use_compiled
        self.streaming = streaming
        self.block_rows = block_rows

    def _compile(self, expr, scope, ctx, outer=None):
        """Compile an expression, or (with ``use_compiled=False``) return a
        per-row tree-walking closure — the pre-compilation engine, kept so
        benchmarks can measure what compilation buys."""
        if self.use_compiled:
            return compile_expr(expr, scope, ctx, outer)
        return lambda row: evaluate(expr, Env(scope, row, outer), ctx)

    # -- public API ---------------------------------------------------------

    def execute(self, query: ast.Select, params: dict[str, object] | None = None) -> ResultSet:
        if self.streaming:
            stream = self.execute_stream(query, params)
            return ResultSet(stream.columns, stream.drain_rows())
        self.last_stats = ExecStats()
        # Static scan accounting: one heap read per table occurrence in the
        # query tree, charged up front.  Re-executions of a correlated
        # subquery hit the buffer pool, not the disk, and a subquery the
        # engine happens to short-circuit still counts as part of the
        # query's I/O footprint — which keeps the ledger identical across
        # server backends (they charge the same static walk).
        for name in ast.table_occurrences(query):
            if self.db.has_table(name):
                self.last_stats.bytes_scanned += self.db.table(name).total_bytes
        ciphertext_read_start = self.db.ciphertext_store.bytes_read
        semijoins = _SemiJoinCache(self)
        ctx = EvalContext(
            params=params or {},
            functions=self.functions,
            subquery_executor=lambda sub, outer: self._execute(sub, ctx, outer),
            exists_tester=lambda sub, env: semijoins.test(sub, env, ctx),
        )
        result = self._execute(query, ctx, None)
        self.last_stats.rows_output = len(result.rows)
        self.last_stats.bytes_scanned += (
            self.db.ciphertext_store.bytes_read - ciphertext_read_start
        )
        return result

    def execute_stream(
        self,
        query: ast.Select,
        params: dict[str, object] | None = None,
        *,
        block_rows: int | None = None,
        sources: dict[str, BlockStream] | None = None,
    ) -> BlockStream:
        """Pull-based execution: a :class:`BlockStream` of RowBlocks.

        ``sources`` maps a table name to an external block stream standing
        in for that table's scan — the plan executor streams decrypted
        server blocks through a residual query this way, without staging
        them in a catalog table; source-backed queries must satisfy
        :func:`is_streamable`.  Statistics live on ``stream.stats`` (also
        ``self.last_stats``) and reach their final totals once the stream
        is exhausted or closed.
        """
        if block_rows is None:
            block_rows = self.block_rows
        stats = ExecStats()
        self.last_stats = stats
        sources = sources or {}
        for name in ast.table_occurrences(query):
            if self.db.has_table(name):
                stats.bytes_scanned += self.db.table(name).total_bytes
        ciphertext_read_start = self.db.ciphertext_store.bytes_read
        semijoins = _SemiJoinCache(self)
        ctx = EvalContext(
            params=params or {},
            functions=self.functions,
            subquery_executor=lambda sub, outer: self._execute(sub, ctx, outer),
            exists_tester=lambda sub, env: semijoins.test(sub, env, ctx),
        )
        columns = [item.output_name(i) for i, item in enumerate(query.items)]
        if is_streamable(query):
            blocks = self._stream_blocks(
                query, ctx, sources, block_rows, stats, ciphertext_read_start
            )
        else:
            if sources:
                raise ExecutionError(
                    "source-backed streaming requires a streamable query "
                    "(single scan, no grouping/ordering/joins)"
                )
            blocks = self._materialized_blocks(
                query, ctx, block_rows, stats, ciphertext_read_start
            )
        return BlockStream(columns, blocks, stats)

    def _stream_blocks(
        self,
        query: ast.Select,
        ctx: EvalContext,
        sources: dict[str, BlockStream],
        block_rows: int,
        stats: ExecStats,
        ciphertext_read_start: int,
    ):
        """Scan → filter → project → limit, block-at-a-time."""
        ref = query.from_items[0]
        source = sources.get(ref.name)
        if source is not None:
            scope = Scope([(ref.binding, c) for c in source.columns])
            input_rows = (row for block in source for row in block.rows())
        else:
            table = self.db.table(ref.name)
            scope = Scope([(ref.binding, c) for c in table.schema.column_names])
            input_rows = iter(table.rows)
        predicate = (
            self._compile(query.where, scope, ctx, None)
            if query.where is not None
            else None
        )
        item_fns: list = [
            None
            if isinstance(item.expr, ast.Column) and item.expr.name == "*"
            else self._compile(item.expr, scope, ctx, None)
            for item in query.items
        ]
        remaining = query.limit
        try:
            buffer: list[tuple] = []
            if remaining is None or remaining > 0:
                for row in input_rows:
                    if predicate is not None and predicate(row) is not True:
                        continue
                    values: list = []
                    for fn in item_fns:
                        if fn is None:
                            values.extend(row)
                        else:
                            values.append(fn(row))
                    buffer.append(tuple(values))
                    if remaining is not None:
                        remaining -= 1
                        if remaining == 0:
                            break
                    if len(buffer) >= block_rows:
                        stats.rows_output += len(buffer)
                        yield RowBlock.from_rows(buffer, len(query.items))
                        buffer = []
            if buffer:
                stats.rows_output += len(buffer)
                yield RowBlock.from_rows(buffer, len(query.items))
        finally:
            if source is not None:
                source.close()
            stats.bytes_scanned += (
                self.db.ciphertext_store.bytes_read - ciphertext_read_start
            )

    def _materialized_blocks(
        self,
        query: ast.Select,
        ctx: EvalContext,
        block_rows: int,
        stats: ExecStats,
        ciphertext_read_start: int,
    ):
        """Blocking root operator: drain the materializing path, re-block."""
        result = self._execute(query, ctx, None)
        stats.rows_output += len(result.rows)
        stats.bytes_scanned += (
            self.db.ciphertext_store.bytes_read - ciphertext_read_start
        )
        yield from blocks_from_rows(result.rows, len(result.columns), block_rows)

    # -- internals ------------------------------------------------------------

    def _execute(self, query: ast.Select, ctx: EvalContext, outer: Env | None) -> ResultSet:
        relation = self._build_from(query, ctx, outer)
        relation = self._apply_where(relation, query.where, ctx, outer)
        if query.group_by or self._has_aggregates(query):
            rows_with_alias = self._group_and_project(query, relation, ctx, outer)
        else:
            rows_with_alias = self._project(query, relation, ctx, outer)
        rows = self._order_limit_distinct(query, rows_with_alias, ctx)
        columns = [item.output_name(i) for i, item in enumerate(query.items)]
        return ResultSet(columns, rows)

    # FROM clause -------------------------------------------------------------

    def _build_from(self, query: ast.Select, ctx: EvalContext, outer: Env | None) -> _Relation:
        if not query.from_items:
            return _Relation(Scope([]), [()])
        relations = [self._resolve_ref(ref, ctx, outer) for ref in query.from_items]
        conjuncts = ast.conjuncts(query.where)
        # Factor predicates common to every OR branch (classic OR-expansion:
        # TPC-H Q19 repeats its join equality in each branch).  Implied
        # conjuncts are freely pushable; the original OR still applies.
        conjuncts = conjuncts + _implied_conjuncts(conjuncts)
        pushed: set[int] = set()
        relations = [
            self._pushdown(rel, conjuncts, pushed, ctx, outer) for rel in relations
        ]
        joined = self._join_all(relations, conjuncts, pushed, ctx, outer)
        remaining = [c for i, c in enumerate(conjuncts) if i not in pushed]
        self._consumed_where = (conjuncts, pushed, remaining)
        return joined

    def _resolve_ref(self, ref: ast.TableRef, ctx: EvalContext, outer: Env | None) -> _Relation:
        if isinstance(ref, ast.TableName):
            table = self.db.table(ref.name)
            binding = ref.binding
            scope = Scope([(binding, c) for c in table.schema.column_names])
            return _Relation(scope, table.rows)
        if isinstance(ref, ast.SubqueryRef):
            result = self._execute(ref.query, ctx, None)
            scope = Scope([(ref.alias, c) for c in result.columns])
            return _Relation(scope, result.rows)
        if isinstance(ref, ast.Join):
            left = self._resolve_ref(ref.left, ctx, outer)
            right = self._resolve_ref(ref.right, ctx, outer)
            return self._join_pair(left, right, ref.condition, ref.kind, ctx, outer)
        raise ExecutionError(f"unknown FROM item {ref!r}")

    def _pushdown(
        self,
        rel: _Relation,
        conjuncts: list[ast.Expr],
        pushed: set[int],
        ctx: EvalContext,
        outer: Env | None,
    ) -> _Relation:
        """Apply single-relation, subquery-free conjuncts before joining."""
        local: list[ast.Expr] = []
        for i, conj in enumerate(conjuncts):
            if i in pushed or ast.find_subqueries(conj):
                continue
            refs = self._binding_refs(conj, rel)
            if refs == "local":
                local.append(conj)
                pushed.add(i)
        if not local:
            return rel
        predicate = self._compile(ast.conjoin(local), rel.scope, ctx, outer)
        rows = [row for row in rel.rows if predicate(row) is True]
        return _Relation(rel.scope, rows)

    def _binding_refs(self, expr: ast.Expr, rel: _Relation) -> str:
        """"local" if every column in expr resolves inside rel, else "other"."""
        for col in ast.find_columns(expr):
            if col.name == "*":
                continue
            try:
                if rel.scope.find(col.table, col.name) is None:
                    return "other"
            except ExecutionError:
                return "other"
        return "local"

    def _join_all(
        self,
        relations: list[_Relation],
        conjuncts: list[ast.Expr],
        pushed: set[int],
        ctx: EvalContext,
        outer: Env | None,
    ) -> _Relation:
        if len(relations) == 1:
            return relations[0]
        remaining = list(relations)
        # Start with the smallest relation that has at least one join edge.
        current = remaining.pop(self._pick_start(remaining, conjuncts, pushed))
        while remaining:
            choice = self._pick_next(current, remaining, conjuncts, pushed)
            if choice is None:
                # No join predicate connects: cross product with smallest.
                index = min(range(len(remaining)), key=lambda i: len(remaining[i].rows))
                nxt = remaining.pop(index)
                current = self._cross(current, nxt)
                continue
            index, conj_index, left_key, right_key = choice
            nxt = remaining.pop(index)
            pushed.add(conj_index)
            current = self._hash_join(current, nxt, left_key, right_key, ctx, outer)
        return current

    def _pick_start(
        self, relations: list[_Relation], conjuncts: list[ast.Expr], pushed: set[int]
    ) -> int:
        return min(range(len(relations)), key=lambda i: len(relations[i].rows))

    def _pick_next(
        self,
        current: _Relation,
        remaining: list[_Relation],
        conjuncts: list[ast.Expr],
        pushed: set[int],
    ):
        """Find (relation idx, conjunct idx, current key expr, next key expr)
        for the smallest relation reachable via an equi-join conjunct."""
        best = None
        for conj_index, conj in enumerate(conjuncts):
            if conj_index in pushed:
                continue
            if not (isinstance(conj, ast.BinOp) and conj.op == "="):
                continue
            if ast.find_subqueries(conj):
                # Correlated subqueries need the full join env; never use
                # them as join keys.
                continue
            for rel_index, rel in enumerate(remaining):
                sides = self._split_equi(conj, current, rel)
                if sides is None:
                    continue
                size = len(rel.rows)
                if best is None or size < best[4]:
                    best = (rel_index, conj_index, sides[0], sides[1], size)
        if best is None:
            return None
        return best[:4]

    def _split_equi(self, conj: ast.BinOp, left: _Relation, right: _Relation):
        """If ``conj`` equates a left-side expr with a right-side expr,
        return (left_expr, right_expr)."""
        if self._binding_refs(conj.left, left) == "local" and self._binding_refs(
            conj.right, right
        ) == "local":
            return conj.left, conj.right
        if self._binding_refs(conj.left, right) == "local" and self._binding_refs(
            conj.right, left
        ) == "local":
            return conj.right, conj.left
        return None

    def _hash_join(
        self,
        left: _Relation,
        right: _Relation,
        left_key: ast.Expr,
        right_key: ast.Expr,
        ctx: EvalContext,
        outer: Env | None,
    ) -> _Relation:
        right_fn = self._compile(right_key, right.scope, ctx, outer)
        buckets: dict[object, list[tuple]] = {}
        for row in right.rows:
            key = right_fn(row)
            if key is None:
                continue
            buckets.setdefault(key, []).append(row)
        left_fn = self._compile(left_key, left.scope, ctx, outer)
        joined: list[tuple] = []
        append = joined.append
        get_bucket = buckets.get
        for row in left.rows:
            key = left_fn(row)
            if key is None:
                continue
            for other in get_bucket(key, ()):
                append(row + other)
        return _Relation(left.scope.merged_with(right.scope), joined)

    def _cross(self, left: _Relation, right: _Relation) -> _Relation:
        rows = [l + r for l in left.rows for r in right.rows]
        return _Relation(left.scope.merged_with(right.scope), rows)

    def _join_pair(
        self,
        left: _Relation,
        right: _Relation,
        condition: ast.Expr | None,
        kind: str,
        ctx: EvalContext,
        outer: Env | None,
    ) -> _Relation:
        scope = left.scope.merged_with(right.scope)
        rows: list[tuple] = []
        null_row = (None,) * len(right.scope.columns)
        # Try hash join for simple equality conditions.
        equi = None
        if condition is not None and isinstance(condition, ast.BinOp) and condition.op == "=":
            equi = self._split_equi(condition, left, right)
        if equi is not None:
            left_key, right_key = equi
            right_fn = self._compile(right_key, right.scope, ctx, outer)
            buckets: dict[object, list[tuple]] = {}
            for row in right.rows:
                key = right_fn(row)
                if key is not None:
                    buckets.setdefault(key, []).append(row)
            left_fn = self._compile(left_key, left.scope, ctx, outer)
            for row in left.rows:
                key = left_fn(row)
                matches = buckets.get(key, []) if key is not None else []
                if matches:
                    rows.extend(row + other for other in matches)
                elif kind == "left":
                    rows.append(row + null_row)
            return _Relation(scope, rows)
        cond_fn = (
            self._compile(condition, scope, ctx, outer)
            if condition is not None
            else None
        )
        for row in left.rows:
            matched = False
            for other in right.rows:
                combined = row + other
                if cond_fn is None or cond_fn(combined) is True:
                    rows.append(combined)
                    matched = True
            if not matched and kind == "left":
                rows.append(row + null_row)
        return _Relation(scope, rows)

    # WHERE ---------------------------------------------------------------------

    def _apply_where(
        self, relation: _Relation, where: ast.Expr | None, ctx: EvalContext, outer: Env | None
    ) -> _Relation:
        if where is None:
            return relation
        state = getattr(self, "_consumed_where", None)
        remaining = state[2] if state is not None else ast.conjuncts(where)
        self._consumed_where = None
        if not remaining:
            return relation
        predicate = self._compile(ast.conjoin(remaining), relation.scope, ctx, outer)
        rows = [row for row in relation.rows if predicate(row) is True]
        return _Relation(relation.scope, rows)

    # Projection / grouping -------------------------------------------------------

    @staticmethod
    def _has_aggregates(query: ast.Select) -> bool:
        exprs = [item.expr for item in query.items]
        if query.having is not None:
            exprs.append(query.having)
        exprs.extend(o.expr for o in query.order_by)
        return any(ast.contains_aggregate(e) for e in exprs)

    def _output_exprs(self, query: ast.Select) -> list[ast.Expr]:
        exprs = [item.expr for item in query.items]
        if query.having is not None:
            exprs.append(query.having)
        exprs.extend(o.expr for o in query.order_by)
        return exprs

    def _group_and_project(
        self, query: ast.Select, relation: _Relation, ctx: EvalContext, outer: Env | None
    ) -> list[tuple[tuple, dict]]:
        agg_calls: list[ast.FuncCall] = []
        seen: set = set()
        for expr in self._output_exprs(query):
            for call in ast.find_aggregates(expr):
                if call not in seen:
                    seen.add(call)
                    agg_calls.append(call)
        # Compile group keys and aggregate arguments once per query; the
        # scan below touches every input row with plain closure calls.
        key_fns = [
            self._compile(k, relation.scope, ctx, outer) for k in query.group_by
        ]
        arg_fns: list[list | None] = [
            None
            if call.star
            else [self._compile(a, relation.scope, ctx, outer) for a in call.args]
            for call in agg_calls
        ]
        store = self.db.ciphertext_store
        groups: dict[tuple, tuple[tuple, list]] = {}
        get_group = groups.get
        star_arg = [1]
        for row in relation.rows:
            key = tuple(kf(row) for kf in key_fns)
            entry = get_group(key)
            if entry is None:
                aggs = [
                    make_aggregate(c.name, c.distinct, store) for c in agg_calls
                ]
                entry = (row, aggs)
                groups[key] = entry
            aggs = entry[1]
            for fns, agg in zip(arg_fns, aggs):
                if fns is None:
                    agg.update(star_arg)
                else:
                    agg.update([f(row) for f in fns])
        if not groups and not query.group_by:
            # Aggregate over empty input: one row of aggregate identities.
            aggs = [
                make_aggregate(c.name, c.distinct, self.db.ciphertext_store)
                for c in agg_calls
            ]
            groups[()] = (None, aggs)
        output: list[tuple[tuple, dict]] = []
        for key, (rep_row, aggs) in groups.items():
            agg_values = {call: agg.finalize() for call, agg in zip(agg_calls, aggs)}
            group_ctx = EvalContext(
                params=ctx.params,
                functions=ctx.functions,
                subquery_executor=ctx.subquery_executor,
                aggregate_values=agg_values,
                _subquery_cache=ctx._subquery_cache,
            )
            env = Env(relation.scope, rep_row, outer) if rep_row is not None else None
            values = tuple(evaluate(item.expr, env, group_ctx) for item in query.items)
            aliases = {
                item.alias: value
                for item, value in zip(query.items, values)
                if item.alias
            }
            group_ctx.alias_values = aliases
            if query.having is not None:
                if evaluate(query.having, env, group_ctx) is not True:
                    continue
            order_keys = self._order_keys(query, env, group_ctx, values)
            output.append((values, order_keys))
        return output

    def _project(
        self, query: ast.Select, relation: _Relation, ctx: EvalContext, outer: Env | None
    ) -> list[tuple[tuple, dict]]:
        # Compile the select-list once; "*" expands to the whole row.
        item_fns: list = [
            None
            if isinstance(item.expr, ast.Column) and item.expr.name == "*"
            else self._compile(item.expr, relation.scope, ctx, outer)
            for item in query.items
        ]
        output = []
        if not query.order_by:
            # No per-row alias context needed: tight projection loop.
            no_keys: list = []
            append = output.append
            if len(item_fns) == 1 and item_fns[0] is not None:
                fn = item_fns[0]
                for row in relation.rows:
                    append(((fn(row),), no_keys))
                return output
            for row in relation.rows:
                values: list = []
                for fn in item_fns:
                    if fn is None:
                        values.extend(row)
                    else:
                        values.append(fn(row))
                append((tuple(values), no_keys))
            return output
        for row in relation.rows:
            values_list: list = []
            for fn in item_fns:
                if fn is None:
                    values_list.extend(row)
                else:
                    values_list.append(fn(row))
            values = tuple(values_list)
            aliases = {
                item.alias: value
                for item, value in zip(query.items, values)
                if item.alias is not None
            }
            row_ctx = EvalContext(
                params=ctx.params,
                functions=ctx.functions,
                subquery_executor=ctx.subquery_executor,
                alias_values=aliases,
                _subquery_cache=ctx._subquery_cache,
            )
            env = Env(relation.scope, row, outer)
            order_keys = self._order_keys(query, env, row_ctx, values)
            output.append((values, order_keys))
        return output

    def _order_keys(
        self, query: ast.Select, env: Env | None, ctx: EvalContext, values: tuple
    ) -> list:
        keys = []
        for item in query.order_by:
            keys.append(evaluate(item.expr, env, ctx))
        return keys

    # ORDER BY / DISTINCT / LIMIT ---------------------------------------------------

    def _order_limit_distinct(
        self, query: ast.Select, rows_with_keys: list[tuple[tuple, list]], ctx: EvalContext
    ) -> list[tuple]:
        rows = rows_with_keys
        if query.distinct:
            unique: dict = {}
            for values, keys in rows:
                marker = tuple(
                    tuple(v) if isinstance(v, list) else v for v in values
                )
                if marker not in unique:
                    unique[marker] = (values, keys)
            rows = list(unique.values())
        if query.order_by:
            for index in range(len(query.order_by) - 1, -1, -1):
                ascending = query.order_by[index].ascending
                rows.sort(
                    key=lambda pair: _SortKey(pair[1][index]),
                    reverse=not ascending,
                )
        result = [values for values, _ in rows]
        if query.limit is not None:
            result = result[: query.limit]
        return result


class _SemiJoinCache:
    """Materialized semi-join fast path for correlated EXISTS.

    A correlated EXISTS whose outer references appear only in top-level
    comparison conjuncts (``inner_expr OP outer_expr``) executes the
    subquery ONCE with those conjuncts removed, materializing the inner
    comparison values; each outer row then probes the materialization
    (hash on the first equality, linear within the bucket).  This is the
    classic magic-set/semi-join decorrelation — TPC-H Q4, Q21, and Q22 are
    unusable without it on a naive executor.
    """

    _EQ_OPS = ("=", "<>", "<", "<=", ">", ">=")
    _FLIP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

    def __init__(self, executor: "Executor") -> None:
        self.executor = executor
        self._entries: dict[int, object] = {}

    def test(self, query: ast.Select, env: Env | None, ctx: EvalContext):
        key = id(query)
        entry = self._entries.get(key)
        if entry is None:
            entry = self._build(query, ctx)
            self._entries[key] = entry
        if entry is False:
            return None  # Not decomposable: caller falls back.
        probes, index, rows = entry
        outer_values = []
        for op, _inner_index, outer_expr in probes:
            outer_values.append(evaluate(outer_expr, env, ctx))
        # Probe: hash bucket on the first equality if one exists.
        candidates = rows
        start = 0
        if index is not None:
            eq_pos, buckets = index
            value = outer_values[eq_pos]
            if value is None:
                return False
            candidates = buckets.get(value, ())
        for row in candidates:
            ok = True
            for j, (op, inner_index, _outer) in enumerate(probes):
                if not _compare(op, row[inner_index], outer_values[j]):
                    ok = False
                    break
            if ok:
                return True
        return False

    def _build(self, query: ast.Select, ctx: EvalContext):
        if query.group_by or query.having is not None or query.limit is not None:
            return False
        tables: list[tuple[str, str]] = []
        for ref in query.from_items:
            if not isinstance(ref, ast.TableName):
                return False
            if not self.executor.db.has_table(ref.name):
                return False
            tables.append((ref.binding, ref.name))
        inner_scope = Scope(
            [
                (binding, column)
                for binding, name in tables
                for column in self.executor.db.table(name).schema.column_names
            ]
        )
        local: list[ast.Expr] = []
        probes: list[tuple[str, ast.Expr, ast.Expr]] = []  # (op, inner, outer)
        for conjunct in ast.conjuncts(query.where):
            if ast.find_subqueries(conjunct):
                return False
            side = self._classify(conjunct, inner_scope)
            if side == "inner":
                local.append(conjunct)
                continue
            if not (isinstance(conjunct, ast.BinOp) and conjunct.op in self._EQ_OPS):
                return False
            left_side = self._classify(conjunct.left, inner_scope)
            right_side = self._classify(conjunct.right, inner_scope)
            if left_side == "inner" and right_side == "outer":
                probes.append((conjunct.op, conjunct.left, conjunct.right))
            elif left_side == "outer" and right_side == "inner":
                probes.append((self._FLIP[conjunct.op], conjunct.right, conjunct.left))
            else:
                return False
        if not probes:
            return False
        inner_select = ast.Select(
            items=tuple(ast.SelectItem(inner) for _, inner, _ in probes),
            from_items=query.from_items,
            where=ast.conjoin(local),
        )
        result = self.executor._execute(inner_select, ctx, None)
        probe_specs = [
            (op, i, outer) for i, (op, _inner, outer) in enumerate(probes)
        ]
        index = None
        for i, (op, _inner, _outer) in enumerate(probes):
            if op == "=":
                buckets: dict[object, list[tuple]] = {}
                for row in result.rows:
                    if row[i] is not None:
                        try:
                            buckets.setdefault(row[i], []).append(row)
                        except TypeError:
                            return False
                index = (i, buckets)
                break
        return (probe_specs, index, result.rows)

    def _classify(self, expr: ast.Expr, inner_scope: Scope) -> str:
        """"inner" if every column resolves in the subquery scope, "outer"
        if none do, "mixed" otherwise."""
        saw_inner = saw_outer = False
        for column in ast.find_columns(expr):
            if column.name == "*":
                saw_inner = True
                continue
            try:
                found = inner_scope.find(column.table, column.name) is not None
            except ExecutionError:
                found = True  # Ambiguous within inner: treat as inner.
            if found:
                saw_inner = True
            else:
                saw_outer = True
        if saw_outer and saw_inner:
            return "mixed"
        return "outer" if saw_outer else "inner"


def _compare(op: str, left: object, right: object) -> bool:
    if left is None or right is None:
        return False
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def _implied_conjuncts(conjuncts: list[ast.Expr]) -> list[ast.Expr]:
    implied: list[ast.Expr] = []
    for conjunct in conjuncts:
        if not (isinstance(conjunct, ast.BinOp) and conjunct.op == "or"):
            continue
        branches = _or_branches(conjunct)
        if len(branches) < 2:
            continue
        common = set(ast.conjuncts(branches[0]))
        for branch in branches[1:]:
            common &= set(ast.conjuncts(branch))
        implied.extend(sorted(common, key=repr))
    return implied


def _or_branches(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinOp) and expr.op == "or":
        return _or_branches(expr.left) + _or_branches(expr.right)
    return [expr]


class _SortKey:
    """Sort wrapper: NULLs last (ascending), type-stable comparisons."""

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value

    def __lt__(self, other: "_SortKey") -> bool:
        a, b = self.value, other.value
        if a is None:
            return False
        if b is None:
            return True
        return a < b

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self.value == other.value
