"""Table schemas and column types for the engine.

Types are deliberately few: the paper converts DECIMAL to integers for both
plaintext and encrypted runs (§8.1), and ciphertexts appear as ``bytes``
(DET), ``int`` (OPE / FFX / row ids), or ``tagset`` (SEARCH).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

from repro.common.errors import CatalogError

VALID_TYPES = frozenset(
    {"int", "float", "text", "date", "bool", "bytes", "tagset", "any"}
)

_PYTHON_TYPES = {
    "int": (int,),
    "float": (int, float),
    "text": (str,),
    "date": (datetime.date,),
    "bool": (bool,),
    "bytes": (bytes,),
    "tagset": (frozenset,),
}


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type: str

    def __post_init__(self) -> None:
        if self.type not in VALID_TYPES:
            raise CatalogError(f"unknown column type {self.type!r}")

    def accepts(self, value: object) -> bool:
        if value is None or self.type == "any":
            return True
        if self.type == "bool":
            return isinstance(value, bool)
        if self.type == "int":
            return isinstance(value, int) and not isinstance(value, bool)
        return isinstance(value, _PYTHON_TYPES[self.type])


@dataclass(frozen=True)
class TableSchema:
    name: str
    columns: tuple[ColumnDef, ...]
    primary_key: tuple[str, ...] = ()
    _index: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        seen: dict[str, int] = {}
        for i, col in enumerate(self.columns):
            if col.name in seen:
                raise CatalogError(f"duplicate column {col.name!r} in {self.name!r}")
            seen[col.name] = i
        for key in self.primary_key:
            if key not in seen:
                raise CatalogError(f"primary key column {key!r} not in {self.name!r}")
        self._index.update(seen)

    def column_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise CatalogError(f"no column {name!r} in table {self.name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._index

    def column(self, name: str) -> ColumnDef:
        return self.columns[self.column_index(name)]

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)


def schema(name: str, *cols: tuple[str, str], primary_key: tuple[str, ...] = ()) -> TableSchema:
    """Shorthand: ``schema("t", ("a", "int"), ("b", "text"))``."""
    return TableSchema(
        name=name,
        columns=tuple(ColumnDef(n, t) for n, t in cols),
        primary_key=primary_key,
    )
