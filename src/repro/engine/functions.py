"""Scalar function registry for the engine.

The registry is deliberately small — the SQL dialect expresses most
computation with dedicated AST nodes (EXTRACT, SUBSTRING, CASE) that the
evaluator handles directly.  MONOMI's server-side UDF for searchable
encryption needs no entry here either: the evaluator recognises a tag-set
column LIKE a trapdoor-bytes literal natively.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import ExecutionError


def _abs(value):
    return None if value is None else abs(value)


def _coalesce(*values):
    for value in values:
        if value is not None:
            return value
    return None


def _length(value):
    return None if value is None else len(value)


def _upper(value):
    return None if value is None else str(value).upper()


def _lower(value):
    return None if value is None else str(value).lower()


def _round(value, digits=0):
    if value is None:
        return None
    result = round(value, int(digits))
    return result


def _in_set(value, members):
    """Set membership against a bound parameter (used by MONOMI's
    multi-round-trip subquery materialization)."""
    if value is None:
        return None
    if members is None:
        raise ExecutionError("in_set called with an unbound set")
    return value in members


def default_functions() -> dict[str, Callable]:
    return {
        "abs": _abs,
        "coalesce": _coalesce,
        "in_set": _in_set,
        "length": _length,
        "upper": _upper,
        "lower": _lower,
        "round": _round,
    }
